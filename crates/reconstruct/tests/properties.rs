//! Property-based tests for server-side reconstruction.

use age_reconstruct::{interpolate, mae, median, quartiles, std_deviation, ErrorAccumulator};
use proptest::prelude::*;

/// Strategy: a full-length truth sequence plus a sorted subset of indices.
fn truth_and_subset() -> impl Strategy<Value = (Vec<f64>, Vec<usize>, usize)> {
    (2usize..80, 1usize..4)
        .prop_flat_map(|(len, features)| {
            let truth = prop::collection::vec(-50.0f64..50.0, len * features);
            let subset = prop::collection::btree_set(0..len, 1..=len);
            (truth, subset, Just(features))
        })
        .prop_map(|(truth, subset, features)| {
            (truth, subset.into_iter().collect::<Vec<_>>(), features)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Interpolation always passes exactly through the collected points.
    #[test]
    fn interpolation_is_exact_at_samples((truth, indices, features) in truth_and_subset()) {
        let len = truth.len() / features;
        let values: Vec<f64> = indices
            .iter()
            .flat_map(|&t| truth[t * features..(t + 1) * features].iter().copied())
            .collect();
        let recon = interpolate(&indices, &values, len, features);
        prop_assert_eq!(recon.len(), truth.len());
        for &t in &indices {
            for f in 0..features {
                prop_assert_eq!(recon[t * features + f], truth[t * features + f]);
            }
        }
    }

    /// Reconstructed values never leave the envelope of the collected
    /// values (linear interpolation cannot overshoot).
    #[test]
    fn interpolation_stays_in_envelope((truth, indices, features) in truth_and_subset()) {
        let len = truth.len() / features;
        let values: Vec<f64> = indices
            .iter()
            .flat_map(|&t| truth[t * features..(t + 1) * features].iter().copied())
            .collect();
        let recon = interpolate(&indices, &values, len, features);
        for f in 0..features {
            let lo = values.iter().skip(f).step_by(features).cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().skip(f).step_by(features).cloned().fold(f64::NEG_INFINITY, f64::max);
            for t in 0..len {
                let v = recon[t * features + f];
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "feature {f} step {t}: {v} outside [{lo}, {hi}]");
            }
        }
    }

    /// Collecting everything reconstructs the truth exactly: zero MAE.
    #[test]
    fn full_collection_gives_zero_error(truth in prop::collection::vec(-50.0f64..50.0, 2..120)) {
        let indices: Vec<usize> = (0..truth.len()).collect();
        let recon = interpolate(&indices, &truth, truth.len(), 1);
        prop_assert_eq!(mae(&recon, &truth), 0.0);
    }

    /// Adding samples never hurts on convex subsets: a superset of samples
    /// reconstructs the sampled points at least as faithfully.
    #[test]
    fn mae_is_nonnegative_and_scale_covariant(truth in prop::collection::vec(-50.0f64..50.0, 2..100), scale in 0.1f64..10.0) {
        let recon: Vec<f64> = truth.iter().map(|v| v + 1.0).collect();
        let base = mae(&recon, &truth);
        prop_assert!((base - 1.0).abs() < 1e-9);
        let scaled_truth: Vec<f64> = truth.iter().map(|v| v * scale).collect();
        let scaled_recon: Vec<f64> = recon.iter().map(|v| v * scale).collect();
        prop_assert!((mae(&scaled_recon, &scaled_truth) - scale).abs() < 1e-9);
    }

    /// Summary statistics are order-invariant and bounded by extremes.
    #[test]
    fn summary_statistics_are_sane(mut values in prop::collection::vec(-100.0f64..100.0, 1..60)) {
        let med = median(&values).expect("non-empty");
        let (q1, q3) = quartiles(&values).expect("non-empty");
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= q1 && q1 <= med && med <= q3 && q3 <= hi);
        values.reverse();
        prop_assert_eq!(median(&values), Some(med));
        prop_assert!(std_deviation(&values) >= 0.0);
    }

    /// The accumulator's weighted mean lies between the min and max MAE.
    #[test]
    fn weighted_mean_is_a_mean(pairs in prop::collection::vec((0.0f64..10.0, 0.01f64..5.0), 1..40)) {
        let mut acc = ErrorAccumulator::new();
        for &(e, w) in &pairs {
            acc.record(e, w);
        }
        let lo = pairs.iter().map(|&(e, _)| e).fold(f64::INFINITY, f64::min);
        let hi = pairs.iter().map(|&(e, _)| e).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(acc.weighted_mean() >= lo - 1e-9);
        prop_assert!(acc.weighted_mean() <= hi + 1e-9);
        prop_assert!(acc.mean() >= lo - 1e-9 && acc.mean() <= hi + 1e-9);
        prop_assert_eq!(acc.count(), pairs.len());
    }
}
