//! Randomized property tests for server-side reconstruction, driven by the
//! workspace's deterministic PRNG (no external test deps).

use age_reconstruct::{interpolate, mae, median, quartiles, std_deviation, ErrorAccumulator};
use age_telemetry::{DetRng, SliceShuffle};

const CASES: usize = 128;

/// A full-length truth sequence plus a sorted non-empty subset of indices.
fn truth_and_subset(rng: &mut DetRng) -> (Vec<f64>, Vec<usize>, usize) {
    let len = rng.gen_range(2usize..80);
    let features = rng.gen_range(1usize..4);
    let truth: Vec<f64> = (0..len * features)
        .map(|_| rng.gen_range(-50.0f64..50.0))
        .collect();
    let mut all: Vec<usize> = (0..len).collect();
    all.shuffle(rng);
    all.truncate(rng.gen_range(1usize..=len));
    all.sort_unstable();
    (truth, all, features)
}

/// Interpolation always passes exactly through the collected points.
#[test]
fn interpolation_is_exact_at_samples() {
    let mut rng = DetRng::seed_from_u64(0x4E1);
    for _ in 0..CASES {
        let (truth, indices, features) = truth_and_subset(&mut rng);
        let len = truth.len() / features;
        let values: Vec<f64> = indices
            .iter()
            .flat_map(|&t| truth[t * features..(t + 1) * features].iter().copied())
            .collect();
        let recon = interpolate(&indices, &values, len, features);
        assert_eq!(recon.len(), truth.len());
        for &t in &indices {
            for f in 0..features {
                assert_eq!(recon[t * features + f], truth[t * features + f]);
            }
        }
    }
}

/// Reconstructed values never leave the envelope of the collected
/// values (linear interpolation cannot overshoot).
#[test]
fn interpolation_stays_in_envelope() {
    let mut rng = DetRng::seed_from_u64(0x4E2);
    for _ in 0..CASES {
        let (truth, indices, features) = truth_and_subset(&mut rng);
        let len = truth.len() / features;
        let values: Vec<f64> = indices
            .iter()
            .flat_map(|&t| truth[t * features..(t + 1) * features].iter().copied())
            .collect();
        let recon = interpolate(&indices, &values, len, features);
        for f in 0..features {
            let lo = values
                .iter()
                .skip(f)
                .step_by(features)
                .cloned()
                .fold(f64::INFINITY, f64::min);
            let hi = values
                .iter()
                .skip(f)
                .step_by(features)
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            for t in 0..len {
                let v = recon[t * features + f];
                assert!(
                    v >= lo - 1e-9 && v <= hi + 1e-9,
                    "feature {f} step {t}: {v} outside [{lo}, {hi}]"
                );
            }
        }
    }
}

/// Collecting everything reconstructs the truth exactly: zero MAE.
#[test]
fn full_collection_gives_zero_error() {
    let mut rng = DetRng::seed_from_u64(0x4E3);
    for _ in 0..CASES {
        let len = rng.gen_range(2usize..120);
        let truth: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0f64..50.0)).collect();
        let indices: Vec<usize> = (0..truth.len()).collect();
        let recon = interpolate(&indices, &truth, truth.len(), 1);
        assert_eq!(mae(&recon, &truth), 0.0);
    }
}

/// MAE is translation-consistent and scales with the data.
#[test]
fn mae_is_nonnegative_and_scale_covariant() {
    let mut rng = DetRng::seed_from_u64(0x4E4);
    for _ in 0..CASES {
        let len = rng.gen_range(2usize..100);
        let truth: Vec<f64> = (0..len).map(|_| rng.gen_range(-50.0f64..50.0)).collect();
        let scale = rng.gen_range(0.1f64..10.0);
        let recon: Vec<f64> = truth.iter().map(|v| v + 1.0).collect();
        let base = mae(&recon, &truth);
        assert!((base - 1.0).abs() < 1e-9);
        let scaled_truth: Vec<f64> = truth.iter().map(|v| v * scale).collect();
        let scaled_recon: Vec<f64> = recon.iter().map(|v| v * scale).collect();
        assert!((mae(&scaled_recon, &scaled_truth) - scale).abs() < 1e-9);
    }
}

/// Summary statistics are order-invariant and bounded by extremes.
#[test]
fn summary_statistics_are_sane() {
    let mut rng = DetRng::seed_from_u64(0x4E5);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..60);
        let mut values: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        let med = median(&values).expect("non-empty");
        let (q1, q3) = quartiles(&values).expect("non-empty");
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo <= q1 && q1 <= med && med <= q3 && q3 <= hi);
        values.reverse();
        assert_eq!(median(&values), Some(med));
        assert!(std_deviation(&values) >= 0.0);
    }
}

/// The accumulator's weighted mean lies between the min and max MAE.
#[test]
fn weighted_mean_is_a_mean() {
    let mut rng = DetRng::seed_from_u64(0x4E6);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..40);
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0f64..10.0), rng.gen_range(0.01f64..5.0)))
            .collect();
        let mut acc = ErrorAccumulator::new();
        for &(e, w) in &pairs {
            acc.record(e, w);
        }
        let lo = pairs.iter().map(|&(e, _)| e).fold(f64::INFINITY, f64::min);
        let hi = pairs
            .iter()
            .map(|&(e, _)| e)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(acc.weighted_mean() >= lo - 1e-9);
        assert!(acc.weighted_mean() <= hi + 1e-9);
        assert!(acc.mean() >= lo - 1e-9 && acc.mean() <= hi + 1e-9);
        assert_eq!(acc.count(), pairs.len());
    }
}
