//! Server-side reconstruction and error metrics (paper §5.1–§5.2).
//!
//! The server receives a subsampled batch, linearly interpolates the
//! missing measurements, and the evaluation scores the reconstruction with
//! mean absolute error (MAE) — optionally weighted by each sequence's
//! standard deviation to emphasize the high-compression cases (Table 5).
//!
//! # Examples
//!
//! ```
//! use age_reconstruct::interpolate;
//!
//! // Collected the endpoints of a ramp: interpolation recovers it exactly.
//! let rebuilt = interpolate(&[0, 4], &[0.0, 4.0], 5, 1);
//! assert_eq!(rebuilt, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
//! ```

/// Linearly interpolates a subsampled sequence back to full length.
///
/// `indices` are the strictly increasing collected positions, `values` the
/// row-major collected measurements (`indices.len() · features` entries).
/// Positions before the first collected index hold the first value;
/// positions after the last hold the last (the sensor reports nothing
/// beyond its collected window). An empty batch reconstructs to all zeros.
///
/// # Panics
///
/// Panics if the shapes disagree or an index is out of range.
pub fn interpolate(indices: &[usize], values: &[f64], len: usize, features: usize) -> Vec<f64> {
    assert!(features > 0, "features must be positive");
    assert_eq!(
        values.len(),
        indices.len() * features,
        "values/indices shape mismatch"
    );
    if let Some(&last) = indices.last() {
        assert!(
            last < len,
            "collected index {last} out of range for length {len}"
        );
    }
    let mut out = vec![0.0f64; len * features];
    if indices.is_empty() {
        return out;
    }

    for f in 0..features {
        // Head: hold the first collected value backward.
        let first_idx = indices[0];
        let first_val = values[f];
        for t in 0..=first_idx {
            out[t * features + f] = first_val;
        }
        // Middle: linear segments between collected neighbours. The right
        // endpoint is assigned exactly (not through the lerp formula, which
        // can be off by an ulp) so collected points always round-trip.
        for w in 0..indices.len().saturating_sub(1) {
            let (i0, i1) = (indices[w], indices[w + 1]);
            let (v0, v1) = (values[w * features + f], values[(w + 1) * features + f]);
            let span = (i1 - i0) as f64;
            for t in i0 + 1..i1 {
                let alpha = (t - i0) as f64 / span;
                out[t * features + f] = v0 + alpha * (v1 - v0);
            }
            out[i1 * features + f] = v1;
        }
        // Tail: hold the last collected value forward.
        let last_idx = *indices.last().expect("non-empty checked above");
        let last_val = values[(indices.len() - 1) * features + f];
        for t in last_idx..len {
            out[t * features + f] = last_val;
        }
    }
    out
}

/// Mean absolute error between a reconstruction and the true sequence.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(reconstructed: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(reconstructed.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "cannot score empty sequences");
    reconstructed
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Population standard deviation of a sequence's values — the per-sequence
/// weight used by the paper's weighted error metric (Table 5).
pub fn std_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Aggregates per-sequence MAEs into the paper's two summary metrics:
/// the arithmetic mean MAE (Table 4) and the deviation-weighted mean
/// (Table 5), where each sequence's MAE is weighted by its own standard
/// deviation.
#[derive(Debug, Clone, Default)]
pub struct ErrorAccumulator {
    sum: f64,
    weighted_sum: f64,
    weight_total: f64,
    count: usize,
}

impl ErrorAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sequence's MAE with its deviation weight.
    pub fn record(&mut self, mae: f64, deviation_weight: f64) {
        self.sum += mae;
        self.weighted_sum += mae * deviation_weight;
        self.weight_total += deviation_weight;
        self.count += 1;
    }

    /// Number of sequences recorded.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean MAE (Table 4), or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Deviation-weighted mean MAE (Table 5), or 0 when no weight was seen.
    pub fn weighted_mean(&self) -> f64 {
        if self.weight_total <= 0.0 {
            0.0
        } else {
            self.weighted_sum / self.weight_total
        }
    }
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns `None` for empty input.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metrics are never NaN"));
    let mid = sorted.len() / 2;
    Some(if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    })
}

/// Interquartile range and quartiles `(q1, q3)` via linear interpolation.
/// Returns `None` for empty input.
pub fn quartiles(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("metrics are never NaN"));
    let q = |p: f64| -> f64 {
        let pos = p * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    };
    Some((q(0.25), q(0.75)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_is_exact_on_affine_signals() {
        let truth: Vec<f64> = (0..20).map(|t| 3.0 * t as f64 - 5.0).collect();
        let indices = [0usize, 7, 13, 19];
        let values: Vec<f64> = indices.iter().map(|&i| truth[i]).collect();
        let rebuilt = interpolate(&indices, &values, 20, 1);
        for (a, b) in rebuilt.iter().zip(&truth) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_passes_through_collected_points() {
        let indices = [2usize, 5, 11];
        let values = [1.0, -4.0, 9.0];
        let rebuilt = interpolate(&indices, &values, 15, 1);
        assert_eq!(rebuilt[2], 1.0);
        assert_eq!(rebuilt[5], -4.0);
        assert_eq!(rebuilt[11], 9.0);
    }

    #[test]
    fn head_and_tail_hold_boundary_values() {
        let rebuilt = interpolate(&[3, 6], &[2.0, 8.0], 10, 1);
        assert_eq!(&rebuilt[..4], &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(&rebuilt[6..], &[8.0, 8.0, 8.0, 8.0]);
    }

    #[test]
    fn multifeature_interpolation_is_per_feature() {
        let rebuilt = interpolate(&[0, 2], &[0.0, 10.0, 4.0, 30.0], 3, 2);
        assert_eq!(rebuilt, vec![0.0, 10.0, 2.0, 20.0, 4.0, 30.0]);
    }

    #[test]
    fn empty_batch_reconstructs_to_zeros() {
        let rebuilt = interpolate(&[], &[], 4, 2);
        assert_eq!(rebuilt, vec![0.0; 8]);
    }

    #[test]
    fn single_point_holds_everywhere() {
        let rebuilt = interpolate(&[5], &[7.0], 10, 1);
        assert!(rebuilt.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn mae_basics() {
        assert_eq!(mae(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(mae(&[0.0, 4.0], &[1.0, 2.0]), 1.5);
    }

    #[test]
    fn fewer_samples_mean_higher_error_on_curvy_signals() {
        let truth: Vec<f64> = (0..100).map(|t| (t as f64 * 0.4).sin()).collect();
        let sample = |k: usize| -> f64 {
            let idx: Vec<usize> = (0..k).map(|r| r * 100 / k).collect();
            let vals: Vec<f64> = idx.iter().map(|&i| truth[i]).collect();
            mae(&interpolate(&idx, &vals, 100, 1), &truth)
        };
        assert!(sample(10) > sample(30));
        assert!(sample(30) > sample(90));
    }

    #[test]
    fn accumulator_weighting() {
        let mut acc = ErrorAccumulator::new();
        acc.record(1.0, 1.0);
        acc.record(3.0, 3.0);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.mean(), 2.0);
        // Weighted: (1·1 + 3·3) / 4 = 2.5.
        assert_eq!(acc.weighted_mean(), 2.5);
        assert_eq!(ErrorAccumulator::new().mean(), 0.0);
    }

    #[test]
    fn std_deviation_basics() {
        assert_eq!(std_deviation(&[]), 0.0);
        assert_eq!(std_deviation(&[2.0, 2.0, 2.0]), 0.0);
        assert!((std_deviation(&[0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_quartiles() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0]), Some(2.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
        let (q1, q3) = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!((q1, q3), (2.0, 4.0));
    }
}
