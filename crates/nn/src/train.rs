//! Training the Skip RNN: backpropagation through time with a
//! straight-through estimator for the binary gate.
//!
//! The objective is next-measurement prediction (the hidden state must
//! summarize the signal to predict it, so the gate learns to wake up when
//! the signal becomes unpredictable) plus a rate penalty steering the mean
//! update rate toward a target — the standard Skip RNN recipe [22].
//!
//! Straight-through choices (documented subgradients):
//!
//! - `dz/du = 1` through the binarization `z = 1[u ≥ 0.5]`.
//! - The gate path through a *skipped* step's candidate state is dropped
//!   (the candidate was never computed — an MCU would not compute it
//!   either).
//! - The `min(u + Δu, 1)` clamp contributes zero gradient when active.

use crate::linalg::{axpy, Mat};
use crate::rnn::SkipRnn;

/// Gradient accumulator mirroring [`SkipRnn`]'s parameters.
struct Grads {
    w_in: Mat,
    w_rec: Mat,
    b_h: Vec<f64>,
    w_gate: Vec<f64>,
    b_gate: f64,
    w_out: Mat,
    b_out: Vec<f64>,
}

impl Grads {
    fn zeros(model: &SkipRnn) -> Self {
        Grads {
            w_in: Mat::zeros(model.w_in.rows(), model.w_in.cols()),
            w_rec: Mat::zeros(model.w_rec.rows(), model.w_rec.cols()),
            b_h: vec![0.0; model.b_h.len()],
            w_gate: vec![0.0; model.w_gate.len()],
            b_gate: 0.0,
            w_out: Mat::zeros(model.w_out.rows(), model.w_out.cols()),
            b_out: vec![0.0; model.b_out.len()],
        }
    }

    fn clear(&mut self) {
        self.w_in.clear();
        self.w_rec.clear();
        self.b_h.iter_mut().for_each(|g| *g = 0.0);
        self.w_gate.iter_mut().for_each(|g| *g = 0.0);
        self.b_gate = 0.0;
        self.w_out.clear();
        self.b_out.iter_mut().for_each(|g| *g = 0.0);
    }

    fn global_norm(&self) -> f64 {
        (self.w_in.frobenius_sq()
            + self.w_rec.frobenius_sq()
            + self.b_h.iter().map(|g| g * g).sum::<f64>()
            + self.w_gate.iter().map(|g| g * g).sum::<f64>()
            + self.b_gate * self.b_gate
            + self.w_out.frobenius_sq()
            + self.b_out.iter().map(|g| g * g).sum::<f64>())
        .sqrt()
    }

    fn scale(&mut self, s: f64) {
        self.w_in.scale(s);
        self.w_rec.scale(s);
        self.b_h.iter_mut().for_each(|g| *g *= s);
        self.w_gate.iter_mut().for_each(|g| *g *= s);
        self.b_gate *= s;
        self.w_out.scale(s);
        self.b_out.iter_mut().for_each(|g| *g *= s);
    }
}

/// Configures and runs Skip RNN training.
///
/// # Examples
///
/// ```
/// use age_nn::Trainer;
///
/// let seqs: Vec<Vec<f64>> = (0..4)
///     .map(|s| (0..40).map(|t| ((t + s) as f64 * 0.2).sin()).collect())
///     .collect();
/// let model = Trainer::new(1, 8, 7).epochs(2).train(&seqs);
/// assert_eq!(model.features(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Trainer {
    features: usize,
    hidden: usize,
    seed: u64,
    epochs: usize,
    learning_rate: f64,
    momentum: f64,
    target_rate: f64,
    rate_weight: f64,
    clip_norm: f64,
}

impl Trainer {
    /// Creates a trainer for `features`-dimensional data with `hidden`
    /// state units.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `hidden` is zero.
    pub fn new(features: usize, hidden: usize, seed: u64) -> Self {
        assert!(features > 0 && hidden > 0, "dimensions must be positive");
        Trainer {
            features,
            hidden,
            seed,
            epochs: 4,
            learning_rate: 0.05,
            momentum: 0.9,
            target_rate: 0.5,
            rate_weight: 1.0,
            clip_norm: 5.0,
        }
    }

    /// Sets the number of passes over the training set.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the SGD learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Sets the nominal update-rate target of the rate penalty.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `(0, 1]`.
    pub fn target_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "target rate must be in (0, 1]");
        self.target_rate = rate;
        self
    }

    /// Sets the rate-penalty weight.
    pub fn rate_weight(mut self, weight: f64) -> Self {
        self.rate_weight = weight.max(0.0);
        self
    }

    /// Trains a model on row-major sequences.
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or any sequence is empty/misshapen.
    pub fn train<S: AsRef<[f64]>>(&self, sequences: &[S]) -> SkipRnn {
        assert!(!sequences.is_empty(), "cannot train on no sequences");
        let mut model = SkipRnn::new(self.features, self.hidden, self.seed);
        let mut grads = Grads::zeros(&model);
        let mut velocity = Grads::zeros(&model);

        for epoch in 0..self.epochs {
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.5);
            for seq in sequences {
                grads.clear();
                self.backward(&model, seq.as_ref(), &mut grads);
                let norm = grads.global_norm();
                if norm > self.clip_norm {
                    grads.scale(self.clip_norm / norm);
                }
                // Momentum SGD.
                velocity.w_in.scale(self.momentum);
                velocity
                    .w_in
                    .add_scaled(&grads.w_in, -(1.0 - self.momentum));
                velocity.w_rec.scale(self.momentum);
                velocity
                    .w_rec
                    .add_scaled(&grads.w_rec, -(1.0 - self.momentum));
                velocity.w_out.scale(self.momentum);
                velocity
                    .w_out
                    .add_scaled(&grads.w_out, -(1.0 - self.momentum));
                for (v, g) in velocity.b_h.iter_mut().zip(&grads.b_h) {
                    *v = self.momentum * *v - (1.0 - self.momentum) * g;
                }
                for (v, g) in velocity.w_gate.iter_mut().zip(&grads.w_gate) {
                    *v = self.momentum * *v - (1.0 - self.momentum) * g;
                }
                velocity.b_gate =
                    self.momentum * velocity.b_gate - (1.0 - self.momentum) * grads.b_gate;
                for (v, g) in velocity.b_out.iter_mut().zip(&grads.b_out) {
                    *v = self.momentum * *v - (1.0 - self.momentum) * g;
                }

                model.w_in.add_scaled(&velocity.w_in, lr);
                model.w_rec.add_scaled(&velocity.w_rec, lr);
                model.w_out.add_scaled(&velocity.w_out, lr);
                axpy(&mut model.b_h, &velocity.b_h, lr);
                axpy(&mut model.w_gate, &velocity.w_gate, lr);
                model.b_gate += lr * velocity.b_gate;
                axpy(&mut model.b_out, &velocity.b_out, lr);
            }
        }
        model
    }

    /// Mean training loss of a model over sequences (for tests/diagnostics).
    pub fn loss<S: AsRef<[f64]>>(&self, model: &SkipRnn, sequences: &[S]) -> f64 {
        let total: f64 = sequences
            .iter()
            .map(|s| {
                model
                    .forward_trace(s.as_ref(), self.target_rate, self.rate_weight)
                    .1
            })
            .sum();
        total / sequences.len() as f64
    }

    /// BPTT over one sequence, accumulating into `grads`.
    fn backward(&self, model: &SkipRnn, values: &[f64], grads: &mut Grads) {
        let d = model.features();
        let len = values.len() / d;
        let (traces, _) = model.forward_trace(values, self.target_rate, self.rate_weight);
        let t_f = len as f64;
        let mean_rate = traces.iter().filter(|s| s.z).count() as f64 / t_f;
        // d(rate penalty)/dz_t, identical for every step.
        let dz_rate = 2.0 * self.rate_weight * (mean_rate - self.target_rate) / t_f;
        let pred_scale = 2.0 / (t_f * d as f64);

        let zeros_h = vec![0.0; model.hidden()];
        let mut dh_carry = vec![0.0; model.hidden()];
        let mut du_carry = 0.0f64; // dL/du_{t+1}

        for t in (0..len).rev() {
            let step = &traces[t];
            let h_prev = if t == 0 { &zeros_h } else { &traces[t - 1].h };
            let mut dh = std::mem::replace(&mut dh_carry, vec![0.0; model.hidden()]);

            // Readout loss at this step (predicting x_{t+1}).
            if !step.pred_err.is_empty() {
                let dpred: Vec<f64> = step.pred_err.iter().map(|e| e * pred_scale).collect();
                grads.w_out.add_outer(&dpred, &step.h, 1.0);
                axpy(&mut grads.b_out, &dpred, 1.0);
                axpy(&mut dh, &model.w_out.matvec_transpose(&dpred), 1.0);
            }

            // Gate recursion: u_{t+1} = z·Δu + (1−z)·min(u + Δu, 1).
            let (ddu_coeff, du_pass_coeff, dz_from_u) = if step.z {
                (1.0, 0.0, du_carry * (step.du - step.u))
            } else if step.clamped {
                (0.0, 0.0, du_carry * (step.du - 1.0))
            } else {
                (1.0, 1.0, du_carry * (step.du - (step.u + step.du)))
            };
            let ddu = du_carry * ddu_coeff;

            // dL/dz: rate penalty + u-recursion path (+ state path when the
            // candidate state exists, folded into dh below).
            let mut dz = dz_rate + dz_from_u;
            if step.z {
                // h_t switched from h_{t-1} to the candidate: the state-path
                // subgradient uses the realized difference.
                dz += dh
                    .iter()
                    .zip(step.h.iter().zip(h_prev))
                    .map(|(g, (h, p))| g * (h - p))
                    .sum::<f64>();
            }

            // Straight-through: u_t receives the z gradient plus the pass-
            // through of the recursion.
            let du_total = du_carry * du_pass_coeff + dz;

            // Gate increment Δu = σ(w_g·h_t + b_g).
            let dpre = ddu * step.du * (1.0 - step.du);
            if dpre != 0.0 {
                axpy(&mut grads.w_gate, &step.h, dpre);
                grads.b_gate += dpre;
                axpy(&mut dh, &model.w_gate, dpre);
            }

            // State update (only when collected): h_t = tanh(a).
            if step.z {
                let da: Vec<f64> = dh
                    .iter()
                    .zip(&step.h)
                    .map(|(g, h)| g * (1.0 - h * h))
                    .collect();
                let x = &values[t * d..(t + 1) * d];
                grads.w_in.add_outer(&da, x, 1.0);
                grads.w_rec.add_outer(&da, h_prev, 1.0);
                axpy(&mut grads.b_h, &da, 1.0);
                dh_carry = model.w_rec.matvec_transpose(&da);
            } else {
                dh_carry = dh;
            }

            du_carry = du_total;
        }
        // u_0 is the constant 1: its gradient is discarded.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_family(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| ((t as f64) * (0.1 + 0.02 * (s % 5) as f64)).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn training_reduces_loss() {
        let seqs = sine_family(8, 60);
        let trainer = Trainer::new(1, 8, 11).epochs(6).rate_weight(0.1);
        let initial = trainer.loss(&SkipRnn::new(1, 8, 11), &seqs);
        let model = trainer.train(&seqs);
        let trained = trainer.loss(&model, &seqs);
        assert!(trained < initial, "loss {initial} -> {trained}");
    }

    #[test]
    fn rate_penalty_steers_collection_rate() {
        let seqs = sine_family(8, 80);
        let low = Trainer::new(1, 8, 12)
            .epochs(6)
            .target_rate(0.2)
            .rate_weight(8.0)
            .train(&seqs);
        let high = Trainer::new(1, 8, 12)
            .epochs(6)
            .target_rate(0.95)
            .rate_weight(8.0)
            .train(&seqs);
        let rate = |m: &SkipRnn| -> f64 {
            let total: usize = seqs.iter().map(|s| m.sample(s, 0.0).len()).sum();
            total as f64 / (seqs.len() * 80) as f64
        };
        assert!(
            rate(&high) > rate(&low) + 0.1,
            "high={} low={}",
            rate(&high),
            rate(&low)
        );
    }

    #[test]
    fn gradients_are_finite_on_long_sequences() {
        let seqs = sine_family(2, 400);
        let trainer = Trainer::new(1, 12, 13).epochs(1);
        let model = trainer.train(&seqs);
        assert!(model.w_in.frobenius_sq().is_finite());
        assert!(model.w_rec.frobenius_sq().is_finite());
        assert!(model.b_gate.is_finite());
    }

    #[test]
    fn multifeature_training_works() {
        let seqs: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..50 * 3)
                    .map(|i| ((i + s * 7) as f64 * 0.21).sin())
                    .collect()
            })
            .collect();
        let trainer = Trainer::new(3, 8, 14).epochs(2);
        let model = trainer.train(&seqs);
        assert_eq!(model.features(), 3);
        let idx = model.sample(&seqs[0], 0.0);
        assert!(!idx.is_empty());
        assert!(*idx.last().unwrap() < 50);
    }

    #[test]
    fn trained_model_is_deterministic() {
        let seqs = sine_family(3, 40);
        let a = Trainer::new(1, 8, 15).epochs(2).train(&seqs);
        let b = Trainer::new(1, 8, 15).epochs(2).train(&seqs);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot train on no sequences")]
    fn rejects_empty_training_set() {
        let empty: Vec<Vec<f64>> = Vec::new();
        let _ = Trainer::new(1, 8, 16).train(&empty);
    }

    /// Finite-difference check of the analytic gradients for the readout
    /// parameters. The readout path is smooth (no straight-through
    /// approximations touch it), so BPTT must match numeric derivatives to
    /// first order; a bookkeeping bug in the trace indexing would show up
    /// immediately.
    #[test]
    fn readout_gradients_match_finite_differences() {
        let seq: Vec<f64> = (0..40).map(|t| (t as f64 * 0.31).sin() * 1.3).collect();
        // rate_weight = 0: the loss is exactly the mean prediction error.
        let trainer = Trainer::new(1, 6, 17).rate_weight(0.0);
        let model = SkipRnn::new(1, 6, 17);
        let mut grads = Grads::zeros(&model);
        trainer.backward(&model, &seq, &mut grads);

        let eps = 1e-6;
        // Check every w_out entry and the bias.
        for col in 0..model.hidden() {
            let mut plus = model.clone();
            *plus.w_out.get_mut(0, col) += eps;
            let mut minus = model.clone();
            *minus.w_out.get_mut(0, col) -= eps;
            let numeric = (plus.forward_trace(&seq, 0.5, 0.0).1
                - minus.forward_trace(&seq, 0.5, 0.0).1)
                / (2.0 * eps);
            let analytic = grads.w_out.get(0, col);
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "w_out[0,{col}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        let mut plus = model.clone();
        plus.b_out[0] += eps;
        let mut minus = model.clone();
        minus.b_out[0] -= eps;
        let numeric = (plus.forward_trace(&seq, 0.5, 0.0).1
            - minus.forward_trace(&seq, 0.5, 0.0).1)
            / (2.0 * eps);
        assert!(
            (numeric - grads.b_out[0]).abs() < 1e-5 * (1.0 + numeric.abs()),
            "b_out: numeric {numeric} vs analytic {}",
            grads.b_out[0]
        );
    }

    /// The recurrent-weight gradients contain the straight-through terms on
    /// top of the true prediction-path gradient, so they cannot match
    /// finite differences exactly — but when no gate decision flips under
    /// the perturbation, they must at least *descend*: a small step against
    /// the gradient must not increase the loss measurably.
    #[test]
    fn recurrent_gradient_step_descends() {
        let seqs: Vec<Vec<f64>> = (0..3)
            .map(|s| (0..60).map(|t| ((t + s) as f64 * 0.23).sin()).collect())
            .collect();
        let trainer = Trainer::new(1, 6, 18).rate_weight(0.0);
        let model = SkipRnn::new(1, 6, 18);
        let before = trainer.loss(&model, &seqs);
        let mut grads = Grads::zeros(&model);
        for seq in &seqs {
            trainer.backward(&model, seq, &mut grads);
        }
        let mut stepped = model.clone();
        let lr = 1e-3;
        stepped.w_in.add_scaled(&grads.w_in, -lr);
        stepped.w_rec.add_scaled(&grads.w_rec, -lr);
        stepped.w_out.add_scaled(&grads.w_out, -lr);
        crate::linalg::axpy(&mut stepped.b_h, &grads.b_h, -lr);
        crate::linalg::axpy(&mut stepped.b_out, &grads.b_out, -lr);
        let after = trainer.loss(&stepped, &seqs);
        assert!(after <= before + 1e-9, "loss rose: {before} -> {after}");
    }
}
