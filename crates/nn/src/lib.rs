//! A minimal neural-network substrate implementing the Skip RNN adaptive
//! sampling policy (Campos et al. \[22\], paper §5.5).
//!
//! The Skip RNN is a recurrent network with a binary *state-update gate*:
//! at each step the gate decides whether to collect the measurement and
//! update the hidden state, or to skip it. While skipping, the update
//! probability accumulates, so the network wakes up after a data-dependent
//! number of steps. The paper uses Skip RNNs as its third adaptive policy
//! to show AGE generalizes to trainable samplers.
//!
//! Everything is built from scratch: a small dense linear-algebra module
//! ([`Mat`]), the gated recurrent cell ([`SkipRnn`]), and training by
//! backpropagation through time with a straight-through estimator for the
//! binary gate ([`Trainer`]). The trained model implements
//! [`age_sampling::Policy`] via [`SkipRnnPolicy`], whose gate bias tunes
//! the average collection rate (the offline per-rate fit, mirroring the
//! paper's per-rate training).
//!
//! # Examples
//!
//! ```
//! use age_nn::{SkipRnn, SkipRnnPolicy, Trainer};
//! use age_sampling::Policy;
//!
//! // Train a tiny model on two short sequences, then sample.
//! let seqs: Vec<Vec<f64>> = vec![
//!     (0..30).map(|t| (t as f64 * 0.3).sin()).collect(),
//!     (0..30).map(|t| (t as f64 * 0.05).sin()).collect(),
//! ];
//! let model = Trainer::new(1, 8, 42).epochs(2).train(&seqs);
//! let policy = SkipRnnPolicy::new(model, 0.0);
//! let idx = policy.sample(&seqs[0], 1);
//! assert!(!idx.is_empty());
//! ```

mod linalg;
mod policy;
mod rnn;
mod serde_bytes;
mod train;

pub use linalg::Mat;
pub use policy::{fit_gate_bias, SkipRnnPolicy};
pub use rnn::{SkipRnn, StepTrace};
pub use serde_bytes::ModelDecodeError;
pub use train::Trainer;
