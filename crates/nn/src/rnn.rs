//! The Skip RNN cell (Campos et al. [22]).

use age_telemetry::DetRng;

use crate::linalg::{dot, Mat};

/// A recurrent cell with a binary state-update (skip) gate.
///
/// At step `t` the accumulated update probability `u_t` is binarized:
/// `z_t = 1[u_t ≥ 0.5]`. When `z_t = 1` the measurement is *collected* and
/// the hidden state updates (`h_t = tanh(W x_t + U h_{t-1} + b)`); when
/// `z_t = 0` the step is skipped and the state is held. The gate then
/// evolves as
///
/// ```text
/// Δu_t    = σ(w_u · h_t + b_u + bias)
/// u_{t+1} = z_t · Δu_t + (1 − z_t) · min(u_t + Δu_t, 1)
/// ```
///
/// so skipped steps accumulate probability until the cell wakes — the
/// number of skipped steps is data-dependent, which makes the collection
/// count track the sensed event (the leak AGE closes). The external `bias`
/// shifts the gate pre-activation and thereby the average collection rate;
/// [`crate::fit_gate_bias`] tunes it to a target rate offline.
#[derive(Debug, Clone, PartialEq)]
pub struct SkipRnn {
    /// Input→hidden weights (`H × d`).
    pub w_in: Mat,
    /// Hidden→hidden weights (`H × H`).
    pub w_rec: Mat,
    /// Hidden bias (`H`).
    pub b_h: Vec<f64>,
    /// Gate weights (`H`).
    pub w_gate: Vec<f64>,
    /// Gate bias.
    pub b_gate: f64,
    /// Readout weights predicting the next measurement (`d × H`).
    pub w_out: Mat,
    /// Readout bias (`d`).
    pub b_out: Vec<f64>,
}

/// Per-step forward trace used by backpropagation through time.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// Gate decision: was the measurement collected?
    pub z: bool,
    /// Accumulated update probability before binarization.
    pub u: f64,
    /// Gate increment `Δu_t` after the (possible) state update.
    pub du: f64,
    /// Whether the `min(·, 1)` clamp in the gate recursion was active.
    pub clamped: bool,
    /// Hidden state after the step (`H`).
    pub h: Vec<f64>,
    /// Readout prediction error for the *next* measurement (`d`), empty at
    /// the final step.
    pub pred_err: Vec<f64>,
}

impl SkipRnn {
    /// Creates a randomly initialized cell for `features`-dimensional
    /// measurements and `hidden` state units.
    ///
    /// # Panics
    ///
    /// Panics if `features` or `hidden` is zero.
    pub fn new(features: usize, hidden: usize, seed: u64) -> Self {
        assert!(features > 0 && hidden > 0, "dimensions must be positive");
        let mut rng = DetRng::seed_from_u64(seed);
        let s_in = (1.0 / features as f64).sqrt();
        let s_rec = (1.0 / hidden as f64).sqrt();
        SkipRnn {
            w_in: Mat::random(hidden, features, s_in, &mut rng),
            w_rec: Mat::random(hidden, hidden, s_rec, &mut rng),
            b_h: vec![0.0; hidden],
            w_gate: {
                let m = Mat::random(1, hidden, s_rec, &mut rng);
                (0..hidden).map(|c| m.get(0, c)).collect()
            },
            // Slight positive bias: start by collecting fairly often.
            b_gate: 0.5,
            w_out: Mat::random(features, hidden, s_rec, &mut rng),
            b_out: vec![0.0; features],
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.b_h.len()
    }

    /// Measurement feature count.
    pub fn features(&self) -> usize {
        self.b_out.len()
    }

    /// Runs the cell over a row-major sequence, returning the collected
    /// indices. `bias` shifts the gate pre-activation (0.0 = as trained).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not a multiple of the feature count.
    pub fn sample(&self, values: &[f64], bias: f64) -> Vec<usize> {
        let d = self.features();
        assert_eq!(values.len() % d, 0, "values must be whole measurements");
        let len = values.len() / d;
        let mut collected = Vec::new();
        let mut h = vec![0.0; self.hidden()];
        let mut u = 1.0f64;
        for t in 0..len {
            let z = u >= 0.5;
            if z {
                collected.push(t);
                h = self.update(&values[t * d..(t + 1) * d], &h);
            }
            let du = sigmoid(dot(&self.w_gate, &h) + self.b_gate + bias);
            u = if z { du } else { (u + du).min(1.0) };
        }
        collected
    }

    /// Full forward pass with traces for training. Returns the traces and
    /// the total loss: mean squared prediction error plus
    /// `rate_weight · (mean(z) − target_rate)²`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or not a multiple of the feature count.
    pub fn forward_trace(
        &self,
        values: &[f64],
        target_rate: f64,
        rate_weight: f64,
    ) -> (Vec<StepTrace>, f64) {
        let d = self.features();
        assert!(!values.is_empty(), "cannot trace an empty sequence");
        assert_eq!(values.len() % d, 0, "values must be whole measurements");
        let len = values.len() / d;
        let mut traces = Vec::with_capacity(len);
        let mut h = vec![0.0; self.hidden()];
        let mut u = 1.0f64;
        let mut pred_loss = 0.0;
        let mut updates = 0usize;

        for t in 0..len {
            let z = u >= 0.5;
            if z {
                updates += 1;
                h = self.update(&values[t * d..(t + 1) * d], &h);
            }
            let pre = dot(&self.w_gate, &h) + self.b_gate;
            let du = sigmoid(pre);
            let clamped = !z && u + du > 1.0;
            let next_u = if z { du } else { (u + du).min(1.0) };

            // Predict the next measurement from the current state.
            let pred_err = if t + 1 < len {
                let mut pred = self.w_out.matvec(&h);
                for (p, b) in pred.iter_mut().zip(&self.b_out) {
                    *p += b;
                }
                let truth = &values[(t + 1) * d..(t + 2) * d];
                let err: Vec<f64> = pred.iter().zip(truth).map(|(p, x)| p - x).collect();
                pred_loss += err.iter().map(|e| e * e).sum::<f64>();
                err
            } else {
                Vec::new()
            };

            traces.push(StepTrace {
                z,
                u,
                du,
                clamped,
                h: h.clone(),
                pred_err,
            });
            u = next_u;
        }
        let rate = updates as f64 / len as f64;
        let loss = pred_loss / (len as f64 * d as f64) + rate_weight * (rate - target_rate).powi(2);
        (traces, loss)
    }

    /// One state update `tanh(W x + U h + b)`.
    pub(crate) fn update(&self, x: &[f64], h: &[f64]) -> Vec<f64> {
        let mut a = self.w_in.matvec(x);
        let rec = self.w_rec.matvec(h);
        for ((ai, r), b) in a.iter_mut().zip(&rec).zip(&self.b_h) {
            *ai = (*ai + r + b).tanh();
        }
        a
    }
}

/// Numerically stable logistic function.
pub(crate) fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f64) -> Vec<f64> {
        (0..len).map(|t| scale * (t as f64 * 0.4).sin()).collect()
    }

    #[test]
    fn always_collects_the_first_measurement() {
        let rnn = SkipRnn::new(1, 8, 0);
        let idx = rnn.sample(&seq(50, 1.0), 0.0);
        assert_eq!(idx[0], 0);
    }

    #[test]
    fn indices_are_strictly_increasing() {
        let rnn = SkipRnn::new(2, 8, 1);
        let values: Vec<f64> = (0..120).map(|i| (i as f64 * 0.17).cos()).collect();
        let idx = rnn.sample(&values, 0.3);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 60);
    }

    #[test]
    fn gate_bias_controls_collection_rate() {
        let rnn = SkipRnn::new(1, 8, 2);
        let values = seq(200, 1.0);
        let sparse = rnn.sample(&values, -4.0).len();
        let dense = rnn.sample(&values, 4.0).len();
        assert!(dense > sparse, "dense={dense} sparse={sparse}");
        assert_eq!(dense, 200); // strongly positive bias collects everything
    }

    #[test]
    fn strongly_negative_bias_still_wakes_up() {
        // Accumulation guarantees the cell never sleeps forever.
        let rnn = SkipRnn::new(1, 8, 3);
        let idx = rnn.sample(&seq(400, 1.0), -6.0);
        assert!(idx.len() > 1, "cell must wake up eventually");
    }

    #[test]
    fn trace_matches_sample_decisions() {
        let rnn = SkipRnn::new(1, 8, 4);
        let values = seq(80, 1.5);
        let idx = rnn.sample(&values, 0.0);
        let (traces, _) = rnn.forward_trace(&values, 0.5, 0.0);
        let traced: Vec<usize> = traces
            .iter()
            .enumerate()
            .filter(|(_, s)| s.z)
            .map(|(t, _)| t)
            .collect();
        assert_eq!(idx, traced);
    }

    #[test]
    fn loss_is_finite_and_rate_term_counts() {
        let rnn = SkipRnn::new(1, 8, 5);
        let values = seq(60, 1.0);
        let (_, loss_no_rate) = rnn.forward_trace(&values, 0.5, 0.0);
        let (traces, loss_rate) = rnn.forward_trace(&values, 0.0, 100.0);
        assert!(loss_no_rate.is_finite());
        let rate = traces.iter().filter(|s| s.z).count() as f64 / traces.len() as f64;
        assert!((loss_rate - loss_no_rate - 100.0 * rate * rate).abs() < 1e-9);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SkipRnn::new(3, 16, 9);
        let b = SkipRnn::new(3, 16, 9);
        assert_eq!(a, b);
    }
}
