//! Minimal dense matrix support for the Skip RNN.

use age_telemetry::DetRng;

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use age_nn::Mat;
///
/// let m = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix with entries drawn uniformly from `[-scale, scale]` —
    /// the usual fan-in scaled initialization.
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut DetRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Mat { rows, cols, data }
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Mat {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable entry access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Mutable entry access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }

    /// `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// `selfᵀ · v` (used for backpropagating through a linear layer).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn matvec_transpose(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (&vr, row) in v.iter().zip(self.data.chunks_exact(self.cols)) {
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }

    /// Accumulates the outer product `self += scale · u vᵀ` (gradient of a
    /// linear layer).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], scale: f64) {
        assert_eq!(u.len(), self.rows, "outer product row mismatch");
        assert_eq!(v.len(), self.cols, "outer product column mismatch");
        for (&ur, row) in u.iter().zip(self.data.chunks_exact_mut(self.cols)) {
            for (entry, &b) in row.iter_mut().zip(v) {
                *entry += scale * ur * b;
            }
        }
    }

    /// `self += scale · other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Mat, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Multiplies every entry by `scale`.
    pub fn scale(&mut self, scale: f64) {
        for a in &mut self.data {
            *a *= scale;
        }
    }

    /// Resets to all zeros.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Sum of squared entries (for diagnostics/regularization).
    pub fn frobenius_sq(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum()
    }
}

/// In-place `a += scale · b` for vectors.
///
/// # Panics
///
/// Panics if lengths differ.
pub(crate) fn axpy(a: &mut [f64], b: &[f64], scale: f64) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

/// Dot product.
///
/// # Panics
///
/// Panics if lengths differ.
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_and_transpose_agree() {
        let m = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_transpose(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn add_scaled_and_clear() {
        let mut a = Mat::zeros(1, 2);
        let b = Mat::from_rows(&[&[2.0, -2.0]]);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.get(0, 0), 4.0);
        a.clear();
        assert_eq!(a.frobenius_sq(), 0.0);
    }

    #[test]
    fn random_is_bounded_and_seeded() {
        let mut rng = DetRng::seed_from_u64(1);
        let m = Mat::random(10, 10, 0.3, &mut rng);
        assert!((0..10).all(|r| (0..10).all(|c| m.get(r, c).abs() <= 0.3)));
        let mut rng2 = DetRng::seed_from_u64(1);
        assert_eq!(m, Mat::random(10, 10, 0.3, &mut rng2));
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_dims() {
        let _ = Mat::zeros(2, 3).matvec(&[1.0]);
    }

    #[test]
    fn vector_helpers() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, &[10.0, 20.0], 0.1);
        assert_eq!(a, vec![2.0, 4.0]);
        assert_eq!(dot(&a, &[1.0, 1.0]), 6.0);
    }
}
