//! The trained Skip RNN as a sampling policy.

use age_sampling::{average_rate, Policy};

use crate::rnn::SkipRnn;

/// A trained [`SkipRnn`] wrapped as an [`age_sampling::Policy`], with a
/// gate-bias knob controlling the average collection rate.
///
/// The paper evaluates Skip RNNs at collection rates 30%…100% (§5.5). We
/// train one model per dataset and tune the bias per rate with
/// [`fit_gate_bias`] — the bias shifts the gate pre-activation, trading
/// collection frequency against skips without retraining, while keeping
/// the *data-dependent* skip structure that causes leakage.
#[derive(Debug, Clone, PartialEq)]
pub struct SkipRnnPolicy {
    model: SkipRnn,
    bias: f64,
}

impl SkipRnnPolicy {
    /// Wraps a trained model with a gate bias (0.0 = as trained).
    pub fn new(model: SkipRnn, bias: f64) -> Self {
        SkipRnnPolicy { model, bias }
    }

    /// The gate bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The underlying model.
    pub fn model(&self) -> &SkipRnn {
        &self.model
    }
}

impl Policy for SkipRnnPolicy {
    fn name(&self) -> &'static str {
        "SkipRNN"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        assert_eq!(
            features,
            self.model.features(),
            "policy was trained for {} features",
            self.model.features()
        );
        self.model.sample(values, self.bias)
    }
}

/// Fits the gate bias so the policy's mean collection rate over the
/// training `sequences` approximates `target_rate` (bisection; the rate is
/// monotone non-decreasing in the bias).
///
/// # Panics
///
/// Panics if `target_rate` is outside `(0, 1]`.
pub fn fit_gate_bias<S: AsRef<[f64]>>(
    model: &SkipRnn,
    sequences: &[S],
    features: usize,
    target_rate: f64,
    iters: usize,
) -> f64 {
    assert!(
        target_rate > 0.0 && target_rate <= 1.0,
        "target_rate must be in (0, 1]"
    );
    let mut lo = -12.0f64;
    let mut hi = 12.0f64;
    let mut best = (f64::INFINITY, 0.0f64);
    for _ in 0..iters.max(1) {
        let mid = 0.5 * (lo + hi);
        let policy = SkipRnnPolicy::new(model.clone(), mid);
        let rate = average_rate(&policy, sequences, features);
        let gap = (rate - target_rate).abs();
        if gap < best.0 {
            best = (gap, mid);
        }
        if rate > target_rate {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::Trainer;

    fn training_sequences() -> Vec<Vec<f64>> {
        (0..10)
            .map(|s| {
                (0..120)
                    .map(|t| ((t as f64) * (0.08 + 0.05 * (s % 3) as f64)).sin() * 1.2)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn policy_implements_trait() {
        let seqs = training_sequences();
        let model = Trainer::new(1, 8, 20).epochs(2).train(&seqs);
        let policy = SkipRnnPolicy::new(model, 0.0);
        assert_eq!(policy.name(), "SkipRNN");
        assert!(policy.is_adaptive());
        let idx = policy.sample(&seqs[0], 1);
        assert_eq!(idx[0], 0);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fitted_bias_hits_target_rates() {
        let seqs = training_sequences();
        let model = Trainer::new(1, 8, 21).epochs(3).train(&seqs);
        for target in [0.3, 0.6, 0.9] {
            let bias = fit_gate_bias(&model, &seqs, 1, target, 20);
            let got = average_rate(&SkipRnnPolicy::new(model.clone(), bias), &seqs, 1);
            assert!(
                (got - target).abs() < 0.15,
                "target={target} got={got} bias={bias}"
            );
        }
    }

    #[test]
    fn bias_is_monotone_in_target() {
        let seqs = training_sequences();
        let model = Trainer::new(1, 8, 22).epochs(2).train(&seqs);
        let low = fit_gate_bias(&model, &seqs, 1, 0.3, 16);
        let high = fit_gate_bias(&model, &seqs, 1, 0.9, 16);
        assert!(high > low, "bias(0.9)={high} bias(0.3)={low}");
    }

    #[test]
    fn collection_is_data_dependent() {
        // The leakage prerequisite: the learned sampler's collection count
        // must depend on the input signal (the *direction* is whatever the
        // model learned; the side-channel only needs the dependence).
        let seqs = training_sequences();
        let flat = vec![0.0f64; 120];
        let wild: Vec<f64> = (0..120)
            .map(|t| ((t * t) as f64 * 0.37).sin() * 1.5)
            .collect();
        // Any individual initialization may learn a gate that happens to
        // fire identically on these two probes; the property only requires
        // that training *can* produce a data-dependent sampler.
        let dependent = (23..28).any(|seed| {
            let model = Trainer::new(1, 8, seed).epochs(4).train(&seqs);
            let bias = fit_gate_bias(&model, &seqs, 1, 0.5, 16);
            let policy = SkipRnnPolicy::new(model, bias);
            policy.sample(&flat, 1).len() != policy.sample(&wild, 1).len()
        });
        assert!(dependent, "collection count must track the data");
    }

    #[test]
    #[should_panic(expected = "trained for")]
    fn rejects_wrong_feature_count() {
        let model = Trainer::new(2, 4, 24).epochs(1).train(&[vec![0.0; 20]]);
        let _ = SkipRnnPolicy::new(model, 0.0).sample(&[0.0; 10], 1);
    }
}
