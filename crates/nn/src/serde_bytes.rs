//! Serialization of trained Skip RNN models.
//!
//! The paper ships its trained sampling models as artifacts so evaluators
//! need not retrain. This module provides the same capability: a compact,
//! versioned, dependency-free binary format (`AGE-RNN1`) with explicit
//! little-endian encoding, so a model trained on one host loads bit-exactly
//! on another.

use crate::linalg::Mat;
use crate::rnn::SkipRnn;

const MAGIC: &[u8; 8] = b"AGE-RNN1";

/// Error returned by [`SkipRnn::from_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDecodeError {
    /// The buffer does not start with the `AGE-RNN1` magic.
    BadMagic,
    /// The buffer ended before all declared weights were read.
    Truncated,
    /// Header dimensions are zero or implausibly large.
    BadDimensions,
    /// Trailing bytes after the declared payload.
    TrailingBytes,
}

impl std::fmt::Display for ModelDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelDecodeError::BadMagic => f.write_str("missing AGE-RNN1 header"),
            ModelDecodeError::Truncated => f.write_str("model file truncated"),
            ModelDecodeError::BadDimensions => f.write_str("invalid model dimensions"),
            ModelDecodeError::TrailingBytes => f.write_str("unexpected trailing bytes"),
        }
    }
}

impl std::error::Error for ModelDecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ModelDecodeError> {
        let end = self.pos.checked_add(n).ok_or(ModelDecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(ModelDecodeError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ModelDecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, ModelDecodeError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, ModelDecodeError> {
        (0..n).map(|_| self.f64()).collect()
    }
}

fn write_mat(out: &mut Vec<u8>, m: &Mat) {
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            out.extend_from_slice(&m.get(r, c).to_le_bytes());
        }
    }
}

fn read_mat(r: &mut Reader<'_>, rows: usize, cols: usize) -> Result<Mat, ModelDecodeError> {
    let mut m = Mat::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            *m.get_mut(i, j) = r.f64()?;
        }
    }
    Ok(m)
}

impl SkipRnn {
    /// Serializes the model to the `AGE-RNN1` binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let h = self.hidden();
        let d = self.features();
        let mut out = Vec::with_capacity(16 + 8 * (h * d * 2 + h * h + 2 * h + d + 1));
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(d as u32).to_le_bytes());
        out.extend_from_slice(&(h as u32).to_le_bytes());
        write_mat(&mut out, &self.w_in);
        write_mat(&mut out, &self.w_rec);
        for &v in &self.b_h {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.w_gate {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&self.b_gate.to_le_bytes());
        write_mat(&mut out, &self.w_out);
        for &v in &self.b_out {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes a model saved with [`SkipRnn::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelDecodeError`] on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use age_nn::SkipRnn;
    ///
    /// let model = SkipRnn::new(3, 8, 1);
    /// let bytes = model.to_bytes();
    /// let loaded = SkipRnn::from_bytes(&bytes)?;
    /// assert_eq!(loaded, model);
    /// # Ok::<(), age_nn::ModelDecodeError>(())
    /// ```
    pub fn from_bytes(bytes: &[u8]) -> Result<SkipRnn, ModelDecodeError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(ModelDecodeError::BadMagic);
        }
        let d = r.u32()? as usize;
        let h = r.u32()? as usize;
        if d == 0 || h == 0 || d > 4096 || h > 4096 {
            return Err(ModelDecodeError::BadDimensions);
        }
        let model = SkipRnn {
            w_in: read_mat(&mut r, h, d)?,
            w_rec: read_mat(&mut r, h, h)?,
            b_h: r.f64_vec(h)?,
            w_gate: r.f64_vec(h)?,
            b_gate: r.f64()?,
            w_out: read_mat(&mut r, d, h)?,
            b_out: r.f64_vec(d)?,
        };
        if r.pos != bytes.len() {
            return Err(ModelDecodeError::TrailingBytes);
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::Trainer;

    #[test]
    fn roundtrip_is_bit_exact() {
        let seqs: Vec<Vec<f64>> = (0..4)
            .map(|s| (0..50).map(|t| ((t + s) as f64 * 0.2).sin()).collect())
            .collect();
        let model = Trainer::new(1, 8, 31).epochs(2).train(&seqs);
        let loaded = SkipRnn::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(loaded, model);
        // And it behaves identically.
        assert_eq!(loaded.sample(&seqs[0], 0.0), model.sample(&seqs[0], 0.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            SkipRnn::from_bytes(b"nonsense"),
            Err(ModelDecodeError::BadMagic)
        );
        assert_eq!(
            SkipRnn::from_bytes(b"short"),
            Err(ModelDecodeError::Truncated)
        );
        assert_eq!(
            SkipRnn::from_bytes(b"WRONGMAG\x01\x00\x00\x00\x01\x00\x00\x00"),
            Err(ModelDecodeError::BadMagic)
        );
        let model = SkipRnn::new(2, 4, 1);
        let mut bytes = model.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(
            SkipRnn::from_bytes(&bytes),
            Err(ModelDecodeError::Truncated)
        );
        let mut bytes = model.to_bytes();
        bytes.push(0);
        assert_eq!(
            SkipRnn::from_bytes(&bytes),
            Err(ModelDecodeError::TrailingBytes)
        );
    }

    #[test]
    fn rejects_bad_dimensions() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        assert_eq!(
            SkipRnn::from_bytes(&bytes),
            Err(ModelDecodeError::BadDimensions)
        );
    }

    #[test]
    fn format_is_stable_across_instances() {
        // Same seed, same bytes: the format has no nondeterminism.
        let a = SkipRnn::new(3, 6, 9).to_bytes();
        let b = SkipRnn::new(3, 6, 9).to_bytes();
        assert_eq!(a, b);
    }
}
