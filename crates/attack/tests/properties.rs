//! Randomized property tests for the attacker toolkit, driven by the
//! workspace's deterministic PRNG (no external test deps).

use age_attack::{
    entropy, most_frequent_rate, nmi, AdaBoost, AttackSample, ConfusionMatrix, DecisionTree, Knn,
    Logistic, TreeParams,
};
use age_telemetry::DetRng;

const CASES: usize = 96;

fn random_vec(rng: &mut DetRng, len_range: std::ops::Range<usize>, hi: usize) -> Vec<usize> {
    let len = rng.gen_range(len_range);
    (0..len).map(|_| rng.gen_range(0usize..hi)).collect()
}

/// NMI is always within [0, 1].
#[test]
fn nmi_is_bounded() {
    let mut rng = DetRng::seed_from_u64(0xA1);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..300);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..6)).collect();
        let sizes: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..40)).collect();
        let v = nmi(&labels, &sizes);
        assert!((0.0..=1.0 + 1e-9).contains(&v), "nmi={v}");
    }
}

/// NMI is symmetric in its arguments.
#[test]
fn nmi_is_symmetric() {
    let mut rng = DetRng::seed_from_u64(0xA2);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..300);
        let a: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..6)).collect();
        let b: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..6)).collect();
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }
}

/// NMI of a variable with itself is 1 (unless constant, where it is 0).
#[test]
fn nmi_self_is_maximal() {
    let mut rng = DetRng::seed_from_u64(0xA3);
    for _ in 0..CASES {
        let labels = random_vec(&mut rng, 2..200, 5);
        let distinct = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        let v = nmi(&labels, &labels);
        if distinct > 1 {
            assert!((v - 1.0).abs() < 1e-9, "v={v}");
        } else {
            assert_eq!(v, 0.0);
        }
    }
}

/// Entropy is non-negative and maximized by the uniform distribution.
#[test]
fn entropy_bounds() {
    let mut rng = DetRng::seed_from_u64(0xA4);
    for _ in 0..CASES {
        let counts = random_vec(&mut rng, 1..20, 100);
        let h = entropy(&counts);
        assert!(h >= 0.0);
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        if nonzero > 0 {
            assert!(
                h <= (nonzero as f64).log2() + 1e-9,
                "h={h} nonzero={nonzero}"
            );
        }
    }
}

/// The most-frequent-label rate is a sane probability and a lower bound
/// for the uniform share.
#[test]
fn most_frequent_rate_bounds() {
    let mut rng = DetRng::seed_from_u64(0xA5);
    for _ in 0..CASES {
        let labels = random_vec(&mut rng, 1..200, 8);
        let r = most_frequent_rate(&labels);
        assert!((0.0..=1.0).contains(&r));
        let distinct = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(r >= 1.0 / distinct as f64 - 1e-12);
    }
}

/// Attack features are order-invariant in the message window.
#[test]
fn attack_features_are_order_invariant() {
    let mut rng = DetRng::seed_from_u64(0xA6);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..30);
        let mut sizes: Vec<usize> = (0..n).map(|_| rng.gen_range(1usize..4000)).collect();
        let label = rng.gen_range(0usize..5);
        let a = AttackSample::from_sizes(&sizes, label);
        sizes.reverse();
        let b = AttackSample::from_sizes(&sizes, label);
        assert_eq!(a, b);
    }
}

/// A confusion matrix's accuracy equals correct/total by construction.
#[test]
fn confusion_accuracy_is_consistent() {
    let mut rng = DetRng::seed_from_u64(0xA7);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..200);
        let pairs: Vec<(usize, usize)> = (0..n)
            .map(|_| (rng.gen_range(0usize..4), rng.gen_range(0usize..4)))
            .collect();
        let mut m = ConfusionMatrix::new(4);
        let mut correct = 0usize;
        for &(t, p) in &pairs {
            m.record(t, p);
            if t == p {
                correct += 1;
            }
        }
        assert!((m.accuracy() - correct as f64 / pairs.len() as f64).abs() < 1e-12);
    }
}

/// Every classifier family reaches at least majority-class accuracy on
/// its own training data.
#[test]
fn classifiers_beat_or_match_majority() {
    let mut rng = DetRng::seed_from_u64(0xA8);
    for _ in 0..CASES {
        let n = rng.gen_range(12usize..80);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0f64..10.0), rng.gen_range(0.0f64..10.0)])
            .collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..3)).collect();
        let majority = most_frequent_rate(&y);
        let ada = AdaBoost::fit(&x, &y, 3, 8);
        assert!(ada.accuracy(&x, &y) >= majority - 1e-9, "adaboost");
        let tree = DecisionTree::fit(&x, &y, &vec![1.0; x.len()], 3, TreeParams::default());
        let tree_acc = x
            .iter()
            .zip(&y)
            .filter(|(r, &l)| tree.predict(r) == l)
            .count() as f64
            / x.len() as f64;
        assert!(tree_acc >= majority - 1e-9, "tree");
        // Logistic regression and kNN carry no majority guarantee on
        // adversarial tiny samples (gradient descent may stop early; exact
        // duplicates can vote against their own label) — assert totality
        // and sane ranges instead.
        let logistic = Logistic::fit(&x, &y, 3, 60);
        assert!((0.0..=1.0).contains(&logistic.accuracy(&x, &y)), "logistic");
        let knn = Knn::fit(&x, &y, 1);
        assert!((0.0..=1.0).contains(&knn.accuracy(&x, &y)), "knn");
    }
}

/// Tree predictions never panic on arbitrary in-dimension inputs.
#[test]
fn tree_predict_is_total() {
    let mut rng = DetRng::seed_from_u64(0xA9);
    for _ in 0..CASES {
        let n = rng.gen_range(4usize..40);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen_range(0.0f64..5.0)]).collect();
        let y: Vec<usize> = (0..n).map(|_| rng.gen_range(0usize..2)).collect();
        let probe = vec![rng.gen_range(-1e6f64..1e6)];
        let tree = DecisionTree::fit(&x, &y, &vec![1.0; x.len()], 2, TreeParams::default());
        let pred = tree.predict(&probe);
        assert!(pred < 2);
    }
}
