//! Property-based tests for the attacker toolkit.

use age_attack::{
    entropy, most_frequent_rate, nmi, AdaBoost, AttackSample, ConfusionMatrix, DecisionTree, Knn,
    Logistic, TreeParams,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// NMI is always within [0, 1].
    #[test]
    fn nmi_is_bounded(
        pairs in prop::collection::vec((0usize..6, 0usize..40), 1..300),
    ) {
        let labels: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = pairs.iter().map(|&(_, s)| s).collect();
        let v = nmi(&labels, &sizes);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "nmi={v}");
    }

    /// NMI is symmetric in its arguments.
    #[test]
    fn nmi_is_symmetric(
        pairs in prop::collection::vec((0usize..6, 0usize..6), 1..300),
    ) {
        let a: Vec<usize> = pairs.iter().map(|&(l, _)| l).collect();
        let b: Vec<usize> = pairs.iter().map(|&(_, s)| s).collect();
        prop_assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    /// NMI of a variable with itself is 1 (unless constant, where it is 0).
    #[test]
    fn nmi_self_is_maximal(labels in prop::collection::vec(0usize..5, 2..200)) {
        let distinct = labels.iter().collect::<std::collections::HashSet<_>>().len();
        let v = nmi(&labels, &labels);
        if distinct > 1 {
            prop_assert!((v - 1.0).abs() < 1e-9, "v={v}");
        } else {
            prop_assert_eq!(v, 0.0);
        }
    }

    /// Entropy is non-negative and maximized by the uniform distribution.
    #[test]
    fn entropy_bounds(counts in prop::collection::vec(0usize..100, 1..20)) {
        let h = entropy(&counts);
        prop_assert!(h >= 0.0);
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        if nonzero > 0 {
            prop_assert!(h <= (nonzero as f64).log2() + 1e-9, "h={h} nonzero={nonzero}");
        }
    }

    /// The most-frequent-label rate is a sane probability and a lower bound
    /// for the uniform share.
    #[test]
    fn most_frequent_rate_bounds(labels in prop::collection::vec(0usize..8, 1..200)) {
        let r = most_frequent_rate(&labels);
        prop_assert!((0.0..=1.0).contains(&r));
        let distinct = labels.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert!(r >= 1.0 / distinct as f64 - 1e-12);
    }

    /// Attack features are order-invariant in the message window.
    #[test]
    fn attack_features_are_order_invariant(
        mut sizes in prop::collection::vec(1usize..4000, 1..30),
        label in 0usize..5,
    ) {
        let a = AttackSample::from_sizes(&sizes, label);
        sizes.reverse();
        let b = AttackSample::from_sizes(&sizes, label);
        prop_assert_eq!(a, b);
    }

    /// A confusion matrix's accuracy equals correct/total by construction.
    #[test]
    fn confusion_accuracy_is_consistent(
        pairs in prop::collection::vec((0usize..4, 0usize..4), 1..200),
    ) {
        let mut m = ConfusionMatrix::new(4);
        let mut correct = 0usize;
        for &(t, p) in &pairs {
            m.record(t, p);
            if t == p {
                correct += 1;
            }
        }
        prop_assert!((m.accuracy() - correct as f64 / pairs.len() as f64).abs() < 1e-12);
    }

    /// Every classifier family reaches at least majority-class accuracy on
    /// its own training data.
    #[test]
    fn classifiers_beat_or_match_majority(
        rows in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0usize..3), 12..80),
    ) {
        let x: Vec<Vec<f64>> = rows.iter().map(|&(a, b, _)| vec![a, b]).collect();
        let y: Vec<usize> = rows.iter().map(|&(_, _, l)| l).collect();
        let majority = most_frequent_rate(&y);
        let ada = AdaBoost::fit(&x, &y, 3, 8);
        prop_assert!(ada.accuracy(&x, &y) >= majority - 1e-9, "adaboost");
        let tree = DecisionTree::fit(&x, &y, &vec![1.0; x.len()], 3, TreeParams::default());
        let tree_acc = x.iter().zip(&y).filter(|(r, &l)| tree.predict(r) == l).count() as f64
            / x.len() as f64;
        prop_assert!(tree_acc >= majority - 1e-9, "tree");
        // Logistic regression and kNN carry no majority guarantee on
        // adversarial tiny samples (gradient descent may stop early; exact
        // duplicates can vote against their own label) — assert totality
        // and sane ranges instead.
        let logistic = Logistic::fit(&x, &y, 3, 60);
        prop_assert!((0.0..=1.0).contains(&logistic.accuracy(&x, &y)), "logistic");
        let knn = Knn::fit(&x, &y, 1);
        prop_assert!((0.0..=1.0).contains(&knn.accuracy(&x, &y)), "knn");
    }

    /// Tree predictions never panic on arbitrary in-dimension inputs.
    #[test]
    fn tree_predict_is_total(
        rows in prop::collection::vec((0.0f64..5.0, 0usize..2), 4..40),
        probe in prop::collection::vec(-1e6f64..1e6, 1),
    ) {
        let x: Vec<Vec<f64>> = rows.iter().map(|&(a, _)| vec![a]).collect();
        let y: Vec<usize> = rows.iter().map(|&(_, l)| l).collect();
        let tree = DecisionTree::fit(&x, &y, &vec![1.0; x.len()], 2, TreeParams::default());
        let pred = tree.predict(&probe);
        prop_assert!(pred < 2);
    }
}
