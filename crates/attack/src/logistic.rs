//! Multinomial logistic regression — a linear attack model.
//!
//! Completes the attacker family (tree ensemble, instance-based, linear):
//! if AGE's fixed-length messages defeat all three inductive biases, the
//! claim that "an attacker can do no better than the most frequent event"
//! is not an artifact of one model class.

/// Softmax regression trained by batch gradient descent with L2 weight
/// decay and z-score feature standardization.
///
/// # Examples
///
/// ```
/// use age_attack::Logistic;
///
/// let x = vec![vec![0.0], vec![0.5], vec![9.5], vec![10.0]];
/// let y = vec![0, 0, 1, 1];
/// let model = Logistic::fit(&x, &y, 2, 200);
/// assert_eq!(model.predict(&[0.2]), 0);
/// assert_eq!(model.predict(&[9.8]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Logistic {
    /// `n_classes × (dim + 1)` weights, last column the bias.
    weights: Vec<Vec<f64>>,
    mean: Vec<f64>,
    scale: Vec<f64>,
}

impl Logistic {
    /// Trains for `epochs` full-batch gradient steps.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched, or labels exceed
    /// `n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, epochs: usize) -> Self {
        assert!(!x.is_empty(), "cannot fit on no samples");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let dim = x[0].len();
        let n = x.len() as f64;

        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut scale = vec![0.0; dim];
        for row in x {
            for ((s, &v), &m) in scale.iter_mut().zip(row).zip(&mean) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut scale {
            *s = s.sqrt().max(1e-12);
        }
        let std_x: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&mean)
                    .zip(&scale)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect()
            })
            .collect();

        let mut weights = vec![vec![0.0; dim + 1]; n_classes];
        let lr = 0.5;
        let decay = 1e-4;
        for _ in 0..epochs {
            let mut grad = vec![vec![0.0; dim + 1]; n_classes];
            for (row, &label) in std_x.iter().zip(y) {
                let probs = Self::softmax_scores(&weights, row);
                for (c, g) in grad.iter_mut().enumerate() {
                    let err = probs[c] - f64::from(u8::from(c == label));
                    for (gj, &xj) in g.iter_mut().zip(row) {
                        *gj += err * xj / n;
                    }
                    g[dim] += err / n;
                }
            }
            for (w, g) in weights.iter_mut().zip(&grad) {
                for (wj, &gj) in w.iter_mut().zip(g) {
                    *wj -= lr * (gj + decay * *wj);
                }
            }
        }
        Logistic {
            weights,
            mean,
            scale,
        }
    }

    fn softmax_scores(weights: &[Vec<f64>], std_row: &[f64]) -> Vec<f64> {
        let dim = std_row.len();
        let logits: Vec<f64> = weights
            .iter()
            .map(|w| w[dim] + w.iter().zip(std_row).map(|(a, b)| a * b).sum::<f64>())
            .collect();
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
        let total: f64 = exps.iter().sum();
        exps.into_iter().map(|e| e / total).collect()
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let std_row: Vec<f64> = row
            .iter()
            .zip(&self.mean)
            .zip(&self.scale)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect();
        let probs = Self::softmax_scores(&self.weights, &std_row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are never NaN"))
            .map(|(i, _)| i)
            .expect("n_classes > 0")
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = x
            .iter()
            .zip(y)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearly_separable_three_class() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 4.0 + (i % 5) as f64 * 0.2,
                (i % 7) as f64 * 0.1,
            ]);
            y.push(c);
        }
        let model = Logistic::fit(&x, &y, 3, 300);
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn constant_features_predict_majority() {
        let x = vec![vec![1.0]; 30];
        let y: Vec<usize> = (0..30).map(|i| usize::from(i % 3 == 0)).collect();
        let model = Logistic::fit(&x, &y, 2, 100);
        assert_eq!(model.predict(&[1.0]), 0);
    }

    #[test]
    fn probabilities_are_normalized() {
        let weights = vec![vec![1.0, 0.0], vec![-1.0, 0.0]];
        let probs = Logistic::softmax_scores(&weights, &[2.0]);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(probs[0] > probs[1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let _ = Logistic::fit(&[vec![0.0]], &[3], 2, 10);
    }
}
