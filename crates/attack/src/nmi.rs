//! Empirical mutual information between labels and message sizes (§5.3).
//!
//! The math lives in `age_telemetry::leakage` so the offline attack and the
//! online leakage audit score leakage with literally the same code: the
//! audit maintains streaming counts, this module scores complete traces,
//! and both reduce to the same count-based NMI over `BTreeMap`-ordered
//! sums (deterministic across runs and processes, unlike hash-map
//! iteration).
//!
//! Degenerate inputs are hardened, not panics: empty traces, a single
//! label class, or constant sizes all score 0.0 leakage — entropy
//! normalization never divides by zero and never returns NaN.

use age_telemetry::leakage;

/// Shannon entropy (bits) of a discrete empirical distribution given by
/// occurrence counts.
pub fn entropy(counts: &[usize]) -> f64 {
    leakage::entropy_from_counts(counts.iter().map(|&c| c as u64))
}

/// Empirical normalized mutual information between event labels and message
/// sizes (paper Eq. 3): `2·I(L, M) / (H(L) + H(M))`, using maximum
/// likelihood estimators of the entropies. Zero means sizes carry no
/// information about the label; returns 0 when either marginal is constant
/// (including empty input).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmi(labels: &[usize], sizes: &[usize]) -> f64 {
    leakage::nmi_pairs(labels, sizes)
}

/// Approximate permutation test for the significance of an observed NMI
/// (paper §5.3, following Ojala & Garriga): shuffles the sizes
/// `permutations` times and returns the estimated p-value — the fraction of
/// shuffles whose NMI is at least the observed value (with the +1
/// correction for an unbiased estimator).
///
/// The null hypothesis is that sizes and labels are independent; a small
/// p-value means the observed NMI reflects real leakage. Degenerate inputs
/// (empty traces or zero permutations) return 1.0: no evidence against
/// the null.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn permutation_test(labels: &[usize], sizes: &[usize], permutations: usize, seed: u64) -> f64 {
    leakage::permutation_test_pairs(labels, sizes, permutations, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[10]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Zero counts are ignored.
        assert!((entropy(&[5, 0, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_perfect_dependence_is_one() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let sizes: Vec<usize> = labels.iter().map(|&l| 100 + l * 50).collect();
        assert!((nmi(&labels, &sizes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_empty_input_is_zero() {
        assert_eq!(nmi(&[], &[]), 0.0);
        assert!(!nmi(&[], &[]).is_nan());
    }

    #[test]
    fn nmi_single_label_class_is_zero() {
        // Only one event ever occurs: H(L) = 0, nothing to leak. The
        // normalization must not divide 0 by 0.
        let labels = vec![3usize; 200];
        let sizes: Vec<usize> = (0..200).map(|i| 100 + i % 7).collect();
        let v = nmi(&labels, &sizes);
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }

    #[test]
    fn nmi_constant_sizes_is_zero() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let sizes = vec![220usize; 100];
        let v = nmi(&labels, &sizes);
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }

    #[test]
    fn nmi_both_marginals_constant_is_zero() {
        // H(L) + H(M) = 0: the normalizing denominator is zero and must be
        // guarded, not divided by.
        let v = nmi(&[1usize; 50], &[64usize; 50]);
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }

    #[test]
    fn nmi_independent_variables_is_near_zero() {
        // Independent but not constant: NMI is small (sampling noise only).
        let labels: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        let sizes: Vec<usize> = (0..2000).map(|i| 100 + (i / 2) % 2).collect();
        assert!(nmi(&labels, &sizes) < 0.01);
    }

    #[test]
    fn nmi_partial_dependence_is_intermediate() {
        // Half the mass is informative, half is noise.
        let labels: Vec<usize> = (0..400).map(|i| i % 2).collect();
        let sizes: Vec<usize> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if (i / 2) % 2 == 0 { 100 + l } else { 300 })
            .collect();
        let v = nmi(&labels, &sizes);
        assert!(v > 0.1 && v < 0.9, "v={v}");
    }

    #[test]
    fn permutation_test_detects_real_leakage() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let sizes: Vec<usize> = labels.iter().map(|&l| 100 + l * 80).collect();
        let p = permutation_test(&labels, &sizes, 200, 42);
        assert!(p < 0.01, "p={p}");
    }

    #[test]
    fn permutation_test_accepts_null_for_constant_sizes() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let sizes = vec![128usize; 200];
        let p = permutation_test(&labels, &sizes, 100, 42);
        assert!(p > 0.9, "p={p}");
    }

    #[test]
    fn permutation_test_degenerate_inputs_return_one() {
        assert_eq!(permutation_test(&[], &[], 100, 42), 1.0);
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let sizes: Vec<usize> = labels.iter().map(|&l| 100 + l).collect();
        assert_eq!(permutation_test(&labels, &sizes, 0, 42), 1.0);
    }

    #[test]
    fn nmi_is_symmetric_under_relabeling() {
        let labels = [0usize, 1, 2, 0, 1, 2];
        let sizes = [9usize, 8, 7, 9, 8, 7];
        let relabeled: Vec<usize> = labels.iter().map(|&l| 2 - l).collect();
        assert!((nmi(&labels, &sizes) - nmi(&relabeled, &sizes)).abs() < 1e-12);
    }

    #[test]
    fn nmi_matches_streaming_audit_exactly() {
        // The offline attack and the online audit must agree bit-for-bit:
        // same counts, same BTreeMap summation order, same float result.
        let labels: Vec<usize> = (0..300).map(|i| i % 3).collect();
        let sizes: Vec<usize> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if i % 5 == 0 { 200 } else { 80 + l * 12 })
            .collect();
        let mut stream = age_telemetry::LeakageStream::new();
        for (&l, &m) in labels.iter().zip(&sizes) {
            stream.observe(l, m);
        }
        assert_eq!(nmi(&labels, &sizes).to_bits(), stream.nmi().to_bits());
    }
}
