//! Empirical mutual information between labels and message sizes (§5.3).

use std::collections::HashMap;

use age_telemetry::rng::{DetRng, SliceShuffle};

/// Shannon entropy (bits) of a discrete empirical distribution given by
/// occurrence counts.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Empirical normalized mutual information between event labels and message
/// sizes (paper Eq. 3): `2·I(L, M) / (H(L) + H(M))`, using maximum
/// likelihood estimators of the entropies. Zero means sizes carry no
/// information about the label; returns 0 when either marginal is constant.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn nmi(labels: &[usize], sizes: &[usize]) -> f64 {
    assert_eq!(labels.len(), sizes.len(), "labels/sizes length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut label_counts: HashMap<usize, usize> = HashMap::new();
    let mut size_counts: HashMap<usize, usize> = HashMap::new();
    let mut joint_counts: HashMap<(usize, usize), usize> = HashMap::new();
    for (&l, &m) in labels.iter().zip(sizes) {
        *label_counts.entry(l).or_default() += 1;
        *size_counts.entry(m).or_default() += 1;
        *joint_counts.entry((l, m)).or_default() += 1;
    }
    let h_l = entropy(&label_counts.values().copied().collect::<Vec<_>>());
    let h_m = entropy(&size_counts.values().copied().collect::<Vec<_>>());
    if h_l + h_m == 0.0 {
        return 0.0;
    }
    let n = labels.len() as f64;
    let mut mi = 0.0;
    for (&(l, m), &c) in &joint_counts {
        let p_joint = c as f64 / n;
        let p_l = label_counts[&l] as f64 / n;
        let p_m = size_counts[&m] as f64 / n;
        mi += p_joint * (p_joint / (p_l * p_m)).log2();
    }
    (2.0 * mi / (h_l + h_m)).max(0.0)
}

/// Approximate permutation test for the significance of an observed NMI
/// (paper §5.3, following Ojala & Garriga): shuffles the sizes
/// `permutations` times and returns the estimated p-value — the fraction of
/// shuffles whose NMI is at least the observed value (with the +1
/// correction for an unbiased estimator).
///
/// The null hypothesis is that sizes and labels are independent; a small
/// p-value means the observed NMI reflects real leakage.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn permutation_test(labels: &[usize], sizes: &[usize], permutations: usize, seed: u64) -> f64 {
    assert_eq!(labels.len(), sizes.len(), "labels/sizes length mismatch");
    let observed = nmi(labels, sizes);
    let mut shuffled = sizes.to_vec();
    let mut rng = DetRng::seed_from_u64(seed);
    let mut at_least = 0usize;
    for _ in 0..permutations {
        shuffled.shuffle(&mut rng);
        if nmi(labels, &shuffled) >= observed - 1e-12 {
            at_least += 1;
        }
    }
    (at_least + 1) as f64 / (permutations + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[10]), 0.0);
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Zero counts are ignored.
        assert!((entropy(&[5, 0, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_perfect_dependence_is_one() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let sizes: Vec<usize> = labels.iter().map(|&l| 100 + l * 50).collect();
        assert!((nmi(&labels, &sizes) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmi_constant_sizes_is_zero() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let sizes = vec![220usize; 100];
        assert_eq!(nmi(&labels, &sizes), 0.0);
    }

    #[test]
    fn nmi_independent_variables_is_near_zero() {
        // Independent but not constant: NMI is small (sampling noise only).
        let labels: Vec<usize> = (0..2000).map(|i| i % 2).collect();
        let sizes: Vec<usize> = (0..2000).map(|i| 100 + (i / 2) % 2).collect();
        assert!(nmi(&labels, &sizes) < 0.01);
    }

    #[test]
    fn nmi_partial_dependence_is_intermediate() {
        // Half the mass is informative, half is noise.
        let labels: Vec<usize> = (0..400).map(|i| i % 2).collect();
        let sizes: Vec<usize> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| if (i / 2) % 2 == 0 { 100 + l } else { 300 })
            .collect();
        let v = nmi(&labels, &sizes);
        assert!(v > 0.1 && v < 0.9, "v={v}");
    }

    #[test]
    fn permutation_test_detects_real_leakage() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let sizes: Vec<usize> = labels.iter().map(|&l| 100 + l * 80).collect();
        let p = permutation_test(&labels, &sizes, 200, 42);
        assert!(p < 0.01, "p={p}");
    }

    #[test]
    fn permutation_test_accepts_null_for_constant_sizes() {
        let labels: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let sizes = vec![128usize; 200];
        let p = permutation_test(&labels, &sizes, 100, 42);
        assert!(p > 0.9, "p={p}");
    }

    #[test]
    fn nmi_is_symmetric_under_relabeling() {
        let labels = [0usize, 1, 2, 0, 1, 2];
        let sizes = [9usize, 8, 7, 9, 8, 7];
        let relabeled: Vec<usize> = labels.iter().map(|&l| 2 - l).collect();
        assert!((nmi(&labels, &sizes) - nmi(&relabeled, &sizes)).abs() < 1e-12);
    }
}
