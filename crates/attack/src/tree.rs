//! Weighted CART decision trees — the weak learner for AdaBoost (§5.4).

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (1 = a decision stump).
    pub max_depth: usize,
    /// Minimum weighted fraction of samples needed to split a node.
    pub min_split_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 3,
            min_split_weight: 1e-6,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Child index when `x[feature] <= threshold`.
        left: usize,
        /// Child index otherwise.
        right: usize,
    },
}

/// A CART classification tree trained with per-sample weights and Gini
/// impurity — the paper's attack uses an ensemble of 50 of these fit with
/// AdaBoost.
///
/// # Examples
///
/// ```
/// use age_attack::{DecisionTree, TreeParams};
///
/// let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let y = vec![0, 0, 1, 1];
/// let w = vec![1.0; 4];
/// let tree = DecisionTree::fit(&x, &y, &w, 2, TreeParams::default());
/// assert_eq!(tree.predict(&[0.5]), 0);
/// assert_eq!(tree.predict(&[12.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on feature rows `x`, labels `y` (in `0..n_classes`), and
    /// non-negative sample weights `w`.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, have mismatched lengths, or contain
    /// labels at or above `n_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        n_classes: usize,
        params: TreeParams,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on no samples");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert_eq!(x.len(), w.len(), "feature/weight length mismatch");
        assert!(y.iter().all(|&l| l < n_classes), "label out of range");
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
        };
        let all: Vec<usize> = (0..x.len()).collect();
        tree.build(x, y, w, &all, params.max_depth, params);
        tree
    }

    /// Builds a subtree over `rows` and returns its node index.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        rows: &[usize],
        depth_left: usize,
        params: TreeParams,
    ) -> usize {
        let class_weights = self.class_weights(y, w, rows);
        let majority = argmax(&class_weights);
        let total: f64 = class_weights.iter().sum();
        let pure = class_weights.iter().filter(|&&cw| cw > 0.0).count() <= 1;

        if depth_left == 0 || pure || total < params.min_split_weight {
            self.nodes.push(Node::Leaf { class: majority });
            return self.nodes.len() - 1;
        }

        match self.best_split(x, y, w, rows) {
            None => {
                self.nodes.push(Node::Leaf { class: majority });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (lhs, rhs): (Vec<usize>, Vec<usize>) =
                    rows.iter().partition(|&&r| x[r][feature] <= threshold);
                if lhs.is_empty() || rhs.is_empty() {
                    self.nodes.push(Node::Leaf { class: majority });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot, then build children.
                let slot = self.nodes.len();
                self.nodes.push(Node::Leaf { class: majority });
                let left = self.build(x, y, w, &lhs, depth_left - 1, params);
                let right = self.build(x, y, w, &rhs, depth_left - 1, params);
                self.nodes[slot] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                slot
            }
        }
    }

    fn class_weights(&self, y: &[usize], w: &[f64], rows: &[usize]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes];
        for &r in rows {
            out[y[r]] += w[r];
        }
        out
    }

    /// Finds the (feature, threshold) pair minimizing weighted Gini impurity,
    /// scanning midpoints of consecutive distinct sorted values.
    #[allow(clippy::needless_range_loop)] // `feature` indexes every row of `x`
    fn best_split(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        w: &[f64],
        rows: &[usize],
    ) -> Option<(usize, f64)> {
        let n_features = x[rows[0]].len();
        let total_weights = self.class_weights(y, w, rows);
        let total: f64 = total_weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let parent_gini = gini(&total_weights, total);
        let mut best: Option<(f64, usize, f64)> = None;

        for feature in 0..n_features {
            let mut sorted: Vec<usize> = rows.to_vec();
            sorted.sort_by(|&a, &b| {
                x[a][feature]
                    .partial_cmp(&x[b][feature])
                    .expect("features are never NaN")
            });
            let mut left = vec![0.0; self.n_classes];
            let mut left_total = 0.0;
            for i in 0..sorted.len() - 1 {
                let r = sorted[i];
                left[y[r]] += w[r];
                left_total += w[r];
                let (a, b) = (x[sorted[i]][feature], x[sorted[i + 1]][feature]);
                if a == b {
                    continue;
                }
                let right_total = total - left_total;
                if left_total <= 0.0 || right_total <= 0.0 {
                    continue;
                }
                let right: Vec<f64> = total_weights
                    .iter()
                    .zip(&left)
                    .map(|(t, l)| t - l)
                    .collect();
                let score = (left_total / total) * gini(&left, left_total)
                    + (right_total / total) * gini(&right, right_total);
                if score < parent_gini - 1e-12 && best.is_none_or(|(s, _, _)| score < s) {
                    best = Some((score, feature, 0.5 * (a + b)));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    /// Predicted class for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is shorter than the features the tree was fit on.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

fn gini(class_weights: &[f64], total: f64) -> f64 {
    1.0 - class_weights
        .iter()
        .map(|&cw| (cw / total).powi(2))
        .sum::<f64>()
}

fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are never NaN"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_data_is_classified_perfectly() {
        let x: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![if i < 20 { i as f64 } else { 100.0 + i as f64 }, 0.0])
            .collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let w = vec![1.0; 40];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeParams::default());
        for (row, &label) in x.iter().zip(&y) {
            assert_eq!(tree.predict(row), label);
        }
    }

    #[test]
    fn depth_one_is_a_stump() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![0, 0, 0, 1, 1, 1, 0, 0, 1, 1];
        let w = vec![1.0; 10];
        let tree = DecisionTree::fit(
            &x,
            &y,
            &w,
            2,
            TreeParams {
                max_depth: 1,
                ..Default::default()
            },
        );
        // A stump has at most 3 nodes (root + two leaves).
        assert!(tree.node_count() <= 3);
    }

    #[test]
    fn weights_steer_the_split() {
        // Same features, conflicting labels; weight decides the leaf class.
        let x = vec![vec![1.0], vec![1.0]];
        let y = vec![0, 1];
        let heavy_one = DecisionTree::fit(&x, &y, &[0.1, 5.0], 2, TreeParams::default());
        assert_eq!(heavy_one.predict(&[1.0]), 1);
        let heavy_zero = DecisionTree::fit(&x, &y, &[5.0, 0.1], 2, TreeParams::default());
        assert_eq!(heavy_zero.predict(&[1.0]), 0);
    }

    #[test]
    fn multiclass_splits_on_multiple_features() {
        // Class determined by quadrant of (f0, f1).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let a = (i % 10) as f64;
            let b = (i / 10) as f64;
            x.push(vec![a, b]);
            y.push(usize::from(a >= 5.0) * 2 + usize::from(b >= 5.0));
        }
        let w = vec![1.0; x.len()];
        let tree = DecisionTree::fit(
            &x,
            &y,
            &w,
            4,
            TreeParams {
                max_depth: 3,
                ..Default::default()
            },
        );
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &l)| tree.predict(row) == l)
            .count();
        assert!(correct >= 95, "correct={correct}");
    }

    #[test]
    fn constant_features_yield_a_leaf() {
        let x = vec![vec![2.0]; 6];
        let y = vec![0, 1, 0, 1, 1, 1];
        let w = vec![1.0; 6];
        let tree = DecisionTree::fit(&x, &y, &w, 2, TreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[2.0]), 1); // majority
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = DecisionTree::fit(&[vec![0.0]], &[5], &[1.0], 2, TreeParams::default());
    }
}
