//! The attacker's toolkit: information-theoretic leakage estimation and a
//! practical message-size classifier (paper §5.3–§5.4).
//!
//! The threat model (§3.1): a passive adversary sniffs the encrypted link,
//! observes only message *lengths*, can group messages by (unknown) event,
//! and fits a model offline. This crate implements both of the paper's
//! leakage analyses:
//!
//! - **Theoretical** ([`nmi`]): empirical normalized mutual information
//!   between event labels and message sizes, with an approximate
//!   [`permutation_test`] for significance (15,000 permutations in the
//!   paper).
//! - **Practical** ([`ClassifierAttack`]): an AdaBoost ensemble of 50
//!   decision trees over summary features (average, median, standard
//!   deviation, IQR) of ten same-event message sizes, scored with
//!   stratified five-fold cross-validation.
//!
//! Beyond the paper's size channel, [`TimingAttack`] points the same
//! classifier machinery at inter-transmission *gaps* — the baseline for
//! the repo's timing-side-channel audit.
//!
//! # Examples
//!
//! ```
//! use age_attack::nmi;
//!
//! // Sizes that perfectly identify labels: maximal NMI.
//! let labels = [0, 0, 1, 1];
//! let sizes = [100, 100, 200, 200];
//! assert!((nmi(&labels, &sizes) - 1.0).abs() < 1e-12);
//!
//! // Constant sizes leak nothing.
//! assert_eq!(nmi(&labels, &[64, 64, 64, 64]), 0.0);
//! ```

mod adaboost;
mod attack;
mod knn;
mod logistic;
mod nmi;
mod timing;
mod tree;
mod welch;

pub use adaboost::AdaBoost;
pub use attack::{
    most_frequent_rate, permutation_importance, AttackModel, AttackOutcome, AttackSample,
    ClassifierAttack, ConfusionMatrix,
};
pub use knn::Knn;
pub use logistic::Logistic;
pub use nmi::{entropy, nmi, permutation_test};
pub use timing::{gap_observations, TimingAttack};
pub use tree::{DecisionTree, TreeParams};
pub use welch::{welch_t_test, WelchTest};
