//! k-nearest-neighbours classifier — an alternative attack model.
//!
//! The paper's AdaBoost attack is "a lower bound for what an adversary may
//! uncover" (§5.4). This model probes the same observations from a
//! different inductive bias: distance in the (standardized) feature space
//! of message-size statistics.

/// A k-NN classifier over dense feature rows with z-score standardization.
///
/// # Examples
///
/// ```
/// use age_attack::Knn;
///
/// let x = vec![vec![0.0], vec![1.0], vec![10.0], vec![11.0]];
/// let y = vec![0, 0, 1, 1];
/// let model = Knn::fit(&x, &y, 3);
/// assert_eq!(model.predict(&[0.5]), 0);
/// assert_eq!(model.predict(&[10.5]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    mean: Vec<f64>,
    scale: Vec<f64>,
}

impl Knn {
    /// Stores the training set with per-feature standardization parameters.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched, or `k` is zero.
    pub fn fit(x: &[Vec<f64>], y: &[usize], k: usize) -> Self {
        assert!(!x.is_empty(), "cannot fit on no samples");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(k > 0, "k must be positive");
        let dim = x[0].len();
        let n = x.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in x {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut scale = vec![0.0; dim];
        for row in x {
            for ((s, &v), &m) in scale.iter_mut().zip(row).zip(&mean) {
                *s += (v - m).powi(2) / n;
            }
        }
        for s in &mut scale {
            *s = s.sqrt().max(1e-12);
        }
        let features = x
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&mean)
                    .zip(&scale)
                    .map(|((&v, &m), &s)| (v - m) / s)
                    .collect()
            })
            .collect();
        Knn {
            k: k.min(x.len()),
            features,
            labels: y.to_vec(),
            mean,
            scale,
        }
    }

    /// Majority vote among the `k` nearest standardized neighbours.
    pub fn predict(&self, row: &[f64]) -> usize {
        let std_row: Vec<f64> = row
            .iter()
            .zip(&self.mean)
            .zip(&self.scale)
            .map(|((&v, &m), &s)| (v - m) / s)
            .collect();
        let mut dists: Vec<(f64, usize)> = self
            .features
            .iter()
            .zip(&self.labels)
            .map(|(f, &l)| {
                let d: f64 = f.iter().zip(&std_row).map(|(a, b)| (a - b).powi(2)).sum();
                (d, l)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are never NaN"));
        let max_label = self.labels.iter().max().copied().unwrap_or(0);
        let mut votes = vec![0usize; max_label + 1];
        for &(_, l) in dists.iter().take(self.k) {
            votes[l] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(i, _)| i)
            .expect("votes vector is non-empty")
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = x
            .iter()
            .zip(y)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separable_clusters_classified() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 5.0 + (i % 5) as f64 * 0.1,
                (i % 7) as f64 * 0.05,
            ]);
            y.push(c);
        }
        let model = Knn::fit(&x, &y, 5);
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Feature 1 is 1000x larger but uninformative; without
        // standardization it would dominate the distance.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            x.push(vec![
                c as f64 + (i % 3) as f64 * 0.01,
                ((i * 37) % 100) as f64 * 100.0,
            ]);
            y.push(c);
        }
        let model = Knn::fit(&x, &y, 3);
        assert!(model.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn k_is_clamped_to_training_size() {
        let model = Knn::fit(&[vec![0.0], vec![1.0]], &[0, 1], 50);
        // Ties fall to the lowest label; no panic.
        let _ = model.predict(&[0.5]);
    }

    #[test]
    fn constant_features_fall_back_to_majority_vote() {
        let x = vec![vec![2.0]; 9];
        let y = vec![0, 1, 1, 1, 0, 1, 1, 0, 1];
        let model = Knn::fit(&x, &y, 9);
        assert_eq!(model.predict(&[2.0]), 1);
    }
}
