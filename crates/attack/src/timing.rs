//! The timing-only attacker: a passive adversary who cannot measure
//! message *sizes* — imagine spread-spectrum framing or a sniffer too far
//! away to demodulate — but still sees *when* energy appears on the air.
//!
//! The observable is the inter-transmission gap. Under the simulator's
//! virtual clock a gap is (sensing window) + (CPU stages) + (radio
//! serialization of the arriving frame) + (any retry backoff), so a
//! variable-length encoder maps its size leak linearly into the timing
//! channel, while constant-size defenses with event-independent schedules
//! produce constant gaps. [`TimingAttack`] reuses the §5.4 classifier
//! machinery verbatim — same windows, features, boosting, and
//! cross-validation — fed gaps instead of sizes, giving the timing channel
//! a *practical* accuracy number to sit beside its NMI score.

use crate::attack::{AttackOutcome, ClassifierAttack};

/// Extracts `(label, gap µs)` observations from `(label, send time µs)`
/// stamps in arrival order.
///
/// Each gap is attributed to the **arriving** frame's label — the frame
/// whose serialization and backoff shaped it. A non-increasing timestamp
/// marks a stream restart (device reset, a new experiment cell) and yields
/// no observation, matching the gap semantics of the telemetry audit.
pub fn gap_observations(sends: &[(usize, u64)]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut last: Option<u64> = None;
    for &(label, at) in sends {
        if let Some(prev) = last {
            if at > prev {
                out.push((label, (at - prev) as usize));
            }
        }
        last = Some(at);
    }
    out
}

/// The classifier attack of §5.4 pointed at the timing channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimingAttack {
    /// The underlying classifier configuration (windows, ensemble, folds).
    pub classifier: ClassifierAttack,
}

impl TimingAttack {
    /// Runs the full attack on `(label, send time µs)` stamps: extract
    /// gaps, build windowed samples, cross-validate the classifier.
    pub fn run(&self, sends: &[(usize, u64)]) -> AttackOutcome {
        self.classifier.run(&gap_observations(sends))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_attributed_to_the_arriving_frame() {
        let sends = [(0, 100), (1, 250), (0, 400)];
        assert_eq!(gap_observations(&sends), vec![(1, 150), (0, 150)]);
    }

    #[test]
    fn restarts_and_duplicates_yield_no_gap() {
        // The clock jumping backwards (reset) or standing still produces
        // no observation, and the stream resumes cleanly afterwards.
        let sends = [(0, 500), (1, 700), (2, 50), (0, 80), (1, 80)];
        assert_eq!(gap_observations(&sends), vec![(1, 200), (0, 30)]);
        assert!(gap_observations(&[]).is_empty());
        assert!(gap_observations(&[(3, 900)]).is_empty());
    }

    #[test]
    fn timing_attack_reads_events_from_an_unprotected_schedule() {
        // A variable-length encoder: label k's frame is 60·k bytes longer,
        // so at 32 µs/byte its gap is ~1920·k µs longer. Deterministic
        // per-sequence jitter stands in for policy-driven size variation.
        let sends: Vec<(usize, u64)> = (0..600u64)
            .scan(0u64, |t, i| {
                let label = (i % 3) as usize;
                *t += 500_000 + 1_920 * label as u64 + (i * 37) % 640;
                Some((label, *t))
            })
            .collect();
        let attack = TimingAttack {
            classifier: ClassifierAttack {
                total_samples: 600,
                n_estimators: 15,
                ..Default::default()
            },
        };
        let outcome = attack.run(&sends);
        assert!(
            outcome.mean_accuracy() > 0.95,
            "accuracy {}",
            outcome.mean_accuracy()
        );
        assert!(outcome.mean_accuracy() > outcome.baseline + 0.2);
    }

    #[test]
    fn timing_attack_fails_on_an_event_independent_schedule() {
        // Constant-size frames on a fixed cadence: every gap is identical,
        // and the attacker collapses to majority-class guessing.
        let sends: Vec<(usize, u64)> = (0..600u64)
            .map(|i| ((i % 3) as usize, (i + 1) * 502_500))
            .collect();
        let attack = TimingAttack {
            classifier: ClassifierAttack {
                total_samples: 600,
                n_estimators: 15,
                ..Default::default()
            },
        };
        let outcome = attack.run(&sends);
        assert!(
            (outcome.mean_accuracy() - outcome.baseline).abs() < 0.05,
            "accuracy {} vs baseline {}",
            outcome.mean_accuracy(),
            outcome.baseline
        );
    }
}
