//! AdaBoost (SAMME) over decision trees — the paper's attack model (§5.4).

use crate::tree::{DecisionTree, TreeParams};

/// A multiclass AdaBoost ensemble (the SAMME algorithm of Zhu et al.,
/// matching scikit-learn's `AdaBoostClassifier` that the paper uses with 50
/// estimators).
///
/// # Examples
///
/// ```
/// use age_attack::AdaBoost;
///
/// let x: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 3) as f64 * 10.0]).collect();
/// let y: Vec<usize> = (0..60).map(|i| i % 3).collect();
/// let model = AdaBoost::fit(&x, &y, 3, 10);
/// assert_eq!(model.predict(&[20.0]), 2);
/// ```
#[derive(Debug, Clone)]
pub struct AdaBoost {
    estimators: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Default weak-learner depth (scikit-learn uses stumps; a small depth
    /// works better for the four summary features).
    const WEAK_DEPTH: usize = 3;

    /// Fits `n_estimators` boosted trees on rows `x` with labels `y`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched, or labels exceed
    /// `n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[usize], n_classes: usize, n_estimators: usize) -> Self {
        assert!(!x.is_empty(), "cannot fit on no samples");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n = x.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut estimators = Vec::with_capacity(n_estimators);
        let params = TreeParams {
            max_depth: Self::WEAK_DEPTH,
            ..Default::default()
        };
        let k = n_classes.max(2) as f64;

        for _ in 0..n_estimators {
            let tree = DecisionTree::fit(x, y, &weights, n_classes, params);
            let mut err = 0.0;
            let misses: Vec<bool> = x
                .iter()
                .zip(y)
                .map(|(row, &label)| tree.predict(row) != label)
                .collect();
            for (w, &miss) in weights.iter().zip(&misses) {
                if miss {
                    err += w;
                }
            }
            if err <= 1e-12 {
                // Perfect learner: give it a large, finite say and stop.
                estimators.push((tree, 10.0 + (k - 1.0).ln()));
                break;
            }
            // SAMME requires better-than-random: err < 1 - 1/K.
            if err >= 1.0 - 1.0 / k {
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            for (w, &miss) in weights.iter_mut().zip(&misses) {
                if miss {
                    *w *= alpha.exp();
                }
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            estimators.push((tree, alpha));
        }
        if estimators.is_empty() {
            // Fall back to a single unweighted tree so predict() works.
            let tree = DecisionTree::fit(x, y, &vec![1.0 / n as f64; n], n_classes, params);
            estimators.push((tree, 1.0));
        }
        AdaBoost {
            estimators,
            n_classes,
        }
    }

    /// Weighted-vote prediction for one feature row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut votes = vec![0.0f64; self.n_classes];
        for (tree, alpha) in &self.estimators {
            votes[tree.predict(row)] += alpha;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("votes are never NaN"))
            .map(|(i, _)| i)
            .expect("n_classes > 0")
    }

    /// Accuracy over a labelled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[usize]) -> f64 {
        if x.is_empty() {
            return 0.0;
        }
        let correct = x
            .iter()
            .zip(y)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        correct as f64 / x.len() as f64
    }

    /// Number of fitted weak learners.
    pub fn len(&self) -> usize {
        self.estimators.len()
    }

    /// `true` if no estimators were fitted (never the case after `fit`).
    pub fn is_empty(&self) -> bool {
        self.estimators.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_three_class(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            let jitter = ((i * 7919) % 100) as f64 / 100.0 - 0.5;
            // Overlapping clusters at 0, 2, 4.
            x.push(vec![class as f64 * 2.0 + jitter, jitter * 0.3]);
            y.push(class);
        }
        (x, y)
    }

    #[test]
    fn boosting_learns_noisy_clusters() {
        let (x, y) = noisy_three_class(300);
        let model = AdaBoost::fit(&x, &y, 3, 25);
        assert!(model.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn boosting_beats_a_single_stump_on_xor() {
        // XOR needs an ensemble (or depth); boost stumps of depth 1.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            let jit = ((i * 31) % 17) as f64 * 0.001;
            x.push(vec![a + jit, b - jit]);
            y.push(usize::from((a > 0.5) != (b > 0.5)));
        }
        let model = AdaBoost::fit(&x, &y, 2, 30);
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn perfect_data_terminates_early() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i < 25)]).collect();
        let y: Vec<usize> = (0..50).map(|i| usize::from(i < 25)).collect();
        let model = AdaBoost::fit(&x, &y, 2, 50);
        assert!(model.len() < 50, "stopped after {} learners", model.len());
        assert_eq!(model.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn uninformative_features_degrade_to_majority() {
        // Constant features: the model can only predict one class.
        let x = vec![vec![1.0]; 90];
        let y: Vec<usize> = (0..90).map(|i| usize::from(i % 3 == 0)).collect();
        let model = AdaBoost::fit(&x, &y, 2, 10);
        // Majority class is 0 (60 of 90).
        assert_eq!(model.predict(&[1.0]), 0);
        assert!((model.accuracy(&x, &y) - 60.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn ensemble_never_empty() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let model = AdaBoost::fit(&x, &y, 2, 1);
        assert!(!model.is_empty());
    }
}
