//! The end-to-end classifier attack (§5.4): feature extraction from message
//! sizes, stratified cross-validation, and confusion matrices.

use age_telemetry::rng::{DetRng, SliceShuffle};

use crate::adaboost::AdaBoost;
use crate::knn::Knn;
use crate::logistic::Logistic;

/// One attack sample: summary statistics of the sizes of ten same-event
/// messages, plus the (ground-truth) event label.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSample {
    /// `[average, median, standard deviation, IQR]` of the message sizes.
    pub features: [f64; 4],
    /// The event all ten messages belong to.
    pub label: usize,
}

impl AttackSample {
    /// Builds a sample from a window of same-event message sizes.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty.
    pub fn from_sizes(sizes: &[usize], label: usize) -> Self {
        assert!(!sizes.is_empty(), "need at least one message size");
        let mut sorted: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sizes are finite"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let quantile = |p: f64| -> f64 {
            let pos = p * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        let iqr = quantile(0.75) - quantile(0.25);
        AttackSample {
            features: [mean, median, var.sqrt(), iqr],
            label,
        }
    }
}

/// Accuracy of always predicting the most frequent label — the best an
/// attacker can do against a leak-free channel.
pub fn most_frequent_rate(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let max_label = labels.iter().max().expect("non-empty");
    let mut counts = vec![0usize; max_label + 1];
    for &l in labels {
        counts[l] += 1;
    }
    *counts.iter().max().expect("non-empty") as f64 / labels.len() as f64
}

/// A confusion matrix: `matrix[truth][predicted]` counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty `n_classes × n_classes` matrix.
    pub fn new(n_classes: usize) -> Self {
        ConfusionMatrix {
            counts: vec![vec![0; n_classes]; n_classes],
        }
    }

    /// Records one (truth, prediction) pair.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Count at `(truth, predicted)`.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Precision for one class (1.0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let predicted: usize = self.counts.iter().map(|row| row[class]).sum();
        if predicted == 0 {
            1.0
        } else {
            self.counts[class][class] as f64 / predicted as f64
        }
    }

    /// Recall for one class (1.0 when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let actual: usize = self.counts[class].iter().sum();
        if actual == 0 {
            1.0
        } else {
            self.counts[class][class] as f64 / actual as f64
        }
    }

    /// Merges another matrix into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes(), other.n_classes(), "class count mismatch");
        for (row, other_row) in self.counts.iter_mut().zip(&other.counts) {
            for (c, &o) in row.iter_mut().zip(other_row) {
                *c += o;
            }
        }
    }
}

/// Result of running the classifier attack.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Per-fold test accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Confusion matrix pooled over all folds' test predictions.
    pub confusion: ConfusionMatrix,
    /// The most-frequent-label baseline on the same samples.
    pub baseline: f64,
}

impl AttackOutcome {
    /// Mean test accuracy across folds.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            0.0
        } else {
            self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
        }
    }

    /// How much better than blind guessing the attack is (1.0 = no better).
    pub fn advantage(&self) -> f64 {
        if self.baseline <= 0.0 {
            0.0
        } else {
            self.mean_accuracy() / self.baseline
        }
    }
}

/// Which classifier the attacker fits on the message-size features.
///
/// The paper uses AdaBoost and calls its result "a lower bound for what an
/// adversary may uncover"; the extra models probe different inductive
/// biases on the same observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttackModel {
    /// AdaBoost (SAMME) over decision trees — the paper's model.
    #[default]
    AdaBoost,
    /// k-nearest neighbours (k = 7) over standardized features.
    Knn,
    /// Multinomial logistic regression.
    Logistic,
}

impl AttackModel {
    /// Display name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            AttackModel::AdaBoost => "AdaBoost",
            AttackModel::Knn => "kNN",
            AttackModel::Logistic => "Logistic",
        }
    }
}

/// Configuration and runner for the paper's §5.4 attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifierAttack {
    /// Messages aggregated per sample (paper: 10).
    pub window: usize,
    /// Total samples to draw (paper: 10,000 → 8,000 train / 2,000 test).
    pub total_samples: usize,
    /// Boosted trees in the ensemble (paper: 50).
    pub n_estimators: usize,
    /// Cross-validation folds (paper: 5, stratified).
    pub folds: usize,
    /// RNG seed for sample windows and fold assignment.
    pub seed: u64,
    /// Classifier family to fit.
    pub model: AttackModel,
}

impl Default for ClassifierAttack {
    fn default() -> Self {
        ClassifierAttack {
            window: 10,
            total_samples: 10_000,
            n_estimators: 50,
            folds: 5,
            seed: 0xA6E,
            model: AttackModel::AdaBoost,
        }
    }
}

impl ClassifierAttack {
    /// Draws attack samples from observed `(label, message size)` pairs:
    /// each sample summarizes `window` sizes drawn (with replacement) from
    /// one event's messages. Labels are sampled proportionally to their
    /// frequency, mirroring an attacker sniffing the deployed system.
    ///
    /// Returns an empty vector if `observations` is empty.
    pub fn build_samples(&self, observations: &[(usize, usize)]) -> Vec<AttackSample> {
        if observations.is_empty() {
            return Vec::new();
        }
        let n_labels = observations
            .iter()
            .map(|&(l, _)| l)
            .max()
            .expect("non-empty")
            + 1;
        let mut by_label: Vec<Vec<usize>> = vec![Vec::new(); n_labels];
        for &(l, s) in observations {
            by_label[l].push(s);
        }
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(self.total_samples);
        for _ in 0..self.total_samples {
            // Pick a random observation; its label sets the event.
            let (label, _) = observations[rng.gen_range(0..observations.len())];
            let pool = &by_label[label];
            let sizes: Vec<usize> = (0..self.window)
                .map(|_| pool[rng.gen_range(0..pool.len())])
                .collect();
            samples.push(AttackSample::from_sizes(&sizes, label));
        }
        samples
    }

    /// Runs stratified k-fold cross-validation of the AdaBoost attack on
    /// pre-built samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `folds < 2`.
    pub fn evaluate(&self, samples: &[AttackSample]) -> AttackOutcome {
        assert!(!samples.is_empty(), "no attack samples");
        assert!(self.folds >= 2, "need at least two folds");
        let n_classes = samples.iter().map(|s| s.label).max().expect("non-empty") + 1;
        let assignment = stratified_fold_assignment(samples, self.folds, self.seed ^ 0x5EED);

        let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
        let baseline = most_frequent_rate(&labels);

        let mut fold_accuracies = Vec::with_capacity(self.folds);
        let mut confusion = ConfusionMatrix::new(n_classes);
        for fold in 0..self.folds {
            let mut train_x = Vec::new();
            let mut train_y = Vec::new();
            let mut test = Vec::new();
            for (s, &f) in samples.iter().zip(&assignment) {
                if f == fold {
                    test.push(s);
                } else {
                    train_x.push(s.features.to_vec());
                    train_y.push(s.label);
                }
            }
            if train_x.is_empty() || test.is_empty() {
                continue;
            }
            type Predictor = Box<dyn Fn(&[f64]) -> usize>;
            let predict: Predictor = match self.model {
                AttackModel::AdaBoost => {
                    let m = AdaBoost::fit(&train_x, &train_y, n_classes, self.n_estimators);
                    Box::new(move |row| m.predict(row))
                }
                AttackModel::Knn => {
                    let m = Knn::fit(&train_x, &train_y, 7);
                    Box::new(move |row| m.predict(row))
                }
                AttackModel::Logistic => {
                    let m = Logistic::fit(&train_x, &train_y, n_classes, 150);
                    Box::new(move |row| m.predict(row))
                }
            };
            let mut correct = 0usize;
            for s in &test {
                let pred = predict(&s.features);
                confusion.record(s.label, pred);
                if pred == s.label {
                    correct += 1;
                }
            }
            fold_accuracies.push(correct as f64 / test.len() as f64);
        }
        AttackOutcome {
            fold_accuracies,
            confusion,
            baseline,
        }
    }

    /// Convenience: build samples from observations, then evaluate.
    pub fn run(&self, observations: &[(usize, usize)]) -> AttackOutcome {
        let samples = self.build_samples(observations);
        self.evaluate(&samples)
    }
}

/// Permutation feature importance of the attack features: how much test
/// accuracy drops when one feature column is shuffled, averaged over
/// `rounds` shuffles. Large drops mean the attacker leans on that feature —
/// interpretability for the §5.4 attack (average, median, std, IQR of
/// message sizes).
///
/// Returns one importance per feature, in feature order.
pub fn permutation_importance(
    samples: &[AttackSample],
    attack: &ClassifierAttack,
    rounds: usize,
) -> Vec<f64> {
    if samples.len() < 4 {
        return vec![0.0; 4];
    }
    let n_classes = samples.iter().map(|s| s.label).max().expect("non-empty") + 1;
    // Simple holdout: first 3/4 train, last 1/4 test.
    let cut = samples.len() * 3 / 4;
    let train_x: Vec<Vec<f64>> = samples[..cut].iter().map(|s| s.features.to_vec()).collect();
    let train_y: Vec<usize> = samples[..cut].iter().map(|s| s.label).collect();
    let model = AdaBoost::fit(&train_x, &train_y, n_classes, attack.n_estimators);
    let test = &samples[cut..];
    let accuracy = |rows: &[Vec<f64>]| -> f64 {
        rows.iter()
            .zip(test)
            .filter(|(row, s)| model.predict(row) == s.label)
            .count() as f64
            / test.len() as f64
    };
    let baseline_rows: Vec<Vec<f64>> = test.iter().map(|s| s.features.to_vec()).collect();
    let baseline = accuracy(&baseline_rows);

    let mut rng = DetRng::seed_from_u64(attack.seed ^ 0x1397);
    (0..4)
        .map(|feature| {
            let mut drop_total = 0.0;
            for _ in 0..rounds.max(1) {
                let mut column: Vec<f64> = test.iter().map(|s| s.features[feature]).collect();
                column.shuffle(&mut rng);
                let mut rows = baseline_rows.clone();
                for (row, v) in rows.iter_mut().zip(&column) {
                    row[feature] = *v;
                }
                drop_total += baseline - accuracy(&rows);
            }
            drop_total / rounds.max(1) as f64
        })
        .collect()
}

/// Assigns each sample a fold in `0..folds`, stratified by label: within
/// each label the (shuffled) samples are dealt round-robin.
fn stratified_fold_assignment(samples: &[AttackSample], folds: usize, seed: u64) -> Vec<usize> {
    let n_labels = samples.iter().map(|s| s.label).max().map_or(0, |m| m + 1);
    let mut per_label: Vec<Vec<usize>> = vec![Vec::new(); n_labels];
    for (i, s) in samples.iter().enumerate() {
        per_label[s.label].push(i);
    }
    let mut rng = DetRng::seed_from_u64(seed);
    let mut assignment = vec![0usize; samples.len()];
    for indices in &mut per_label {
        indices.shuffle(&mut rng);
        for (pos, &i) in indices.iter().enumerate() {
            assignment[i] = pos % folds;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_features_are_correct() {
        let s = AttackSample::from_sizes(&[10, 20, 30, 40], 2);
        assert_eq!(s.label, 2);
        assert_eq!(s.features[0], 25.0); // mean
        assert_eq!(s.features[1], 25.0); // median
        assert!((s.features[2] - 11.1803).abs() < 1e-3); // std
        assert_eq!(s.features[3], 15.0); // IQR: q75=32.5, q25=17.5
    }

    #[test]
    fn most_frequent_rate_basics() {
        assert_eq!(most_frequent_rate(&[]), 0.0);
        assert_eq!(most_frequent_rate(&[1, 1, 1, 0]), 0.75);
        assert_eq!(most_frequent_rate(&[0, 1, 2, 3]), 0.25);
    }

    #[test]
    fn confusion_matrix_metrics() {
        let mut m = ConfusionMatrix::new(2);
        m.record(0, 0);
        m.record(0, 0);
        m.record(0, 1);
        m.record(1, 1);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.accuracy(), 0.75);
        assert_eq!(m.recall(0), 2.0 / 3.0);
        assert_eq!(m.precision(1), 0.5);
        let mut other = ConfusionMatrix::new(2);
        other.record(1, 0);
        m.merge(&other);
        assert_eq!(m.get(1, 0), 1);
    }

    #[test]
    fn stratified_folds_balance_labels() {
        let samples: Vec<AttackSample> = (0..100)
            .map(|i| AttackSample {
                features: [0.0; 4],
                label: i % 4,
            })
            .collect();
        let assignment = stratified_fold_assignment(&samples, 5, 1);
        for fold in 0..5 {
            for label in 0..4 {
                let count = samples
                    .iter()
                    .zip(&assignment)
                    .filter(|(s, &f)| s.label == label && f == fold)
                    .count();
                assert_eq!(count, 5, "fold {fold} label {label}");
            }
        }
    }

    /// A leaky channel (size = f(label) + noise) is broken by the attack.
    #[test]
    fn attack_succeeds_on_leaky_sizes() {
        let observations: Vec<(usize, usize)> = (0..600)
            .map(|i| {
                let label = i % 3;
                let noise = (i * 37) % 20;
                (label, 200 + label * 60 + noise)
            })
            .collect();
        let attack = ClassifierAttack {
            total_samples: 600,
            n_estimators: 15,
            ..Default::default()
        };
        let outcome = attack.run(&observations);
        assert!(
            outcome.mean_accuracy() > 0.95,
            "accuracy {}",
            outcome.mean_accuracy()
        );
        assert!(outcome.advantage() > 2.0);
    }

    /// Fixed-length messages reduce the attack to the baseline.
    #[test]
    fn attack_fails_on_fixed_sizes() {
        let observations: Vec<(usize, usize)> = (0..600).map(|i| (i % 3, 220)).collect();
        let attack = ClassifierAttack {
            total_samples: 600,
            n_estimators: 15,
            ..Default::default()
        };
        let outcome = attack.run(&observations);
        // Everything collapses to one predicted class: accuracy equals the
        // most frequent label's share.
        assert!(
            (outcome.mean_accuracy() - outcome.baseline).abs() < 0.05,
            "accuracy {} vs baseline {}",
            outcome.mean_accuracy(),
            outcome.baseline
        );
    }

    #[test]
    fn importance_identifies_the_informative_feature() {
        // Means separate the classes; the other statistics are constant.
        let samples: Vec<AttackSample> = (0..400)
            .map(|i| {
                let label = i % 2;
                let noise = ((i * 13) % 7) as f64;
                AttackSample {
                    features: [200.0 + label as f64 * 50.0 + noise, 5.0, 5.0, 5.0],
                    label,
                }
            })
            .collect();
        let attack = ClassifierAttack {
            n_estimators: 10,
            ..Default::default()
        };
        let importance = permutation_importance(&samples, &attack, 3);
        assert!(importance[0] > 0.2, "mean importance {importance:?}");
        for &other in &importance[1..] {
            assert!(
                other.abs() < 0.05,
                "constant features must not matter: {importance:?}"
            );
        }
    }

    #[test]
    fn importance_is_flat_for_fixed_sizes() {
        let samples: Vec<AttackSample> = (0..200)
            .map(|i| AttackSample {
                features: [220.0, 220.0, 0.0, 0.0],
                label: i % 3,
            })
            .collect();
        let attack = ClassifierAttack {
            n_estimators: 5,
            ..Default::default()
        };
        let importance = permutation_importance(&samples, &attack, 2);
        assert!(importance.iter().all(|v| v.abs() < 1e-9), "{importance:?}");
    }

    #[test]
    fn empty_observations_give_no_samples() {
        let attack = ClassifierAttack::default();
        assert!(attack.build_samples(&[]).is_empty());
    }
}
