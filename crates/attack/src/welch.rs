//! Welch's t-test for unequal-variance samples.
//!
//! The paper uses it twice: §3.2 shows the pairwise differences between
//! per-event message-size distributions are significant at α = 0.01, and
//! §5.7 flags MCU budget violations with a one-sided test at α = 0.05.
//! The p-value comes from the Student-t CDF, evaluated through the
//! regularized incomplete beta function (continued-fraction expansion).

/// Result of a Welch's t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchTest {
    /// The t statistic (sign follows `mean(a) - mean(b)`).
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
}

impl WelchTest {
    /// One-sided p-value for the alternative `mean(a) > mean(b)`.
    pub fn p_greater(&self) -> f64 {
        if self.t >= 0.0 {
            self.p_two_sided / 2.0
        } else {
            1.0 - self.p_two_sided / 2.0
        }
    }

    /// Convenience significance check on the two-sided p-value.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_two_sided < alpha
    }
}

/// Runs Welch's unequal-variances t-test on two samples.
///
/// Returns `None` when either sample has fewer than two observations or
/// both variances are zero (the statistic is undefined; equal constant
/// samples are trivially indistinguishable).
///
/// # Examples
///
/// ```
/// use age_attack::welch_t_test;
///
/// let walking = [564.0, 560.0, 570.0, 566.0, 559.0];
/// let running = [1127.0, 1130.0, 1121.0, 1135.0, 1124.0];
/// let test = welch_t_test(&walking, &running).expect("valid samples");
/// assert!(test.significant(0.01));
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Option<WelchTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let var = |xs: &[f64], m: f64| {
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
    };
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (var(a, ma), var(b, mb));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return None;
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2
        / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(f64::MIN_POSITIVE);
    let p_two_sided = 2.0 * student_t_sf(t.abs(), df);
    Some(WelchTest {
        t,
        df,
        p_two_sided: p_two_sided.clamp(0.0, 1.0),
    })
}

/// Survival function `P(T > t)` of the Student-t distribution with `df`
/// degrees of freedom, for `t >= 0`.
fn student_t_sf(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    // P(T > t) = I_{df/(df+t²)}(df/2, 1/2) / 2.
    let x = df / (df + t * t);
    0.5 * regularized_incomplete_beta(0.5 * df, 0.5, x)
}

/// Regularized incomplete beta `I_x(a, b)` via the Lentz continued fraction
/// (Numerical Recipes `betai`/`betacf`).
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction kernel of the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_7e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015f64;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_edges_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.5)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "a={a} b={b} x={x}");
        }
        // I_x(1,1) = x (uniform CDF).
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_sf_matches_reference_values() {
        // P(T>1.96, df=∞→large) ≈ 0.025; with df=1000 ≈ 0.0251.
        let p = student_t_sf(1.96, 1000.0);
        assert!((p - 0.025).abs() < 0.001, "p={p}");
        // df=1 (Cauchy): P(T>1) = 0.25.
        let p = student_t_sf(1.0, 1.0);
        assert!((p - 0.25).abs() < 1e-6, "p={p}");
        // t=0: one half.
        assert!((student_t_sf(0.0, 7.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_are_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| 100.0 + (i % 7) as f64).collect();
        let b: Vec<f64> = (0..40).map(|i| 100.0 + ((i + 3) % 7) as f64).collect();
        let test = welch_t_test(&a, &b).unwrap();
        assert!(!test.significant(0.01), "p={}", test.p_two_sided);
    }

    #[test]
    fn separated_distributions_are_significant() {
        // The paper's Table 1 situation: walking vs running message sizes.
        let walking: Vec<f64> = (0..30).map(|i| 564.0 + (i % 9) as f64 * 7.5).collect();
        let running: Vec<f64> = (0..30).map(|i| 1127.0 + (i % 9) as f64 * 7.3).collect();
        let test = welch_t_test(&walking, &running).unwrap();
        assert!(test.significant(0.01));
        assert!(test.t < 0.0, "walking mean is smaller");
        assert!(test.p_greater() > 0.5, "one-sided in the other direction");
    }

    #[test]
    fn one_sided_budget_violation_check() {
        // §5.7: flag a policy whose energy is significantly above Uniform's.
        let uniform: Vec<f64> = (0..75).map(|i| 37.8 + (i % 5) as f64 * 0.1).collect();
        let padded: Vec<f64> = (0..75).map(|i| 45.4 + (i % 5) as f64 * 0.1).collect();
        let test = welch_t_test(&padded, &uniform).unwrap();
        assert!(test.p_greater() < 0.05, "padded energy must flag as higher");
        let ok: Vec<f64> = (0..75).map(|i| 37.7 + (i % 5) as f64 * 0.1).collect();
        let test = welch_t_test(&ok, &uniform).unwrap();
        assert!(test.p_greater() > 0.05, "matching energy must not flag");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_none()); // zero variances
    }
}
