//! The Linear adaptive policy of Chatterjea & Havinga [25].

use crate::{l1_distance, seq_len, Policy};

/// Adaptive sampling driven by differences between consecutive collected
/// measurements (paper §5.1, "Linear").
///
/// The policy always collects the first measurement. After each collection
/// it compares the new measurement with the previous collected one: if the
/// L1 difference exceeds the threshold, the collection period resets to one
/// (sample the very next step); otherwise the period grows by one. Flat
/// signals therefore decay to sparse sampling while volatile signals are
/// sampled densely — and the collection count tracks the event, which is
/// the leak AGE closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearPolicy {
    threshold: f64,
    max_period: usize,
}

impl LinearPolicy {
    /// Creates a policy with the given difference threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        LinearPolicy {
            threshold,
            max_period: usize::MAX,
        }
    }

    /// Caps the collection period (long gaps hurt reconstruction; some
    /// deployments bound them).
    pub fn with_max_period(mut self, max_period: usize) -> Self {
        self.max_period = max_period.max(1);
        self
    }

    /// The difference threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Policy for LinearPolicy {
    fn name(&self) -> &'static str {
        "Linear"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        let len = seq_len(values, features);
        if len == 0 {
            return Vec::new();
        }
        let mut collected = vec![0usize];
        let mut period = 1usize;
        let mut prev = 0usize;
        let mut t = 1usize;
        while t < len {
            // Collect the measurement scheduled by the current period.
            collected.push(t);
            if l1_distance(values, features, prev, t) > self.threshold {
                period = 1;
            } else {
                period = (period + 1).min(self.max_period);
            }
            prev = t;
            t += period;
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_signal_decays_to_sparse_sampling() {
        let p = LinearPolicy::new(0.5);
        let idx = p.sample(&vec![1.0; 100], 1);
        // Periods grow 1,2,3,…: index gaps are triangular, so far fewer
        // than half the measurements are collected.
        assert!(idx.len() < 20, "collected {} of 100", idx.len());
        assert_eq!(idx[0], 0);
    }

    #[test]
    fn volatile_signal_is_densely_sampled() {
        let p = LinearPolicy::new(0.5);
        let vals: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 2.0 } else { -2.0 })
            .collect();
        let idx = p.sample(&vals, 1);
        assert!(idx.len() > 90, "collected {} of 100", idx.len());
    }

    #[test]
    fn collection_count_is_data_dependent() {
        // The core of the paper's §2.2 example.
        let p = LinearPolicy::new(0.3);
        let walking: Vec<f64> = (0..50).map(|i| 0.05 * (i as f64 * 0.2).sin()).collect();
        let running: Vec<f64> = (0..50).map(|i| 2.0 * (i as f64 * 1.9).sin()).collect();
        let k_walk = p.sample(&walking, 1).len();
        let k_run = p.sample(&running, 1).len();
        assert!(k_run > 2 * k_walk, "walk={k_walk} run={k_run}");
    }

    #[test]
    fn threshold_monotonically_reduces_collection() {
        let vals: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        let mut last = usize::MAX;
        for thr in [0.0, 0.1, 0.3, 0.8, 2.0] {
            let k = LinearPolicy::new(thr).sample(&vals, 1).len();
            assert!(k <= last, "threshold {thr} collected {k} > {last}");
            last = k;
        }
    }

    #[test]
    fn max_period_bounds_gaps() {
        let p = LinearPolicy::new(10.0).with_max_period(4);
        let idx = p.sample(&vec![0.0; 100], 1);
        assert!(idx.windows(2).all(|w| w[1] - w[0] <= 4));
    }

    #[test]
    fn indices_are_strictly_increasing_and_in_range() {
        let p = LinearPolicy::new(0.2);
        let vals: Vec<f64> = (0..300).map(|i| ((i * i) % 17) as f64 * 0.1).collect();
        let idx = p.sample(&vals, 3);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn multi_feature_distances_use_l1() {
        // Differences split across features still trip the threshold.
        let p = LinearPolicy::new(0.5);
        let vals = vec![0.0, 0.0, 0.3, 0.3, 0.6, 0.6, 0.9, 0.9];
        let idx = p.sample(&vals, 2);
        assert_eq!(idx, vec![0, 1, 2, 3]); // every step: L1 = 0.6 > 0.5
    }

    #[test]
    fn empty_sequence_collects_nothing() {
        let p = LinearPolicy::new(0.1);
        assert!(p.sample(&[], 1).is_empty());
    }
}
