//! Sampling policies for low-power sensors (paper §5.1).
//!
//! A policy walks a sequence of `T` measurements and decides which to
//! collect; the sensor only spends collection and transmission energy on the
//! chosen subset, and the server reconstructs the rest by interpolation.
//!
//! Implemented policies:
//!
//! - [`UniformPolicy`] — non-adaptive, evenly spaced. The rate is fixed, so
//!   message sizes carry no information (but error is suboptimal).
//! - [`RandomPolicy`] — non-adaptive Bernoulli baseline.
//! - [`LinearPolicy`] — the adaptive policy of Chatterjea & Havinga \[25\]:
//!   grows its collection period while consecutive samples stay similar,
//!   and resets it when they differ.
//! - [`DeviationPolicy`] — the adaptive policy of Silva et al. \[96\]
//!   (LiteSense): tracks a weighted moving deviation and doubles/halves the
//!   collection rate around a threshold.
//!
//! Adaptive policies are tuned to an energy budget by an offline threshold
//! fit ([`fit_threshold`]) that targets the budget's average collection
//! rate, exactly as the paper trains per-budget thresholds offline.
//!
//! # Examples
//!
//! ```
//! use age_sampling::{LinearPolicy, Policy};
//!
//! // A flat, then volatile signal: the adaptive policy collects sparsely
//! // at the start and densely at the end.
//! let mut seq: Vec<f64> = vec![0.0; 40];
//! seq.extend((0..40).map(|i| if i % 2 == 0 { 3.0 } else { -3.0 }));
//! let policy = LinearPolicy::new(0.5);
//! let idx = policy.sample(&seq, 1);
//! let early = idx.iter().filter(|&&i| i < 40).count();
//! let late = idx.iter().filter(|&&i| i >= 40).count();
//! assert!(late > early);
//! ```

mod deviation;
mod feedback;
mod fit;
mod linear;
pub mod mcu;
mod uniform;

pub use deviation::DeviationPolicy;
pub use feedback::FeedbackPolicy;
pub use fit::{average_rate, fit_threshold};
pub use linear::LinearPolicy;
pub use uniform::{RandomPolicy, UniformPolicy};

/// A sampling policy: selects which measurement indices to collect.
///
/// Policies are stateless across calls (per-sequence state lives on the
/// stack), so one instance can serve many sequences and threads. The
/// `Debug` bound keeps boxed policies inspectable in experiment logs and
/// property-test output.
pub trait Policy: std::fmt::Debug {
    /// Short name for experiment reports (e.g. `"Linear"`).
    fn name(&self) -> &'static str;

    /// `true` for policies whose collection count depends on the data —
    /// the property that opens the message-size side-channel.
    fn is_adaptive(&self) -> bool;

    /// Walks a row-major sequence (`values.len()` must be a multiple of
    /// `features`) and returns the strictly increasing collected indices.
    ///
    /// Policies are causal: the decision to collect index `t` may only use
    /// measurements collected before `t`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `values.len()` is not a multiple of
    /// `features` or `features` is zero.
    fn sample(&self, values: &[f64], features: usize) -> Vec<usize>;
}

/// Number of measurements in a row-major sequence.
///
/// # Panics
///
/// Panics if `features` is zero or does not divide `values.len()`.
pub(crate) fn seq_len(values: &[f64], features: usize) -> usize {
    assert!(features > 0, "features must be positive");
    assert_eq!(
        values.len() % features,
        0,
        "values must be a whole number of measurements"
    );
    values.len() / features
}

/// L1 distance between measurements `a` and `b` of a row-major sequence.
pub(crate) fn l1_distance(values: &[f64], features: usize, a: usize, b: usize) -> f64 {
    let xa = &values[a * features..(a + 1) * features];
    let xb = &values[b * features..(b + 1) * features];
    xa.iter().zip(xb).map(|(x, y)| (x - y).abs()).sum()
}
