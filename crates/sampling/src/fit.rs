//! Offline threshold fitting (paper §5.1).
//!
//! The paper sets one threshold per energy budget using an offline training
//! step, so an adaptive policy's *average* collection rate matches the rate
//! the budget affords. Both implemented adaptive policies collect less as
//! their threshold rises, so a bisection on the threshold converges.

use crate::Policy;

/// Mean collection rate of `policy` over `sequences` (row-major values,
/// `features` per measurement).
pub fn average_rate<P, S>(policy: &P, sequences: &[S], features: usize) -> f64
where
    P: Policy + ?Sized,
    S: AsRef<[f64]>,
{
    if sequences.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for seq in sequences {
        let values = seq.as_ref();
        let len = values.len() / features;
        if len == 0 {
            continue;
        }
        total += policy.sample(values, features).len() as f64 / len as f64;
    }
    total / sequences.len() as f64
}

/// Fits a threshold so the policy produced by `make` collects at roughly
/// `target_rate` on the training `sequences`.
///
/// `hi` should be an upper bound on meaningful thresholds (e.g. the data
/// range); the search bisects `[0, hi]` for `iters` rounds and returns the
/// threshold whose measured rate was closest to the target.
///
/// # Panics
///
/// Panics if `target_rate` is outside `(0, 1]` or `hi` is not positive.
pub fn fit_threshold<P, F, S>(
    make: F,
    sequences: &[S],
    features: usize,
    target_rate: f64,
    hi: f64,
    iters: usize,
) -> f64
where
    P: Policy,
    F: Fn(f64) -> P,
    S: AsRef<[f64]>,
{
    assert!(
        target_rate > 0.0 && target_rate <= 1.0,
        "target_rate must be in (0, 1]"
    );
    assert!(hi > 0.0, "hi must be positive");
    let mut lo = 0.0f64;
    let mut hi = hi;
    let mut best = (f64::INFINITY, 0.0f64);
    for _ in 0..iters.max(1) {
        let mid = 0.5 * (lo + hi);
        let rate = average_rate(&make(mid), sequences, features);
        let gap = (rate - target_rate).abs();
        if gap < best.0 {
            best = (gap, mid);
        }
        if rate > target_rate {
            // Collecting too much: raise the threshold.
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviationPolicy, LinearPolicy, UniformPolicy};

    fn training_sequences() -> Vec<Vec<f64>> {
        (0..12)
            .map(|s| {
                (0..150)
                    .map(|t| {
                        let x = t as f64;
                        (x * (0.05 + 0.03 * (s % 4) as f64)).sin() * (0.5 + 0.4 * (s % 3) as f64)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn average_rate_of_uniform_matches_config() {
        let seqs = training_sequences();
        let rate = average_rate(&UniformPolicy::new(0.4), &seqs, 1);
        assert!((rate - 0.4).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn fitted_linear_hits_target_rates() {
        let seqs = training_sequences();
        for target in [0.3, 0.5, 0.7, 0.9] {
            let thr = fit_threshold(LinearPolicy::new, &seqs, 1, target, 4.0, 24);
            let got = average_rate(&LinearPolicy::new(thr), &seqs, 1);
            assert!(
                (got - target).abs() < 0.12,
                "target={target} got={got} thr={thr}"
            );
        }
    }

    #[test]
    fn fitted_deviation_hits_target_rates() {
        let seqs = training_sequences();
        for target in [0.3, 0.6, 0.9] {
            let thr = fit_threshold(DeviationPolicy::new, &seqs, 1, target, 4.0, 24);
            let got = average_rate(&DeviationPolicy::new(thr), &seqs, 1);
            assert!(
                (got - target).abs() < 0.15,
                "target={target} got={got} thr={thr}"
            );
        }
    }

    #[test]
    fn fit_is_monotone_in_target() {
        let seqs = training_sequences();
        let thr_lo = fit_threshold(LinearPolicy::new, &seqs, 1, 0.3, 4.0, 20);
        let thr_hi = fit_threshold(LinearPolicy::new, &seqs, 1, 0.9, 4.0, 20);
        // Lower target rate needs a higher threshold.
        assert!(thr_lo > thr_hi, "thr(0.3)={thr_lo} thr(0.9)={thr_hi}");
    }

    #[test]
    fn empty_training_set_gives_zero_rate() {
        let empty: Vec<Vec<f64>> = Vec::new();
        assert_eq!(average_rate(&UniformPolicy::new(0.5), &empty, 1), 0.0);
    }
}
