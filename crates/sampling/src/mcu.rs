//! Integer-only sampling policies — the MCU execution path.
//!
//! The paper's sensor runs its policy on an MSP430 in fixed-point
//! arithmetic (§4.1). These are the integer twins of [`crate::LinearPolicy`]
//! and [`crate::DeviationPolicy`], operating on raw `round(x · 2^frac)`
//! values:
//!
//! - [`RawLinearPolicy`] is *decision-exact*: for format-exact inputs it
//!   collects exactly the same indices as the floating-point policy,
//!   because L1 distances of fixed-point values are integers and the
//!   threshold comparison transfers exactly (enforced by tests).
//! - [`RawDeviationPolicy`] uses a dyadic EWMA weight (`α = 3/4`, a shift
//!   and a subtract) because the float default `0.7` has no cheap integer
//!   form; it tracks the float policy at `α = 0.75` closely but not
//!   bit-exactly (per-step rounding).

/// Integer twin of [`crate::LinearPolicy`].
///
/// The threshold is a raw fixed-point magnitude: for a float threshold `t`
/// against values with `frac` fractional bits, use
/// [`RawLinearPolicy::from_float_threshold`].
///
/// # Examples
///
/// ```
/// use age_sampling::mcu::RawLinearPolicy;
///
/// // Q3.13 values: raw = x * 8192.
/// let policy = RawLinearPolicy::from_float_threshold(0.5, 13);
/// let seq: Vec<i64> = (0..50).map(|t| if t < 25 { 0 } else { 8192 * (t % 2) }).collect();
/// let idx = policy.sample(&seq, 1);
/// assert_eq!(idx[0], 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawLinearPolicy {
    threshold_raw: i64,
    max_period: usize,
}

impl RawLinearPolicy {
    /// Creates a policy with a raw-unit threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_raw` is negative.
    pub fn new(threshold_raw: i64) -> Self {
        assert!(threshold_raw >= 0, "threshold must be non-negative");
        RawLinearPolicy {
            threshold_raw,
            max_period: usize::MAX,
        }
    }

    /// Converts a float threshold for values with `frac` fractional bits:
    /// `⌊t · 2^frac⌋`, which preserves every `>` comparison on integer L1
    /// distances.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or not finite.
    pub fn from_float_threshold(t: f64, frac: i16) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "threshold must be a non-negative number"
        );
        let scale = f64::powi(2.0, i32::from(frac));
        RawLinearPolicy::new((t * scale).floor() as i64)
    }

    /// Caps the collection period.
    pub fn with_max_period(mut self, max_period: usize) -> Self {
        self.max_period = max_period.max(1);
        self
    }

    /// Walks a row-major raw sequence; returns collected indices.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` is not a multiple of `features` or `features`
    /// is zero.
    pub fn sample(&self, raw: &[i64], features: usize) -> Vec<usize> {
        assert!(features > 0, "features must be positive");
        assert_eq!(
            raw.len() % features,
            0,
            "raw values must be whole measurements"
        );
        let len = raw.len() / features;
        if len == 0 {
            return Vec::new();
        }
        let l1 = |a: usize, b: usize| -> i64 {
            let xa = &raw[a * features..(a + 1) * features];
            let xb = &raw[b * features..(b + 1) * features];
            xa.iter().zip(xb).map(|(x, y)| (x - y).abs()).sum()
        };
        let mut collected = vec![0usize];
        let mut period = 1usize;
        let mut prev = 0usize;
        let mut t = 1usize;
        while t < len {
            collected.push(t);
            if l1(prev, t) > self.threshold_raw {
                period = 1;
            } else {
                period = (period + 1).min(self.max_period);
            }
            prev = t;
            t += period;
        }
        collected
    }
}

/// Integer twin of [`crate::DeviationPolicy`] with the dyadic EWMA weight
/// `α = 3/4` (`x - (x >> 2)` on an MCU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawDeviationPolicy {
    threshold_raw: i64,
    max_period: usize,
}

impl RawDeviationPolicy {
    /// Default cap on the collection period (matches the float policy).
    pub const DEFAULT_MAX_PERIOD: usize = 16;

    /// Creates a policy with a raw-unit deviation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_raw` is negative.
    pub fn new(threshold_raw: i64) -> Self {
        assert!(threshold_raw >= 0, "threshold must be non-negative");
        RawDeviationPolicy {
            threshold_raw,
            max_period: Self::DEFAULT_MAX_PERIOD,
        }
    }

    /// Converts a float threshold for values with `frac` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or not finite.
    pub fn from_float_threshold(t: f64, frac: i16) -> Self {
        assert!(
            t.is_finite() && t >= 0.0,
            "threshold must be a non-negative number"
        );
        let scale = f64::powi(2.0, i32::from(frac));
        RawDeviationPolicy::new((t * scale).floor() as i64)
    }

    /// Caps the collection period.
    pub fn with_max_period(mut self, max_period: usize) -> Self {
        self.max_period = max_period.max(1);
        self
    }

    /// Walks a row-major raw sequence; returns collected indices.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len()` is not a multiple of `features` or `features`
    /// is zero.
    pub fn sample(&self, raw: &[i64], features: usize) -> Vec<usize> {
        assert!(features > 0, "features must be positive");
        assert_eq!(
            raw.len() % features,
            0,
            "raw values must be whole measurements"
        );
        let len = raw.len() / features;
        if len == 0 {
            return Vec::new();
        }
        let d = features as i64;
        // Per-feature EWMA means and a scalar EWMA deviation, all in raw
        // units. α = 3/4: ewma' = ewma - (ewma >> 2) + (x >> 2).
        let mut mean: Vec<i64> = raw[..features].to_vec();
        let mut dev: i64 = 0;
        let mut collected = vec![0usize];
        let mut period = 1usize;
        let mut t = 1usize;
        while t < len {
            collected.push(t);
            let x = &raw[t * features..(t + 1) * features];
            let abs_dev: i64 = x.iter().zip(&mean).map(|(v, m)| (v - m).abs()).sum::<i64>() / d;
            dev = dev - (dev >> 2) + (abs_dev >> 2);
            for (m, &v) in mean.iter_mut().zip(x) {
                *m = *m - (*m >> 2) + (v >> 2);
            }
            if dev > self.threshold_raw {
                period = (period / 2).max(1);
            } else {
                period = (period * 2).min(self.max_period);
            }
            t += period;
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviationPolicy, LinearPolicy, Policy};

    /// Format-exact float values and their raw twins (Q3.13).
    fn paired_sequence(len: usize, features: usize) -> (Vec<f64>, Vec<i64>) {
        let scale = 8192.0; // 2^13
        let mut float = Vec::with_capacity(len * features);
        let mut raw = Vec::with_capacity(len * features);
        for i in 0..len * features {
            let r = ((i as f64 * 0.37).sin() * 2.0 * scale).round() as i64;
            raw.push(r);
            float.push(r as f64 / scale);
        }
        (float, raw)
    }

    #[test]
    fn raw_linear_matches_float_linear_exactly() {
        let (float, raw) = paired_sequence(120, 3);
        for thr in [0.0, 0.01, 0.5, 1.3, 2.7, 10.0] {
            let f_idx = LinearPolicy::new(thr).sample(&float, 3);
            let r_idx = RawLinearPolicy::from_float_threshold(thr, 13).sample(&raw, 3);
            assert_eq!(f_idx, r_idx, "thr={thr}");
        }
    }

    #[test]
    fn raw_linear_respects_period_cap() {
        let (_, raw) = paired_sequence(100, 1);
        let idx = RawLinearPolicy::new(i64::MAX / 4)
            .with_max_period(5)
            .sample(&raw, 1);
        assert!(idx.windows(2).all(|w| w[1] - w[0] <= 5));
    }

    #[test]
    fn raw_deviation_tracks_float_counterpart() {
        // Not bit-exact (integer EWMA rounds per step), but the collection
        // counts must stay close for matched α = 0.75.
        let (float, raw) = paired_sequence(300, 2);
        for thr in [0.05, 0.2, 0.8] {
            let f_k = DeviationPolicy::new(thr)
                .with_alpha(0.75)
                .sample(&float, 2)
                .len();
            let r_k = RawDeviationPolicy::from_float_threshold(thr, 13)
                .sample(&raw, 2)
                .len();
            let diff = (f_k as f64 - r_k as f64).abs() / f_k as f64;
            assert!(diff < 0.25, "thr={thr}: float {f_k} vs raw {r_k}");
        }
    }

    #[test]
    fn raw_policies_are_data_dependent() {
        let flat = vec![100i64; 200];
        let wild: Vec<i64> = (0..200)
            .map(|i| if i % 2 == 0 { 20_000 } else { -20_000 })
            .collect();
        let lin = RawLinearPolicy::new(5_000);
        assert!(lin.sample(&wild, 1).len() > 2 * lin.sample(&flat, 1).len());
        let dev = RawDeviationPolicy::new(2_000);
        assert!(dev.sample(&wild, 1).len() > 2 * dev.sample(&flat, 1).len());
    }

    #[test]
    fn raw_indices_are_valid() {
        let (_, raw) = paired_sequence(90, 3);
        for idx in [
            RawLinearPolicy::new(1000).sample(&raw, 3),
            RawDeviationPolicy::new(1000).sample(&raw, 3),
        ] {
            assert_eq!(idx[0], 0);
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
            assert!(*idx.last().unwrap() < 90);
        }
    }

    #[test]
    #[should_panic(expected = "threshold must be non-negative")]
    fn raw_linear_rejects_negative_threshold() {
        let _ = RawLinearPolicy::new(-1);
    }
}
