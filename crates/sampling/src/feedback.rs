//! Online budget-feedback sampling — adaptive sampling without offline
//! threshold fitting.
//!
//! The paper's Linear and Deviation policies need an offline training pass
//! per energy budget (§5.1). Deployed sensors do not always have training
//! data, so this extension closes the loop at runtime instead: after every
//! sequence the controller compares the realized collection rate with the
//! budget's target rate and nudges the threshold multiplicatively —
//! a classic integral controller in log-threshold space, in the spirit of
//! the self-adaptive systems literature the paper builds on [50, 76].
//!
//! The result is a *data-dependent* sampler (it still leaks through message
//! sizes, so it still needs AGE!) whose long-run average rate converges to
//! the target without any training split.

use crate::{LinearPolicy, Policy};

/// An integral controller wrapping [`LinearPolicy`] whose threshold adapts
/// online toward a target average collection rate.
///
/// # Examples
///
/// ```
/// use age_sampling::FeedbackPolicy;
///
/// let mut policy = FeedbackPolicy::new(0.5);
/// for s in 0..40 {
///     let seq: Vec<f64> = (0..100).map(|t| ((t + s) as f64 * 0.2).sin()).collect();
///     policy.sample_and_adapt(&seq, 1);
/// }
/// assert!((policy.smoothed_rate() - 0.5).abs() < 0.15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackPolicy {
    target_rate: f64,
    threshold: f64,
    gain: f64,
    smoothed_rate: f64,
    sequences_seen: usize,
}

impl FeedbackPolicy {
    /// Default integral gain (per-sequence multiplicative step size).
    pub const DEFAULT_GAIN: f64 = 1.8;

    /// Creates a controller targeting `target_rate`.
    ///
    /// # Panics
    ///
    /// Panics if `target_rate` is outside `(0, 1]`.
    pub fn new(target_rate: f64) -> Self {
        assert!(
            target_rate > 0.0 && target_rate <= 1.0,
            "target rate must be in (0, 1], got {target_rate}"
        );
        FeedbackPolicy {
            target_rate,
            threshold: 0.1,
            gain: Self::DEFAULT_GAIN,
            smoothed_rate: target_rate,
            sequences_seen: 0,
        }
    }

    /// Overrides the integral gain.
    ///
    /// # Panics
    ///
    /// Panics if `gain` is not positive.
    pub fn with_gain(mut self, gain: f64) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        self.gain = gain;
        self
    }

    /// The current threshold (diagnostic).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Exponentially smoothed realized collection rate.
    pub fn smoothed_rate(&self) -> f64 {
        self.smoothed_rate
    }

    /// Sequences processed so far.
    pub fn sequences_seen(&self) -> usize {
        self.sequences_seen
    }

    /// Samples one sequence with the current threshold, then updates the
    /// threshold from the realized rate. Returns the collected indices.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` is not a multiple of `features`.
    pub fn sample_and_adapt(&mut self, values: &[f64], features: usize) -> Vec<usize> {
        let inner = LinearPolicy::new(self.threshold);
        let indices = inner.sample(values, features);
        let len = values.len() / features.max(1);
        if len > 0 {
            let rate = indices.len() as f64 / len as f64;
            self.smoothed_rate = 0.8 * self.smoothed_rate + 0.2 * rate;
            // Integral action in log space: collecting too much raises the
            // threshold (collect less), and vice versa. Multiplicative
            // updates keep the threshold positive and scale-free.
            let error = rate - self.target_rate;
            self.threshold = (self.threshold * (self.gain * error).exp()).clamp(1e-9, 1e12);
            self.sequences_seen += 1;
        }
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(seed: usize, volatility: f64) -> Vec<Vec<f64>> {
        (0..60)
            .map(|s| {
                (0..120)
                    .map(|t| (((t + s * 7 + seed) as f64) * 0.21).sin() * volatility)
                    .collect()
            })
            .collect()
    }

    fn realized_rate(policy: &mut FeedbackPolicy, seqs: &[Vec<f64>]) -> f64 {
        let mut collected = 0usize;
        let mut total = 0usize;
        for seq in seqs {
            collected += policy.sample_and_adapt(seq, 1).len();
            total += seq.len();
        }
        collected as f64 / total as f64
    }

    #[test]
    fn converges_to_target_rate_without_training() {
        for target in [0.3, 0.5, 0.8] {
            let mut policy = FeedbackPolicy::new(target);
            let seqs = stream(3, 1.0);
            // Warm-up pass, then measure.
            let _ = realized_rate(&mut policy, &seqs);
            let rate = realized_rate(&mut policy, &seqs);
            assert!((rate - target).abs() < 0.12, "target={target} rate={rate}");
        }
    }

    #[test]
    fn adapts_when_the_environment_changes() {
        let mut policy = FeedbackPolicy::new(0.5);
        let calm = stream(1, 0.05);
        let wild = stream(2, 3.0);
        let _ = realized_rate(&mut policy, &calm);
        let calm_rate = realized_rate(&mut policy, &calm);
        let _ = realized_rate(&mut policy, &wild);
        let wild_rate = realized_rate(&mut policy, &wild);
        assert!((calm_rate - 0.5).abs() < 0.15, "calm_rate={calm_rate}");
        assert!((wild_rate - 0.5).abs() < 0.15, "wild_rate={wild_rate}");
        // Thresholds at convergence must differ: the controller retunes.
        assert!(policy.threshold() > 0.0);
    }

    #[test]
    fn remains_data_dependent_within_sequences() {
        // The controller targets the *average* rate; individual sequences
        // still vary with volatility — the leak AGE closes remains.
        let mut policy = FeedbackPolicy::new(0.5);
        let mixed: Vec<Vec<f64>> = stream(5, 0.1)
            .into_iter()
            .zip(stream(6, 2.5))
            .flat_map(|(a, b)| [a, b])
            .collect();
        let _ = realized_rate(&mut policy, &mixed);
        let calm_k = policy.sample_and_adapt(&stream(7, 0.1)[0], 1).len();
        let wild_k = policy.sample_and_adapt(&stream(8, 2.5)[0], 1).len();
        assert!(wild_k > calm_k, "wild={wild_k} calm={calm_k}");
    }

    #[test]
    fn threshold_stays_positive_and_finite() {
        let mut policy = FeedbackPolicy::new(0.01).with_gain(5.0);
        for _ in 0..50 {
            let seq = vec![0.0f64; 100];
            let _ = policy.sample_and_adapt(&seq, 1);
            assert!(policy.threshold().is_finite() && policy.threshold() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "target rate must be in")]
    fn rejects_zero_target() {
        let _ = FeedbackPolicy::new(0.0);
    }
}
