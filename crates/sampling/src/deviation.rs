//! The Deviation adaptive policy of Silva et al. [96] (LiteSense).

use crate::{seq_len, Policy};

/// Adaptive sampling driven by a weighted moving deviation (paper §5.1,
/// "Deviation").
///
/// The policy maintains an exponentially weighted moving average of the
/// collected measurements and of their absolute deviation. When the tracked
/// deviation exceeds the threshold the collection rate doubles (the period
/// halves); otherwise the rate halves (the period doubles, up to a cap).
/// Like the Linear policy, the collection count follows the signal
/// volatility and thus the sensed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationPolicy {
    threshold: f64,
    alpha: f64,
    max_period: usize,
}

impl DeviationPolicy {
    /// Default EWMA weight for the deviation tracker.
    pub const DEFAULT_ALPHA: f64 = 0.7;
    /// Default cap on the collection period.
    pub const DEFAULT_MAX_PERIOD: usize = 16;

    /// Creates a policy with the given deviation threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative or NaN.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        DeviationPolicy {
            threshold,
            alpha: Self::DEFAULT_ALPHA,
            max_period: Self::DEFAULT_MAX_PERIOD,
        }
    }

    /// Overrides the EWMA weight in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1)`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
        self.alpha = alpha;
        self
    }

    /// Overrides the period cap.
    pub fn with_max_period(mut self, max_period: usize) -> Self {
        self.max_period = max_period.max(1);
        self
    }

    /// The deviation threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Policy for DeviationPolicy {
    fn name(&self) -> &'static str {
        "Deviation"
    }

    fn is_adaptive(&self) -> bool {
        true
    }

    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        let len = seq_len(values, features);
        if len == 0 {
            return Vec::new();
        }
        let measurement = |t: usize| -> &[f64] { &values[t * features..(t + 1) * features] };

        let mut collected = vec![0usize];
        // Per-feature weighted moving averages; the tracked deviation is the
        // mean absolute deviation across features (LiteSense-style).
        let mut mean: Vec<f64> = measurement(0).to_vec();
        let mut dev = 0.0f64;
        let mut period = 1usize;
        let mut t = 1usize;
        while t < len {
            collected.push(t);
            let x = measurement(t);
            let abs_dev =
                x.iter().zip(&mean).map(|(v, m)| (v - m).abs()).sum::<f64>() / features as f64;
            dev = self.alpha * dev + (1.0 - self.alpha) * abs_dev;
            for (m, &v) in mean.iter_mut().zip(x) {
                *m = self.alpha * *m + (1.0 - self.alpha) * v;
            }
            if dev > self.threshold {
                period = (period / 2).max(1);
            } else {
                period = (period * 2).min(self.max_period);
            }
            t += period;
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_signal_backs_off_to_max_period() {
        let p = DeviationPolicy::new(0.1);
        let idx = p.sample(&vec![3.0; 200], 1);
        // Period doubles 1,2,4,8,16,16,…: tail gaps reach the cap.
        let max_gap = idx.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        assert_eq!(max_gap, DeviationPolicy::DEFAULT_MAX_PERIOD);
        assert!(idx.len() < 30, "collected {}", idx.len());
    }

    #[test]
    fn volatile_signal_recovers_dense_sampling() {
        let p = DeviationPolicy::new(0.1);
        let mut vals = vec![0.0; 60];
        vals.extend((0..140).map(|i| if i % 2 == 0 { 4.0 } else { -4.0 }));
        let idx = p.sample(&vals, 1);
        let early = idx.iter().filter(|&&i| i < 60).count();
        let late = idx.iter().filter(|&&i| i >= 60).count();
        assert!(
            late as f64 / 140.0 > 2.0 * early as f64 / 60.0,
            "early={early} late={late}"
        );
    }

    #[test]
    fn threshold_monotonically_reduces_collection() {
        let vals: Vec<f64> = (0..300).map(|i| (i as f64 * 0.23).sin() * 1.5).collect();
        let mut last = usize::MAX;
        for thr in [0.0, 0.05, 0.2, 0.6, 3.0] {
            let k = DeviationPolicy::new(thr).sample(&vals, 1).len();
            assert!(k <= last, "threshold {thr}: {k} > {last}");
            last = k;
        }
    }

    #[test]
    fn rate_tracks_event_volatility() {
        let p = DeviationPolicy::new(0.08);
        let calm: Vec<f64> = (0..200).map(|i| 0.02 * (i as f64 * 0.1).sin()).collect();
        let wild: Vec<f64> = (0..200).map(|i| 2.0 * (i as f64 * 1.3).sin()).collect();
        assert!(p.sample(&wild, 1).len() > 2 * p.sample(&calm, 1).len());
    }

    #[test]
    fn indices_valid_for_multifeature_input() {
        let p = DeviationPolicy::new(0.3);
        let vals: Vec<f64> = (0..500).map(|i| ((i % 23) as f64) * 0.2).collect();
        let idx = p.sample(&vals, 5);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 100);
    }

    #[test]
    fn builder_validation() {
        let p = DeviationPolicy::new(0.5).with_alpha(0.9).with_max_period(4);
        assert_eq!(p.threshold(), 0.5);
        let idx = p.sample(&vec![0.0; 50], 1);
        assert!(idx.windows(2).all(|w| w[1] - w[0] <= 4));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let _ = DeviationPolicy::new(0.1).with_alpha(1.0);
    }
}
