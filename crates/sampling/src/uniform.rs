//! Non-adaptive baselines: uniform and random sampling.

use age_telemetry::DetRng;

use crate::{seq_len, Policy};

/// Evenly spaced sampling at a fixed rate (paper §5.1, "Uniform").
///
/// Collects `k = max(1, ⌊rate · T⌋)` indices at positions `⌊r·T/k⌋`, which
/// is the deterministic equivalent of the paper's stride-plus-random-fill
/// construction. Being data-independent, the collection count is identical
/// for every sequence — no information leaks through message sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformPolicy {
    rate: f64,
}

impl UniformPolicy {
    /// Creates a uniform sampler collecting roughly `rate · T` measurements.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0, 1]`.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0, 1], got {rate}"
        );
        UniformPolicy { rate }
    }

    /// The configured collection rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Collection count for a sequence of `len` measurements.
    pub fn count_for(&self, len: usize) -> usize {
        ((self.rate * len as f64) as usize).clamp(1, len)
    }
}

impl Policy for UniformPolicy {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        let len = seq_len(values, features);
        if len == 0 {
            return Vec::new();
        }
        let k = self.count_for(len);
        (0..k).map(|r| r * len / k).collect()
    }
}

/// Independent Bernoulli sampling at a fixed rate (paper §5.1, "Random").
///
/// The seed is derived from the sequence contents so repeated runs are
/// reproducible without shared mutable state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomPolicy {
    rate: f64,
    seed: u64,
}

impl RandomPolicy {
    /// Creates a random sampler with inclusion probability `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `(0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "rate must be in (0, 1], got {rate}"
        );
        RandomPolicy { rate, seed }
    }
}

impl Policy for RandomPolicy {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn is_adaptive(&self) -> bool {
        false
    }

    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        let len = seq_len(values, features);
        // Hash the sequence into the stream so each sequence draws fresh but
        // reproducible coins.
        let mut h = self.seed;
        for &v in values.iter().take(8) {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(v.to_bits());
        }
        let mut rng = DetRng::seed_from_u64(h);
        let mut out: Vec<usize> = (0..len).filter(|_| rng.gen_bool(self.rate)).collect();
        if out.is_empty() && len > 0 {
            out.push(0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_collects_exact_count() {
        let p = UniformPolicy::new(0.3);
        let idx = p.sample(&vec![0.0; 50], 1);
        assert_eq!(idx.len(), 15);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(*idx.last().unwrap() < 50);
    }

    #[test]
    fn uniform_full_rate_collects_everything() {
        let p = UniformPolicy::new(1.0);
        let idx = p.sample(&[0.0; 20], 2);
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_count_is_data_independent() {
        let p = UniformPolicy::new(0.5);
        let flat = p.sample(&vec![0.0; 100], 1);
        let wild: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 100.0).collect();
        assert_eq!(flat.len(), p.sample(&wild, 1).len());
    }

    #[test]
    fn uniform_spacing_is_even() {
        let p = UniformPolicy::new(0.25);
        let idx = p.sample(&vec![0.0; 100], 1);
        let gaps: Vec<usize> = idx.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g == 4), "{gaps:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be in")]
    fn uniform_rejects_zero_rate() {
        let _ = UniformPolicy::new(0.0);
    }

    #[test]
    fn random_rate_is_approximate() {
        let p = RandomPolicy::new(0.5, 99);
        let vals: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let k = p.sample(&vals, 1).len();
        assert!((800..1200).contains(&k), "k={k}");
    }

    #[test]
    fn random_is_reproducible_per_sequence() {
        let p = RandomPolicy::new(0.4, 7);
        let vals: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        assert_eq!(p.sample(&vals, 1), p.sample(&vals, 1));
    }

    #[test]
    fn random_never_returns_empty() {
        let p = RandomPolicy::new(0.01, 3);
        for seed_shift in 0..20 {
            let vals: Vec<f64> = (0..10).map(|i| (i + seed_shift) as f64).collect();
            assert!(!p.sample(&vals, 1).is_empty());
        }
    }
}
