//! Property-based tests for the sampling policies.

use age_sampling::{
    average_rate, DeviationPolicy, FeedbackPolicy, LinearPolicy, Policy, RandomPolicy,
    UniformPolicy,
};
use proptest::prelude::*;

/// A random row-major sequence plus its feature count.
fn sequence() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (1usize..6, 2usize..120).prop_flat_map(|(features, len)| {
        prop::collection::vec(-100.0f64..100.0, len * features)
            .prop_map(move |values| (values, features))
    })
}

/// Every implemented policy behind one strategy choice.
fn any_policy() -> impl Strategy<Value = Box<dyn Policy>> {
    prop_oneof![
        (0.01f64..=1.0).prop_map(|r| Box::new(UniformPolicy::new(r)) as Box<dyn Policy>),
        (0.01f64..=1.0, any::<u64>())
            .prop_map(|(r, s)| Box::new(RandomPolicy::new(r, s)) as Box<dyn Policy>),
        (0.0f64..200.0).prop_map(|t| Box::new(LinearPolicy::new(t)) as Box<dyn Policy>),
        (0.0f64..200.0).prop_map(|t| Box::new(DeviationPolicy::new(t)) as Box<dyn Policy>),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural invariants every policy must uphold: strictly increasing
    /// in-range indices, never empty on non-empty input, first index 0 for
    /// the walk-based policies.
    #[test]
    fn policies_produce_valid_index_sets((values, features) in sequence(), policy in any_policy()) {
        let len = values.len() / features;
        let indices = policy.sample(&values, features);
        prop_assert!(!indices.is_empty());
        prop_assert!(indices.windows(2).all(|w| w[0] < w[1]), "{}", policy.name());
        prop_assert!(*indices.last().unwrap() < len, "{}", policy.name());
    }

    /// Adaptive walks always collect the first measurement (the server
    /// needs an anchor for interpolation).
    #[test]
    fn adaptive_policies_anchor_at_zero((values, features) in sequence(), thr in 0.0f64..50.0) {
        prop_assert_eq!(LinearPolicy::new(thr).sample(&values, features)[0], 0);
        prop_assert_eq!(DeviationPolicy::new(thr).sample(&values, features)[0], 0);
    }

    /// Uniform's count never depends on the values.
    #[test]
    fn uniform_count_is_value_independent(
        (values, features) in sequence(),
        rate in 0.05f64..=1.0,
        offset in -5.0f64..5.0,
    ) {
        let policy = UniformPolicy::new(rate);
        let shifted: Vec<f64> = values.iter().map(|v| v + offset).collect();
        prop_assert_eq!(
            policy.sample(&values, features).len(),
            policy.sample(&shifted, features).len()
        );
    }

    /// Raising the Linear threshold reduces collection *on average*: the
    /// per-sequence walk is path-dependent (a higher threshold visits
    /// different indices and can occasionally collect a few more), so the
    /// offline fit relies only on ensemble-level coarse monotonicity, which
    /// is what we assert here.
    #[test]
    fn linear_threshold_is_coarsely_monotone_on_average(
        seqs in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 40..120), 8..16),
        t1 in 0.0f64..50.0,
        t2 in 0.0f64..50.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let rate_lo = average_rate(&LinearPolicy::new(lo), &seqs, 1);
        let rate_hi = average_rate(&LinearPolicy::new(hi), &seqs, 1);
        prop_assert!(
            rate_hi <= rate_lo + 0.1,
            "thr {lo}->{hi} raised the mean rate {rate_lo}->{rate_hi}"
        );
    }

    /// Policies are deterministic: same input, same output.
    #[test]
    fn policies_are_deterministic((values, features) in sequence(), policy in any_policy()) {
        prop_assert_eq!(policy.sample(&values, features), policy.sample(&values, features));
    }

    /// A period cap bounds every gap for the walk-based policies.
    #[test]
    fn period_caps_bound_gaps((values, features) in sequence(), cap in 1usize..12) {
        for indices in [
            LinearPolicy::new(1e12).with_max_period(cap).sample(&values, features),
            DeviationPolicy::new(1e12).with_max_period(cap).sample(&values, features),
        ] {
            prop_assert!(indices.windows(2).all(|w| w[1] - w[0] <= cap));
        }
    }

    /// The feedback controller's threshold stays positive and finite under
    /// arbitrary data streams.
    #[test]
    fn feedback_controller_is_stable(
        seqs in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 20..80), 1..20),
        target in 0.05f64..=1.0,
    ) {
        let mut policy = FeedbackPolicy::new(target);
        for seq in &seqs {
            let indices = policy.sample_and_adapt(seq, 1);
            prop_assert!(!indices.is_empty());
            prop_assert!(policy.threshold().is_finite() && policy.threshold() > 0.0);
            prop_assert!(policy.smoothed_rate().is_finite());
        }
    }

    /// `average_rate` is always within [0, 1].
    #[test]
    fn average_rate_is_a_rate((values, features) in sequence(), policy in any_policy()) {
        let seqs = vec![values];
        let rate = average_rate(policy.as_ref(), &seqs, features);
        prop_assert!((0.0..=1.0).contains(&rate), "rate={rate}");
    }
}
