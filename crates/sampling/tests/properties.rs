//! Randomized property tests for the sampling policies, driven by the
//! workspace's deterministic PRNG (no external test deps).

use age_sampling::{
    average_rate, DeviationPolicy, FeedbackPolicy, LinearPolicy, Policy, RandomPolicy,
    UniformPolicy,
};
use age_telemetry::DetRng;

const CASES: usize = 128;

/// A random row-major sequence plus its feature count.
fn sequence(rng: &mut DetRng) -> (Vec<f64>, usize) {
    let features = rng.gen_range(1usize..6);
    let len = rng.gen_range(2usize..120);
    let values = (0..len * features)
        .map(|_| rng.gen_range(-100.0f64..100.0))
        .collect();
    (values, features)
}

/// Every implemented policy behind one random choice.
fn any_policy(rng: &mut DetRng) -> Box<dyn Policy> {
    match rng.gen_range(0u32..4) {
        0 => Box::new(UniformPolicy::new(rng.gen_range(0.01f64..=1.0))),
        1 => Box::new(RandomPolicy::new(
            rng.gen_range(0.01f64..=1.0),
            rng.next_u64(),
        )),
        2 => Box::new(LinearPolicy::new(rng.gen_range(0.0f64..200.0))),
        _ => Box::new(DeviationPolicy::new(rng.gen_range(0.0f64..200.0))),
    }
}

/// Structural invariants every policy must uphold: strictly increasing
/// in-range indices, never empty on non-empty input.
#[test]
fn policies_produce_valid_index_sets() {
    let mut rng = DetRng::seed_from_u64(0x5A1);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let policy = any_policy(&mut rng);
        let len = values.len() / features;
        let indices = policy.sample(&values, features);
        assert!(!indices.is_empty());
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "{}", policy.name());
        assert!(*indices.last().unwrap() < len, "{}", policy.name());
    }
}

/// Adaptive walks always collect the first measurement (the server
/// needs an anchor for interpolation).
#[test]
fn adaptive_policies_anchor_at_zero() {
    let mut rng = DetRng::seed_from_u64(0x5A2);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let thr = rng.gen_range(0.0f64..50.0);
        assert_eq!(LinearPolicy::new(thr).sample(&values, features)[0], 0);
        assert_eq!(DeviationPolicy::new(thr).sample(&values, features)[0], 0);
    }
}

/// Uniform's count never depends on the values.
#[test]
fn uniform_count_is_value_independent() {
    let mut rng = DetRng::seed_from_u64(0x5A3);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let rate = rng.gen_range(0.05f64..=1.0);
        let offset = rng.gen_range(-5.0f64..5.0);
        let policy = UniformPolicy::new(rate);
        let shifted: Vec<f64> = values.iter().map(|v| v + offset).collect();
        assert_eq!(
            policy.sample(&values, features).len(),
            policy.sample(&shifted, features).len()
        );
    }
}

/// Raising the Linear threshold reduces collection *on average*: the
/// per-sequence walk is path-dependent (a higher threshold visits
/// different indices and can occasionally collect a few more), so the
/// offline fit relies only on ensemble-level coarse monotonicity, which
/// is what we assert here.
#[test]
fn linear_threshold_is_coarsely_monotone_on_average() {
    let mut rng = DetRng::seed_from_u64(0x5A4);
    for _ in 0..CASES {
        let n_seqs = rng.gen_range(8usize..16);
        let seqs: Vec<Vec<f64>> = (0..n_seqs)
            .map(|_| {
                let len = rng.gen_range(40usize..120);
                (0..len).map(|_| rng.gen_range(-100.0f64..100.0)).collect()
            })
            .collect();
        let t1 = rng.gen_range(0.0f64..50.0);
        let t2 = rng.gen_range(0.0f64..50.0);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let rate_lo = average_rate(&LinearPolicy::new(lo), &seqs, 1);
        let rate_hi = average_rate(&LinearPolicy::new(hi), &seqs, 1);
        assert!(
            rate_hi <= rate_lo + 0.1,
            "thr {lo}->{hi} raised the mean rate {rate_lo}->{rate_hi}"
        );
    }
}

/// Policies are deterministic: same input, same output.
#[test]
fn policies_are_deterministic() {
    let mut rng = DetRng::seed_from_u64(0x5A5);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let policy = any_policy(&mut rng);
        assert_eq!(
            policy.sample(&values, features),
            policy.sample(&values, features)
        );
    }
}

/// A period cap bounds every gap for the walk-based policies.
#[test]
fn period_caps_bound_gaps() {
    let mut rng = DetRng::seed_from_u64(0x5A6);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let cap = rng.gen_range(1usize..12);
        for indices in [
            LinearPolicy::new(1e12)
                .with_max_period(cap)
                .sample(&values, features),
            DeviationPolicy::new(1e12)
                .with_max_period(cap)
                .sample(&values, features),
        ] {
            assert!(indices.windows(2).all(|w| w[1] - w[0] <= cap));
        }
    }
}

/// The feedback controller's threshold stays positive and finite under
/// arbitrary data streams.
#[test]
fn feedback_controller_is_stable() {
    let mut rng = DetRng::seed_from_u64(0x5A7);
    for _ in 0..CASES {
        let n_seqs = rng.gen_range(1usize..20);
        let seqs: Vec<Vec<f64>> = (0..n_seqs)
            .map(|_| {
                let len = rng.gen_range(20usize..80);
                (0..len).map(|_| rng.gen_range(-50.0f64..50.0)).collect()
            })
            .collect();
        let target = rng.gen_range(0.05f64..=1.0);
        let mut policy = FeedbackPolicy::new(target);
        for seq in &seqs {
            let indices = policy.sample_and_adapt(seq, 1);
            assert!(!indices.is_empty());
            assert!(policy.threshold().is_finite() && policy.threshold() > 0.0);
            assert!(policy.smoothed_rate().is_finite());
        }
    }
}

/// `average_rate` is always within [0, 1].
#[test]
fn average_rate_is_a_rate() {
    let mut rng = DetRng::seed_from_u64(0x5A8);
    for _ in 0..CASES {
        let (values, features) = sequence(&mut rng);
        let policy = any_policy(&mut rng);
        let seqs = vec![values];
        let rate = average_rate(policy.as_ref(), &seqs, features);
        assert!((0.0..=1.0).contains(&rate), "rate={rate}");
    }
}
