//! Experiment drivers regenerating every table and figure of the AGE paper.
//!
//! Each `table*`/`fig*` function runs the corresponding experiment on the
//! synthetic datasets and returns the formatted rows the paper reports.
//! The `repro` binary prints them (`cargo run -p age-bench --release --bin
//! repro -- all`); the Criterion benches time reduced-scale versions.
//!
//! Absolute values differ from the paper (synthetic data, modelled energy),
//! but the qualitative shape — who wins, where padding collapses, which
//! policies leak — reproduces. EXPERIMENTS.md records a measured run.

#[cfg(feature = "telemetry")]
pub mod audit;
pub mod extensions;
pub mod gateway;
pub mod harness;
pub mod report;

pub use extensions::{run_extension, EXTENSIONS};
pub use gateway::{run_gateway, GatewayRun, GatewayRunConfig};
pub use harness::Harness;
pub use report::{run_experiment, Settings, EXPERIMENTS, RATES};
