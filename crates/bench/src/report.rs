//! Table and figure regeneration.

use std::fmt::Write as _;

use age_attack::{most_frequent_rate, nmi, permutation_test, welch_t_test, ClassifierAttack};
use age_core::{AgeEncoder, Batch, Encoder, StandardEncoder};
use age_datasets::{DatasetKind, Scale};
use age_reconstruct::{interpolate, mae, median, quartiles};
use age_sampling::{LinearPolicy, Policy, RandomPolicy};
use age_sim::{run_cells, CipherChoice, Defense, PolicyKind, Runner, SweepCell, SweepOptions};

/// The eight per-dataset energy budgets (§5.1): Uniform sampling's energy
/// at these collection rates.
pub const RATES: [f64; 8] = [0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Experiment ids accepted by the `repro` binary, in paper order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1", "table1", "table3", "table4", "table5", "fig5", "table6", "fig6", "fig7", "table7",
    "table8", "table9", "table10", "overhead",
];

/// Scale and statistical-effort knobs for the experiment drivers.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Dataset scale (sequence counts).
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Attack samples per classifier evaluation (paper: 10,000).
    pub attack_samples: usize,
    /// Boosted trees per attack model (paper: 50).
    pub attack_estimators: usize,
    /// Permutations per NMI significance test (paper: 15,000).
    pub permutations: usize,
    /// Worker threads for dataset/cell parallelism; `0` sizes the pool by
    /// [`age_sim::default_threads`]. Never affects results, only wall-clock.
    pub threads: usize,
    /// Optional drop/corruption rate for the `faults` extension (the
    /// `--faults <rate>` repro knob); `None` uses the extension's default.
    pub fault_rate: Option<f64>,
    /// Optional per-message power-cut rate for the `resets` extension (the
    /// `--power-faults <rate>` repro knob); `None` uses the extension's
    /// default.
    pub power_fault_rate: Option<f64>,
    /// Optional epoch length for the `rekey` extension (the
    /// `--rekey-interval <n>` repro knob): the link rotates its ratchet
    /// every `n` sequence numbers. `None` uses the extension's default.
    pub rekey_interval: Option<u64>,
}

impl Settings {
    /// The harness default: reduced sequence counts, minutes per table.
    pub fn standard() -> Self {
        Settings {
            scale: Scale::Default,
            seed: 2022,
            attack_samples: 1_500,
            attack_estimators: 50,
            permutations: 1_000,
            threads: 0,
            fault_rate: None,
            power_fault_rate: None,
            rekey_interval: None,
        }
    }

    /// Tiny runs for tests and Criterion timing.
    pub fn quick() -> Self {
        Settings {
            scale: Scale::Small,
            seed: 2022,
            attack_samples: 300,
            attack_estimators: 10,
            permutations: 60,
            threads: 0,
            fault_rate: None,
            power_fault_rate: None,
            rekey_interval: None,
        }
    }

    /// Paper-scale statistics (hours).
    pub fn full() -> Self {
        Settings {
            scale: Scale::Full,
            seed: 2022,
            attack_samples: 10_000,
            attack_estimators: 50,
            permutations: 15_000,
            threads: 0,
            fault_rate: None,
            power_fault_rate: None,
            rekey_interval: None,
        }
    }

    fn attack(&self) -> ClassifierAttack {
        ClassifierAttack {
            total_samples: self.attack_samples,
            n_estimators: self.attack_estimators,
            seed: self.seed ^ 0xA77AC4,
            ..Default::default()
        }
    }
}

/// Runs `f` for every dataset on a bounded worker pool (`threads == 0`
/// sizes it by [`age_sim::default_threads`]); each worker owns the
/// `Runner`s it builds and results return in table order regardless of
/// which worker produced them.
pub(crate) fn per_dataset<T, F>(threads: usize, f: F) -> Vec<(DatasetKind, T)>
where
    T: Send,
    F: Fn(DatasetKind) -> T + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};

    let kinds = DatasetKind::all();
    let threads = match threads {
        0 => age_sim::default_threads(),
        n => n,
    }
    .clamp(1, kinds.len());
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<(DatasetKind, T)>> = Vec::new();
    slots.resize_with(kinds.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let f = &f;
                let cursor = &cursor;
                let kinds = &kinds;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&kind) = kinds.get(i) else { break };
                        done.push((i, (kind, f(kind))));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            for (i, out) in handle.join().expect("dataset worker panicked") {
                slots[i] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every dataset index was claimed"))
        .collect()
}

/// Dispatches an experiment id to its driver.
pub fn run_experiment(id: &str, s: &Settings) -> Option<String> {
    match id {
        "fig1" => Some(fig1(s)),
        "table1" => Some(table1(s)),
        "table3" => Some(table3()),
        "table4" => Some(table45(s).0),
        "table5" => Some(table45(s).1),
        "fig5" => Some(fig5(s)),
        "table6" => Some(table6(s)),
        "fig6" => Some(fig6(s)),
        "fig7" => Some(fig7(s)),
        "table7" => Some(table7(s)),
        "table8" => Some(table8(s)),
        "table9" => Some(table910(s).0),
        "table10" => Some(table910(s).1),
        "overhead" => Some(overhead(s)),
        _ => None,
    }
}

/// Figure 1: adaptive vs random sampling of two 25-step accelerometer
/// windows at a 70% budget.
pub fn fig1(s: &Settings) -> String {
    use age_datasets::LabelProfile;
    use age_telemetry::DetRng;

    let mut rng = DetRng::seed_from_u64(s.seed);
    // Walking-like and running-like profiles (the Epilepsy labels).
    let walking = LabelProfile {
        amp: 0.55,
        freq: 0.05,
        noise: 0.04,
        ar: 0.7,
        ..Default::default()
    };
    let running = LabelProfile {
        amp: 2.3,
        freq: 0.27,
        noise: 0.22,
        ar: 0.6,
        ..Default::default()
    };
    let len = 25usize;
    let seq_walk = walking.generate(len, 1, &mut rng);
    let seq_run = running.generate(len, 1, &mut rng);

    let random = RandomPolicy::new(0.7, s.seed);
    // One threshold for both windows, as a deployed policy would have.
    let train: Vec<&[f64]> = vec![&seq_walk, &seq_run];
    let thr = age_sampling::fit_threshold(LinearPolicy::new, &train, 1, 0.64, 6.0, 24);
    let adaptive = LinearPolicy::new(thr);

    let mut out = String::from("Figure 1: sampling two 25-step windows (70% budget)\n");
    for (name, seq) in [("walking", &seq_walk), ("running", &seq_run)] {
        let r_idx = random.sample(seq, 1);
        let a_idx = adaptive.sample(seq, 1);
        let gather = |idx: &[usize]| -> Vec<f64> { idx.iter().map(|&i| seq[i]).collect() };
        let r_err = mae(&interpolate(&r_idx, &gather(&r_idx), len, 1), seq);
        let a_err = mae(&interpolate(&a_idx, &gather(&a_idx), len, 1), seq);
        let _ = writeln!(
            out,
            "  {name:<8} Rand #: {:>2}  Adpt #: {:>2}   Rand MAE: {r_err:.4}  Adpt MAE: {a_err:.4}",
            r_idx.len(),
            a_idx.len(),
        );
    }
    out.push_str("  (the adaptive policy under-samples the calm window and spends\n");
    out.push_str("   the saved budget on the volatile one)\n");
    out
}

/// Table 1: mean (std) message size per event for the three adaptive
/// policies on Epilepsy.
pub fn table1(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let kind = runner.dataset().kind();
    let mut out = String::from("Table 1: message size by event, Epilepsy (mean ± std bytes)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>18} {:>18} {:>18}",
        "Event", "Linear", "Deviation", "Skip RNN"
    );
    let results: Vec<_> = [
        PolicyKind::Linear,
        PolicyKind::Deviation,
        PolicyKind::SkipRnn,
    ]
    .iter()
    .map(|&p| runner.run(p, Defense::Standard, 0.7, CipherChoice::ChaCha20, false))
    .collect();
    let stats: Vec<_> = results.iter().map(|r| r.size_stats_by_label()).collect();
    for label in 0..4 {
        let mut row = format!("  {:<10}", kind.label_name(label));
        for st in &stats {
            match st.iter().find(|&&(l, ..)| l == label) {
                Some(&(_, mean, std, _)) => {
                    let _ = write!(row, " {:>10.1} (±{:>5.1})", mean, std);
                }
                None => {
                    let _ = write!(row, " {:>18}", "-");
                }
            }
        }
        out.push_str(&row);
        out.push('\n');
    }

    // §3.2: pairwise Welch's t-tests between conditional distributions.
    let mut significant = 0usize;
    let mut tested = 0usize;
    for result in &results {
        // Group sizes per label.
        let mut by_label: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for &(l, m) in &result.observations() {
            if l < 4 {
                by_label[l].push(m as f64);
            }
        }
        for i in 0..4 {
            for j in i + 1..4 {
                if let Some(test) = welch_t_test(&by_label[i], &by_label[j]) {
                    tested += 1;
                    if test.significant(0.01) {
                        significant += 1;
                    }
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "  pairwise Welch's t-tests significant at a=0.01: {significant}/{tested}"
    );
    out
}

/// Table 3: dataset properties.
pub fn table3() -> String {
    let mut out = String::from("Table 3: evaluation dataset properties\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>8} {:>8} {:>7} {:>7} {:>12} {:>9}",
        "Dataset", "# Seq", "Seq Len", "# Feat", "Labels", "Bits (Frac)", "Range"
    );
    for kind in DatasetKind::all() {
        let spec = kind.spec();
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>8} {:>7} {:>7} {:>7} ({:>2}) {:>9.1}",
            spec.name,
            spec.num_sequences,
            spec.seq_len,
            spec.features,
            spec.num_labels,
            spec.format.width(),
            spec.format.frac(),
            spec.range
        );
    }
    out
}

const ERROR_CONFIGS: [(PolicyKind, Defense); 6] = [
    (PolicyKind::Linear, Defense::Standard),
    (PolicyKind::Linear, Defense::Padded),
    (PolicyKind::Linear, Defense::Age),
    (PolicyKind::Deviation, Defense::Standard),
    (PolicyKind::Deviation, Defense::Padded),
    (PolicyKind::Deviation, Defense::Age),
];

/// Tables 4 and 5: mean (and deviation-weighted) reconstruction MAE across
/// all budgets, per dataset and configuration.
pub fn table45(s: &Settings) -> (String, String) {
    let header = format!(
        "  {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "Dataset", "Unif.", "Lin Std", "Lin Pad", "Lin AGE", "Dev Std", "Dev Pad", "Dev AGE"
    );
    let mut t4 = String::from("Table 4: arithmetic mean MAE across all budgets\n");
    let mut t5 = String::from("Table 5: deviation-weighted mean MAE across all budgets\n");
    t4.push_str(&header);
    t5.push_str(&header);

    // Per-dataset sweeps run on the worker pool; each dataset's 56-cell
    // grid (8 rates × [Uniform + 6 configs]) goes through the sim's sweep
    // queue and comes back in cell order, then folds into row sums plus
    // the percent-vs-uniform cells for the Overall rows.
    type SweepOut = ([f64; 7], [f64; 7], Vec<Vec<f64>>, Vec<Vec<f64>>);
    let sweeps = per_dataset(s.threads, |kind| -> SweepOut {
        let runner = Runner::new(kind, s.scale, s.seed);
        let mut cells = Vec::with_capacity(RATES.len() * (1 + ERROR_CONFIGS.len()));
        for &rate in &RATES {
            cells.push(SweepCell::new(PolicyKind::Uniform, Defense::Standard, rate));
            for &(p, d) in &ERROR_CONFIGS {
                cells.push(SweepCell::new(p, d, rate));
            }
        }
        // Dataset-level parallelism already fills the pool; one worker per
        // dataset grid avoids oversubscribing the machine.
        let opts = SweepOptions {
            threads: 1,
            ..Default::default()
        };
        let results = run_cells(&runner, &cells, &opts);

        let mut sums4 = [0.0f64; 7];
        let mut sums5 = [0.0f64; 7];
        let mut pct4: Vec<Vec<f64>> = vec![Vec::new(); ERROR_CONFIGS.len()];
        let mut pct5: Vec<Vec<f64>> = vec![Vec::new(); ERROR_CONFIGS.len()];
        for per_rate in results.chunks(1 + ERROR_CONFIGS.len()) {
            let unif = &per_rate[0];
            sums4[0] += unif.mean_mae();
            sums5[0] += unif.weighted_mae();
            for (c, res) in per_rate[1..].iter().enumerate() {
                sums4[c + 1] += res.mean_mae();
                sums5[c + 1] += res.weighted_mae();
                if unif.mean_mae() > 0.0 {
                    pct4[c].push(100.0 * (res.mean_mae() - unif.mean_mae()) / unif.mean_mae());
                }
                if unif.weighted_mae() > 0.0 {
                    pct5[c].push(
                        100.0 * (res.weighted_mae() - unif.weighted_mae()) / unif.weighted_mae(),
                    );
                }
            }
        }
        (sums4, sums5, pct4, pct5)
    });

    let mut pct4: Vec<Vec<f64>> = vec![Vec::new(); ERROR_CONFIGS.len()];
    let mut pct5: Vec<Vec<f64>> = vec![Vec::new(); ERROR_CONFIGS.len()];
    let n = RATES.len() as f64;
    for (kind, (sums4, sums5, p4, p5)) in sweeps {
        let fmt_row = |sums: &[f64; 7]| -> String {
            let mut row = format!("  {:<12}", kind.spec().name);
            for v in sums {
                let _ = write!(row, " {:>9.4}", v / n);
            }
            row.push('\n');
            row
        };
        t4.push_str(&fmt_row(&sums4));
        t5.push_str(&fmt_row(&sums5));
        for (acc, cells) in pct4.iter_mut().zip(p4) {
            acc.extend(cells);
        }
        for (acc, cells) in pct5.iter_mut().zip(p5) {
            acc.extend(cells);
        }
    }

    let overall = |pcts: &[Vec<f64>]| -> String {
        let mut row = format!("  {:<12} {:>9}", "Overall (%)", "0.00");
        for cell in pcts {
            let _ = write!(row, " {:>9.2}", median(cell).unwrap_or(0.0));
        }
        row.push('\n');
        row
    };
    t4.push_str(&overall(&pct4));
    t5.push_str(&overall(&pct5));
    t4.push_str("  (Overall row: median % error relative to Uniform; lower is better)\n");
    t5.push_str("  (Overall row: median % error relative to Uniform; lower is better)\n");
    (t4, t5)
}

/// Figure 5: MAE for each budget on the Activity dataset.
pub fn fig5(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Activity, s.scale, s.seed);
    let mut out = String::from("Figure 5: MAE per energy budget, Activity\n");
    let _ = writeln!(
        out,
        "  {:>10} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "budget", "rate", "Uniform", "Lin Std", "Lin AGE", "Dev Std", "Dev AGE"
    );
    for &rate in &RATES {
        let budget = runner.budget_per_seq(rate, CipherChoice::ChaCha20);
        let maes: Vec<f64> = [
            (PolicyKind::Uniform, Defense::Standard),
            (PolicyKind::Linear, Defense::Standard),
            (PolicyKind::Linear, Defense::Age),
            (PolicyKind::Deviation, Defense::Standard),
            (PolicyKind::Deviation, Defense::Age),
        ]
        .iter()
        .map(|&(p, d)| {
            runner
                .run(p, d, rate, CipherChoice::ChaCha20, true)
                .mean_mae()
        })
        .collect();
        let _ = writeln!(
            out,
            "  {:>7.1}mJ {:>5.0}% {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            budget.0,
            rate * 100.0,
            maes[0],
            maes[1],
            maes[2],
            maes[3],
            maes[4]
        );
    }
    out
}

/// Table 6: median / maximum NMI between message size and event label, plus
/// the fraction of budgets where the permutation test is significant.
pub fn table6(s: &Settings) -> String {
    let mut out = String::from("Table 6: median / max NMI(message size, event) across budgets\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>13} {:>8} {:>13} {:>8} {:>10}",
        "Dataset", "Linear Std", "LinAGE", "Dev Std", "DevAGE", "sig(p<.01)"
    );
    type Table6Row = (Vec<f64>, Vec<f64>, f64, f64, usize, usize);
    let rows = per_dataset(s.threads, |kind| -> Table6Row {
        let runner = Runner::new(kind, s.scale, s.seed);
        let mut lin = Vec::new();
        let mut dev = Vec::new();
        let mut lin_age: f64 = 0.0;
        let mut dev_age: f64 = 0.0;
        let mut significant = 0usize;
        let mut tested = 0usize;
        for &rate in &RATES {
            for (p, store) in [
                (PolicyKind::Linear, &mut lin),
                (PolicyKind::Deviation, &mut dev),
            ] {
                let res = runner.run(p, Defense::Standard, rate, CipherChoice::ChaCha20, false);
                store.push(res.nmi());
                let obs = res.observations();
                let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
                let sizes: Vec<usize> = obs.iter().map(|&(_, m)| m).collect();
                let p_value = permutation_test(&labels, &sizes, s.permutations, s.seed);
                tested += 1;
                if p_value < 0.01 {
                    significant += 1;
                }
            }
            lin_age = lin_age.max(
                runner
                    .run(
                        PolicyKind::Linear,
                        Defense::Age,
                        rate,
                        CipherChoice::ChaCha20,
                        false,
                    )
                    .nmi(),
            );
            dev_age = dev_age.max(
                runner
                    .run(
                        PolicyKind::Deviation,
                        Defense::Age,
                        rate,
                        CipherChoice::ChaCha20,
                        false,
                    )
                    .nmi(),
            );
        }
        (lin, dev, lin_age, dev_age, significant, tested)
    });
    for (kind, (lin, dev, lin_age, dev_age, significant, tested)) in rows {
        let mx = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        let _ = writeln!(
            out,
            "  {:<12} {:>6.2} /{:>5.2} {:>8.2} {:>6.2} /{:>5.2} {:>8.2} {:>9.0}%",
            kind.spec().name,
            median(&lin).unwrap_or(0.0),
            mx(&lin),
            lin_age,
            median(&dev).unwrap_or(0.0),
            mx(&dev),
            dev_age,
            100.0 * significant as f64 / tested as f64,
        );
    }
    out.push_str("  (Padded and AGE show zero NMI: message sizes are constant)\n");
    out
}

/// Figure 6: attacker event-detection accuracy per dataset (median, IQR,
/// and max across budgets).
pub fn fig6(s: &Settings) -> String {
    let attack = s.attack();
    let mut out = String::from("Figure 6: attacker accuracy across budgets (%)\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>22} {:>10} {:>22} {:>10} {:>9}",
        "Dataset", "Linear med[q1,q3]/max", "Lin AGE", "Dev med[q1,q3]/max", "Dev AGE", "baseline"
    );
    let rows = per_dataset(s.threads, |kind| -> (Vec<String>, f64) {
        let runner = Runner::new(kind, s.scale, s.seed);
        let mut cells: Vec<String> = Vec::new();
        let mut baseline = 0.0;
        for (p, d) in [
            (PolicyKind::Linear, Defense::Standard),
            (PolicyKind::Linear, Defense::Age),
            (PolicyKind::Deviation, Defense::Standard),
            (PolicyKind::Deviation, Defense::Age),
        ] {
            let mut accs = Vec::new();
            for &rate in &RATES {
                let res = runner.run(p, d, rate, CipherChoice::ChaCha20, false);
                let outcome = attack.run(&res.observations());
                accs.push(outcome.mean_accuracy() * 100.0);
                baseline = outcome.baseline * 100.0;
            }
            let med = median(&accs).unwrap_or(0.0);
            let (q1, q3) = quartiles(&accs).unwrap_or((0.0, 0.0));
            let mx = accs.iter().cloned().fold(0.0f64, f64::max);
            if d == Defense::Age {
                cells.push(format!("{med:>10.1}"));
            } else {
                cells.push(format!("{med:>6.1} [{q1:>4.1},{q3:>5.1}]/{mx:>5.1}"));
            }
        }
        (cells, baseline)
    });
    for (kind, (cells, baseline)) in rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>22} {} {:>22} {} {:>8.1}%",
            kind.spec().name,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            baseline
        );
    }
    out.push_str("  (AGE columns: median accuracy — equal to the most-frequent-event rate)\n");
    out
}

/// Figure 7: seizure-detection confusion matrices, Linear vs Linear+AGE on
/// Epilepsy at a single budget.
pub fn fig7(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let attack = s.attack();
    let mut out =
        String::from("Figure 7: seizure confusion matrices (Epilepsy, Linear, one budget)\n");
    for defense in [Defense::Standard, Defense::Age] {
        let res = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let outcome = attack.run(&res.observations());
        // Collapse the 4-class confusion into seizure (label 0) vs other.
        let m = &outcome.confusion;
        let mut cells = [[0usize; 2]; 2];
        for truth in 0..m.n_classes() {
            for pred in 0..m.n_classes() {
                cells[usize::from(truth != 0)][usize::from(pred != 0)] += m.get(truth, pred);
            }
        }
        let _ = writeln!(out, "  -- {} --", res.defense);
        let _ = writeln!(out, "     Tr\\Pr  {:>8} {:>8}", "Seizure", "Other");
        let _ = writeln!(out, "     Seizure {:>8} {:>8}", cells[0][0], cells[0][1]);
        let _ = writeln!(out, "     Other   {:>8} {:>8}", cells[1][0], cells[1][1]);
    }
    out.push_str("  (AGE forces every prediction into the most frequent event)\n");
    out
}

/// Table 7: Skip RNN results — average MAE, max NMI, and max attack
/// accuracy with and without AGE.
pub fn table7(s: &Settings) -> String {
    let attack = s.attack();
    let mut out = String::from("Table 7: Skip RNN sampling (rates 30%-100%)\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>9} {:>9} {:>6} {:>6} {:>9} {:>9}",
        "Dataset", "MAE Std", "MAE AGE", "NMI", "NMIAGE", "Atk(%)", "AtkAGE(%)"
    );
    let rows = per_dataset(s.threads, |kind| -> [f64; 6] {
        let runner = Runner::new(kind, s.scale, s.seed);
        let mut mae_std = 0.0;
        let mut mae_age = 0.0;
        let mut nmi_std: f64 = 0.0;
        let mut nmi_age: f64 = 0.0;
        let mut atk_std: f64 = 0.0;
        let mut atk_age: f64 = 0.0;
        for &rate in &RATES {
            let std_res = runner.run(
                PolicyKind::SkipRnn,
                Defense::Standard,
                rate,
                CipherChoice::ChaCha20,
                false,
            );
            let age_res = runner.run(
                PolicyKind::SkipRnn,
                Defense::Age,
                rate,
                CipherChoice::ChaCha20,
                false,
            );
            mae_std += std_res.mean_mae();
            mae_age += age_res.mean_mae();
            nmi_std = nmi_std.max(std_res.nmi());
            nmi_age = nmi_age.max(age_res.nmi());
            atk_std = atk_std.max(attack.run(&std_res.observations()).mean_accuracy() * 100.0);
            atk_age = atk_age.max(attack.run(&age_res.observations()).mean_accuracy() * 100.0);
        }
        let n = RATES.len() as f64;
        [mae_std / n, mae_age / n, nmi_std, nmi_age, atk_std, atk_age]
    });
    for (kind, row) in rows {
        let _ = writeln!(
            out,
            "  {:<12} {:>9.4} {:>9.4} {:>6.2} {:>6.2} {:>9.2} {:>9.2}",
            kind.spec().name,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        );
    }
    out
}

/// Table 8: ablation — median percent error of the Single / Unshifted /
/// Pruned variants relative to full AGE.
pub fn table8(s: &Settings) -> String {
    let variants = [Defense::Single, Defense::Unshifted, Defense::Pruned];
    let per_kind = per_dataset(s.threads, |kind| -> Vec<Vec<Vec<f64>>> {
        let runner = Runner::new(kind, s.scale, s.seed);
        let mut pct: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 2]; variants.len()];
        for &rate in &RATES {
            for (pi, policy) in [PolicyKind::Linear, PolicyKind::Deviation]
                .into_iter()
                .enumerate()
            {
                let age_res = runner.run(policy, Defense::Age, rate, CipherChoice::ChaCha20, true);
                let base = age_res.mean_mae();
                if base <= 0.0 {
                    continue;
                }
                for (vi, &variant) in variants.iter().enumerate() {
                    let res = runner.run(policy, variant, rate, CipherChoice::ChaCha20, true);
                    pct[vi][pi].push(100.0 * (res.mean_mae() - base) / base);
                }
            }
        }
        pct
    });
    let mut pct: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); 2]; variants.len()];
    for (_, kind_pct) in per_kind {
        for (acc_v, cells_v) in pct.iter_mut().zip(kind_pct) {
            for (acc_p, cells_p) in acc_v.iter_mut().zip(cells_v) {
                acc_p.extend(cells_p);
            }
        }
    }
    let mut out = String::from("Table 8: median % error above AGE across all budgets and tasks\n");
    let _ = writeln!(
        out,
        "  {:<12} {:>10} {:>10}",
        "Variant", "Linear", "Deviation"
    );
    for (vi, variant) in variants.iter().enumerate() {
        let _ = writeln!(
            out,
            "  {:<12} {:>9.3}% {:>9.3}%",
            variant.name(),
            median(&pct[vi][0]).unwrap_or(0.0),
            median(&pct[vi][1]).unwrap_or(0.0)
        );
    }
    let _ = writeln!(out, "  {:<12} {:>9.3}% {:>9.3}%", "AGE", 0.0, 0.0);
    out
}

const MCU_RATES: [f64; 3] = [0.4, 0.7, 1.0];
const MCU_SEQS: usize = 75;

/// Tables 9 and 10: the MCU deployment — energy per sequence and MAE over
/// 75 sequences at three budgets, AES-128 block cipher.
pub fn table910(s: &Settings) -> (String, String) {
    let mut t9 = String::from("Table 9: average energy per sequence (mJ), 75 sequences, AES-128\n");
    let mut t10 = String::from("Table 10: MAE, 75 sequences, AES-128\n");
    let configs: [(&str, PolicyKind, Defense); 7] = [
        ("Uniform", PolicyKind::Uniform, Defense::Standard),
        ("Linear", PolicyKind::Linear, Defense::Standard),
        ("  Padded", PolicyKind::Linear, Defense::Padded),
        ("  AGE", PolicyKind::Linear, Defense::Age),
        ("Deviation", PolicyKind::Deviation, Defense::Standard),
        ("  Padded", PolicyKind::Deviation, Defense::Padded),
        ("  AGE", PolicyKind::Deviation, Defense::Age),
    ];
    for kind in [DatasetKind::Activity, DatasetKind::Tiselac] {
        let runner = Runner::new(kind, s.scale, s.seed);
        let budgets: Vec<String> = MCU_RATES
            .iter()
            .map(|&r| {
                format!(
                    "{:.3}J",
                    runner.budget_per_seq(r, CipherChoice::Aes128Cbc).0 * MCU_SEQS as f64 / 1000.0
                )
            })
            .collect();
        for out in [&mut t9, &mut t10] {
            let _ = writeln!(
                out,
                "  -- {} (total budgets: {} / {} / {}) --",
                kind.spec().name,
                budgets[0],
                budgets[1],
                budgets[2]
            );
        }
        // Uniform's per-sequence energies per rate, for the §5.7 one-sided
        // Welch violation check.
        let uniform_energy: Vec<Vec<f64>> = MCU_RATES
            .iter()
            .map(|&rate| {
                runner
                    .run_limited(
                        PolicyKind::Uniform,
                        Defense::Standard,
                        rate,
                        CipherChoice::Aes128Cbc,
                        true,
                        Some(MCU_SEQS),
                    )
                    .records
                    .iter()
                    .filter(|r| !r.violated)
                    .map(|r| r.energy_mj)
                    .collect()
            })
            .collect();
        let mut flagged: Vec<String> = Vec::new();
        for (name, p, d) in configs {
            let mut row9 = format!("  {name:<10}");
            let mut row10 = format!("  {name:<10}");
            for (ri, &rate) in MCU_RATES.iter().enumerate() {
                let res =
                    runner.run_limited(p, d, rate, CipherChoice::Aes128Cbc, true, Some(MCU_SEQS));
                let _ = write!(row9, " {:>8.2}", res.mean_energy().0);
                let _ = write!(row10, " {:>8.4}", res.mean_mae());
                // §5.7: flag energy significantly above Uniform's (one-sided,
                // a = 0.05).
                let energies: Vec<f64> = res
                    .records
                    .iter()
                    .filter(|r| !r.violated)
                    .map(|r| r.energy_mj)
                    .collect();
                if let Some(test) = welch_t_test(&energies, &uniform_energy[ri]) {
                    if test.p_greater() < 0.05 {
                        flagged.push(format!("{} @{:.0}%", name.trim(), rate * 100.0));
                    }
                }
            }
            t9.push_str(&row9);
            t9.push('\n');
            t10.push_str(&row10);
            t10.push('\n');
        }
        let _ = writeln!(
            t9,
            "  over-budget vs Uniform (one-sided Welch, a=0.05): {}",
            if flagged.is_empty() {
                "none".to_string()
            } else {
                flagged.join(", ")
            }
        );
    }
    (t9, t10)
}

/// §5.8: encoding-compute overhead vs communication savings.
pub fn overhead(s: &Settings) -> String {
    use std::time::Instant;

    let runner = Runner::new(DatasetKind::Activity, s.scale, s.seed);
    let cfg = *runner.batch_config();
    let seq = &runner.dataset().sequences()[0];
    let d = cfg.features();
    let batch = Batch::new(
        (0..cfg.max_len()).collect(),
        seq.values[..cfg.max_len() * d].to_vec(),
    )
    .expect("full batch is valid");
    let age = AgeEncoder::new(300);
    let standard = StandardEncoder;

    let time_encode = |f: &dyn Fn() -> usize| -> f64 {
        let reps = 400usize;
        let start = Instant::now();
        let mut sink = 0usize;
        for _ in 0..reps {
            sink = sink.wrapping_add(f());
        }
        let elapsed = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        assert!(sink > 0);
        elapsed
    };
    let age_us = time_encode(&|| age.encode(&batch, &cfg).expect("feasible").len());
    let std_us = time_encode(&|| standard.encode(&batch, &cfg).expect("feasible").len());

    let model = runner.energy_model();
    let values = cfg.max_len() * d;
    let age_mj = model.encode_age_per_value.0 * values as f64;
    let std_mj = model.encode_standard_per_value.0 * values as f64;
    let saving = model.comm_per_byte.0 * 30.0;

    let mut out = String::from("Overhead analysis (§5.8), full Activity sequence\n");
    let _ = writeln!(
        out,
        "  AGE encode:      {age_us:>8.1} µs  ({age_mj:.4} mJ modelled, ×4 charged in sim)"
    );
    let _ = writeln!(
        out,
        "  standard encode: {std_us:>8.1} µs  ({std_mj:.4} mJ modelled)"
    );
    let _ = writeln!(
        out,
        "  30-byte communication reduction saves {saving:.4} mJ per batch"
    );
    let _ = writeln!(
        out,
        "  net effect: {:.4} mJ saved per batch even at the 4x compute factor",
        saving - (age_mj * model.age_compute_factor - std_mj)
    );
    out
}

/// Smoke check used by tests: the most-frequent-event rate of a label set.
pub fn baseline_rate(labels: &[usize]) -> f64 {
    most_frequent_rate(labels)
}

/// Re-export for the benches: quick NMI on raw observations.
pub fn observations_nmi(observations: &[(usize, usize)]) -> f64 {
    let labels: Vec<usize> = observations.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = observations.iter().map(|&(_, m)| m).collect();
    nmi(&labels, &sizes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_dispatches() {
        let s = Settings::quick();
        // Only check the cheap ones end-to-end; the heavy ones are covered
        // by the repro binary and benches.
        for id in ["fig1", "table3"] {
            let out = run_experiment(id, &s).expect("known id");
            assert!(out.len() > 40, "{id} produced: {out}");
        }
        assert!(run_experiment("nope", &s).is_none());
        for id in EXPERIMENTS {
            assert!(EXPERIMENTS.contains(id));
        }
    }

    #[test]
    fn fig1_shows_adaptive_budget_shifting() {
        let out = fig1(&Settings::quick());
        assert!(out.contains("walking"));
        assert!(out.contains("running"));
    }

    #[test]
    fn table1_reports_all_events() {
        let out = table1(&Settings::quick());
        for event in ["seizure", "walking", "running", "sawing"] {
            assert!(out.contains(event), "missing {event} in:\n{out}");
        }
    }

    #[test]
    fn table3_matches_spec_shapes() {
        let out = table3();
        assert!(out.contains("Tiselac"));
        assert!(out.contains("11119"));
        assert!(out.contains("1250"));
    }

    #[test]
    fn overhead_reports_net_savings() {
        let out = overhead(&Settings::quick());
        assert!(out.contains("net effect"));
    }
}
