//! Extension experiments beyond the paper's tables: robustness probes and
//! the paper's "mentioned but rejected" design alternatives.

use std::fmt::Write as _;

use age_attack::{AttackModel, ClassifierAttack, TimingAttack};
use age_core::{target, AgeEncoder, Batch, Encoder};
use age_datasets::DatasetKind;
use age_energy::{Battery, MilliJoules};
use age_sampling::FeedbackPolicy;
use age_sim::{
    rekey_scenario, run_cells, run_multi_event, CipherChoice, Defense, FaultPlan, FaultSetup,
    PolicyKind, PowerFaults, Runner, SweepCell, SweepOptions,
};

use crate::report::Settings;

/// Extension experiment ids (run via `repro -- <id>` like the paper ones).
pub const EXTENSIONS: &[&str] = &[
    "attackers",
    "timing",
    "faults",
    "resets",
    "rekey",
    "multievent",
    "refine",
    "feedback",
    "lifetime",
    "compression",
    "utility",
    "importance",
    "harvest",
    "design",
];

/// Dispatches an extension id.
pub fn run_extension(id: &str, s: &Settings) -> Option<String> {
    match id {
        "attackers" => Some(attackers(s)),
        "timing" => Some(timing(s)),
        "faults" => Some(faults(s)),
        "resets" => Some(resets(s)),
        "rekey" => Some(rekey(s)),
        "multievent" => Some(multievent(s)),
        "refine" => Some(refine(s)),
        "feedback" => Some(feedback(s)),
        "lifetime" => Some(lifetime(s)),
        "compression" => Some(compression(s)),
        "utility" => Some(utility(s)),
        "importance" => Some(importance(s)),
        "harvest" => Some(harvest(s)),
        "design" => Some(design(s)),
        _ => None,
    }
}

/// Three attacker model families against the same observations: the paper
/// calls its AdaBoost result a lower bound; AGE must defeat all of them.
pub fn attackers(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let mut out = String::from("Extension: attacker model families (Epilepsy, Linear, 70% rate)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>12} {:>12} {:>10}",
        "Model", "Std acc(%)", "AGE acc(%)", "baseline"
    );
    for model in [
        AttackModel::AdaBoost,
        AttackModel::Knn,
        AttackModel::Logistic,
    ] {
        let attack = ClassifierAttack {
            total_samples: s.attack_samples,
            n_estimators: s.attack_estimators,
            model,
            seed: s.seed,
            ..Default::default()
        };
        let std_res = runner.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let age_res = runner.run(
            PolicyKind::Linear,
            Defense::Age,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let std_out = attack.run(&std_res.observations());
        let age_out = attack.run(&age_res.observations());
        let _ = writeln!(
            out,
            "  {:<10} {:>12.1} {:>12.1} {:>9.1}%",
            model.name(),
            std_out.mean_accuracy() * 100.0,
            age_out.mean_accuracy() * 100.0,
            age_out.baseline * 100.0
        );
    }
    out.push_str("  (every model family breaks the standard policy; none beats the\n");
    out.push_str("   most-frequent-event baseline against AGE)\n");
    out
}

/// The timing-only eavesdropper: an attacker who cannot demodulate frames
/// — no sizes, no payloads — and observes only *when* energy appears on
/// the air (the virtual clock's send stamps). Std's variable-length frames
/// stretch the schedule through radio serialization, so the size leak
/// survives as a timing leak; constant-size defenses tick a metronome.
pub fn timing(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let mut out =
        String::from("Extension: timing-only attacker (virtual clock, Epilepsy, Linear, 70%)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>7} {:>12} {:>12} {:>10}",
        "Defense", "gaps", "timing NMI", "attack (%)", "baseline"
    );
    for defense in [Defense::Standard, Defense::Padded, Defense::Age] {
        let res = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let sends: Vec<(usize, u64)> = res
            .records
            .iter()
            .filter(|r| !r.violated && r.sent_at_us > 0)
            .map(|r| (r.label, r.sent_at_us))
            .collect();
        let attack = TimingAttack {
            classifier: ClassifierAttack {
                total_samples: s.attack_samples,
                n_estimators: s.attack_estimators,
                seed: s.seed,
                ..Default::default()
            },
        };
        let outcome = attack.run(&sends);
        let _ = writeln!(
            out,
            "  {:<10} {:>7} {:>12.3} {:>12.1} {:>9.1}%",
            defense.name(),
            res.timing_observations().len(),
            res.timing_nmi(),
            outcome.mean_accuracy() * 100.0,
            outcome.baseline * 100.0
        );
    }
    out.push_str("  (inter-transmission gaps inherit the size channel through radio\n");
    out.push_str("   serialization time; fixed-size defenses flatten both at once)\n");
    out
}

/// Dropped packets (§4.5), now through the real transport: frames cross a
/// deterministic fault channel (drops + bit corruption) with retransmission
/// and backoff; delivered AGE messages stay constant-size and independent
/// faults leak (almost) nothing. `--faults <rate>` overrides the 20% rate.
pub fn faults(s: &Settings) -> String {
    let rate = s.fault_rate.unwrap_or(0.2);
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let mut out = format!(
        "Extension: unreliable link ({:.0}% drops + {:.0}% corruption, AEAD, 4 attempts)\n",
        rate * 100.0,
        rate * 100.0
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>16} {:>9} {:>9}",
        "Defense", "delivered NMI", "drop-flag NMI", "lost", "retries"
    );
    let plan = FaultPlan {
        drop_rate: rate,
        corrupt_rate: rate,
        seed: s.seed,
        ..FaultPlan::NONE
    };
    for defense in [Defense::Standard, Defense::Age] {
        let result = runner.run_with_transport(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20Poly1305,
            false,
            None,
            Some(age_sim::FaultSetup::new(plan)),
        );
        let run = age_sim::FaultyRun {
            delivered: result
                .records
                .iter()
                .filter(|r| !r.violated && !r.lost)
                .map(|r| (r.label, r.message_bytes))
                .collect(),
            dropped_labels: result
                .records
                .iter()
                .filter(|r| !r.violated && r.lost)
                .map(|r| r.label)
                .collect(),
        };
        let retried = result.transport.map_or(0, |t| t.link.frames_retried);
        let _ = writeln!(
            out,
            "  {:<10} {:>14.3} {:>16.3} {:>9} {:>9}",
            defense.name(),
            run.delivered_nmi(),
            run.drop_indicator_nmi(),
            run.dropped_labels.len(),
            retried
        );
    }
    out.push_str("  (faults independent of events add no usable signal — §4.5's\n");
    out.push_str("   assumption, now measured over the retrying transport)\n");
    out
}

/// Device resets: brownouts cut power mid-run — sometimes between the NVM
/// journal write and the radio — and the sequence-reservation journal must
/// keep every nonce unique across reboots. Sweeps defenses through
/// `run_cells` (so `--threads` applies), reports recovery counters, and
/// audits every sealed frame for (epoch, sequence) reuse.
/// `--power-faults <rate>` overrides the 5% cut rate.
pub fn resets(s: &Settings) -> String {
    let rate = s.power_fault_rate.unwrap_or(0.05);
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let power = PowerFaults::at_rate(rate, s.seed);
    let mut out = format!(
        "Extension: device resets ({:.1}% power-cut rate, journal block {}, torn NVM, AEAD)\n",
        rate * 100.0,
        power.block
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>8} {:>8} {:>5} {:>10} {:>11}",
        "Defense", "reboots", "flushes", "skipped", "lost", "delivered", "fixed-size"
    );
    let cells: Vec<SweepCell> = [Defense::Standard, Defense::Padded, Defense::Age]
        .iter()
        .map(|&defense| {
            let mut cell = SweepCell::new(PolicyKind::Linear, defense, 0.7);
            cell.cipher = CipherChoice::ChaCha20Poly1305;
            cell.enforce_budget = false;
            cell.faults = Some(
                FaultSetup::new(FaultPlan {
                    drop_rate: 0.05,
                    corrupt_rate: 0.02,
                    seed: s.seed,
                    ..FaultPlan::NONE
                })
                .with_power(power),
            );
            cell
        })
        .collect();

    // A worker thread sink would shadow repro's process-global sinks (the
    // run-wide nonce auditor among them), so the extension only audits
    // privately when nothing global is listening.
    #[cfg(feature = "telemetry")]
    let sink = if age_telemetry::active() {
        None
    } else {
        Some(std::sync::Arc::new(age_telemetry::NonceAuditSink::new()))
    };
    #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
    let mut options = SweepOptions {
        threads: s.threads,
        ..Default::default()
    };
    #[cfg(feature = "telemetry")]
    if let Some(sink) = &sink {
        options.sink = Some(sink.clone());
    }
    let results = run_cells(&runner, &cells, &options);
    for result in &results {
        let t = result.transport.unwrap_or_default();
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>8} {:>8} {:>5} {:>10} {:>11}",
            result.defense,
            t.link.sensor_reboots,
            t.link.journal_flushes,
            t.link.sequences_skipped,
            t.link.messages_lost,
            t.link.frames_delivered,
            if t.channel.wire_lengths_constant() {
                "yes"
            } else {
                "no (leaks)"
            }
        );
    }
    #[cfg(feature = "telemetry")]
    match sink {
        Some(sink) => {
            let audit = sink.take();
            let _ = writeln!(
                out,
                "  nonce audit: {} sealed frames, {} distinct (epoch, seq) pairs, {} reused",
                audit.frames(),
                audit.distinct(),
                audit.violations().len()
            );
            if audit.is_clean() {
                out.push_str("  (every reboot resumed above the journal's high-water mark —\n");
                out.push_str("   no (key, nonce) pair was ever used twice)\n");
            } else {
                out.push_str("  NONCE AUDIT FAILED — reboot recovery reused a (key, nonce) pair\n");
            }
        }
        None => {
            out.push_str("  (sealed frames streamed to the process-wide nonce auditor;\n");
            out.push_str("   the run fails at exit if any (key, nonce) pair repeated)\n");
        }
    }
    out
}

/// Epoch rekeying under fire: the link ratchets to a fresh key every N
/// sequence numbers while the channel drops and corrupts frames and
/// brownouts cut power (torn NVM writes included). The receiver must
/// follow every rotation, no (key, nonce) pair may repeat across epochs,
/// and the wire must stay byte-constant through every boundary.
/// `--rekey-interval <n>` overrides the 16-sequence epoch;
/// `--power-faults <rate>` overrides the 5% cut rate.
pub fn rekey(s: &Settings) -> String {
    let interval = s.rekey_interval.unwrap_or(16);
    let rate = s.power_fault_rate.unwrap_or(0.05);
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let mut out = format!(
        "Extension: epoch rekeying under fire (interval {interval}, {:.1}% power cuts, \
         5% drops + 2% corruption, AEAD)\n",
        rate * 100.0
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>9} {:>9} {:>8} {:>10} {:>11}",
        "Defense", "rotations", "deferred", "reboots", "delivered", "fixed-size"
    );
    let cells: Vec<SweepCell> = [Defense::Standard, Defense::Age]
        .iter()
        .map(|&defense| {
            let mut cell = SweepCell::new(PolicyKind::Linear, defense, 0.7);
            cell.cipher = CipherChoice::ChaCha20Poly1305;
            cell.enforce_budget = false;
            cell.faults = Some(rekey_scenario(interval, rate, s.seed));
            cell
        })
        .collect();

    // Like `resets`: audit privately only when repro's process-global
    // nonce auditor is not already listening.
    #[cfg(feature = "telemetry")]
    let sink = if age_telemetry::active() {
        None
    } else {
        Some(std::sync::Arc::new(age_telemetry::NonceAuditSink::new()))
    };
    #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
    let mut options = SweepOptions {
        threads: s.threads,
        ..Default::default()
    };
    #[cfg(feature = "telemetry")]
    if let Some(sink) = &sink {
        options.sink = Some(sink.clone());
    }
    let results = run_cells(&runner, &cells, &options);
    for result in &results {
        let t = result.transport.unwrap_or_default();
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>9} {:>8} {:>10} {:>11}",
            result.defense,
            t.link.rotations,
            t.link.rotations_deferred,
            t.link.sensor_reboots,
            t.link.frames_delivered,
            if t.channel.wire_lengths_constant() {
                "yes"
            } else {
                "no"
            }
        );
    }
    #[cfg(feature = "telemetry")]
    match sink {
        Some(sink) => {
            let audit = sink.take();
            let _ = writeln!(
                out,
                "  nonce audit: {} sealed frames over {} key epochs, {} reused",
                audit.frames(),
                audit.epochs(),
                audit.violations().len()
            );
            if audit.is_clean() {
                out.push_str("  (every rotation moved to a fresh key with the counter intact —\n");
                out.push_str("   no (key, nonce) pair was ever used twice)\n");
            } else {
                out.push_str("  NONCE AUDIT FAILED — a rotation reused a (key, nonce) pair\n");
            }
        }
        None => {
            out.push_str("  (sealed frames streamed to the process-wide nonce auditor;\n");
            out.push_str("   the run fails at exit if any (key, nonce) pair repeated)\n");
        }
    }
    out
}

/// Batches spanning several events (§3.1): AGE stays fixed-length.
pub fn multievent(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let mut out = String::from("Extension: multi-event batches\n");
    let _ = writeln!(
        out,
        "  {:<8} {:<10} {:>7} {:>13}",
        "events", "Defense", "NMI", "fixed-length"
    );
    for events in [1usize, 2, 3] {
        for defense in [Defense::Standard, Defense::Age] {
            let run = run_multi_event(
                &runner,
                PolicyKind::Linear,
                defense,
                0.7,
                CipherChoice::ChaCha20,
                events,
            );
            let _ = writeln!(
                out,
                "  {:<8} {:<10} {:>7.3} {:>13}",
                events,
                defense.name(),
                run.nmi(),
                run.fixed_length
            );
        }
    }
    out
}

/// The refinements the paper mentions and rejects (§4.2/§4.3): measure the
/// error benefit and the compute cost, reproducing the "not worth it" call.
pub fn refine(s: &Settings) -> String {
    use std::time::Instant;
    let runner = Runner::new(DatasetKind::Activity, s.scale, s.seed);
    let cfg = *runner.batch_config();
    let d = cfg.features();
    let policy = runner.policy(PolicyKind::Deviation, 0.9);
    // A target far below the policy's rate so pruning and merging both fire.
    let m_b = target::target_bytes(&cfg, 0.3);
    let plain = target::plaintext_budget(
        target::reduced_target_bytes(m_b),
        age_crypto::CipherKind::Stream,
        12,
        16,
    );
    let base = AgeEncoder::new(plain);
    let refined = AgeEncoder::new(plain).with_refinement(true);

    let mut err = [0.0f64; 2];
    let mut time_us = [0.0f64; 2];
    let mut batches = 0usize;
    for seq in runner.test_sequences() {
        let indices = policy.sample(&seq.values, d);
        let mut values = Vec::with_capacity(indices.len() * d);
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
        }
        let batch = Batch::new(indices, values).expect("policy output is valid");
        for (i, enc) in [&base, &refined].into_iter().enumerate() {
            let start = Instant::now();
            let msg = enc.encode(&batch, &cfg).expect("feasible target");
            time_us[i] += start.elapsed().as_secs_f64() * 1e6;
            let decoded = enc.decode(&msg, &cfg).expect("own message");
            let recon =
                age_reconstruct::interpolate(decoded.indices(), decoded.values(), cfg.max_len(), d);
            err[i] += age_reconstruct::mae(&recon, &seq.values);
        }
        batches += 1;
    }
    let n = batches as f64;
    let mut out = String::from("Extension: paper-rejected refinements (§4.2/§4.3 rescoring)\n");
    let _ = writeln!(
        out,
        "  {:<22} {:>10} {:>14}",
        "Encoder", "MAE", "encode µs/batch"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10.4} {:>14.1}",
        "AGE (one-shot)",
        err[0] / n,
        time_us[0] / n
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>10.4} {:>14.1}",
        "AGE (rescoring)",
        err[1] / n,
        time_us[1] / n
    );
    let _ = writeln!(
        out,
        "  error delta {:+.2}%, compute delta {:+.0}% — the paper's call stands",
        100.0 * (err[1] - err[0]) / err[0].max(1e-12),
        100.0 * (time_us[1] - time_us[0]) / time_us[0].max(1e-12),
    );
    out
}

/// Online budget feedback: rate convergence without offline fitting, and
/// the leakage it still produces (hence still needing AGE).
pub fn feedback(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let spec = runner.dataset().spec();
    let d = spec.features;
    let mut out = String::from("Extension: online budget-feedback sampling (no offline fit)\n");
    let _ = writeln!(
        out,
        "  {:>7} {:>14} {:>10}",
        "target", "realized rate", "NMI(Std)"
    );
    for target_rate in [0.3, 0.5, 0.7] {
        let mut policy = FeedbackPolicy::new(target_rate);
        // Warm-up on the training split.
        for seq in &runner.dataset().sequences()[..8] {
            let _ = policy.sample_and_adapt(&seq.values, d);
        }
        let mut collected = 0usize;
        let mut total = 0usize;
        let mut observations = Vec::new();
        for seq in runner.test_sequences() {
            let indices = policy.sample_and_adapt(&seq.values, d);
            collected += indices.len();
            total += spec.seq_len;
            let cfg = runner.batch_config();
            observations.push((seq.label, cfg.standard_message_bytes(indices.len())));
        }
        let labels: Vec<usize> = observations.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = observations.iter().map(|&(_, m)| m).collect();
        let _ = writeln!(
            out,
            "  {:>6.0}% {:>13.1}% {:>10.3}",
            target_rate * 100.0,
            100.0 * collected as f64 / total as f64,
            age_attack::nmi(&labels, &sizes)
        );
    }
    out.push_str("  (the controller hits the budget online, but its data-dependent\n");
    out.push_str("   rates leak like any adaptive policy — AGE still required)\n");
    out
}

/// Battery lifetime per defense: AGE's smaller messages extend deployment
/// life beyond both the standard policy and padding.
pub fn lifetime(s: &Settings) -> String {
    let runner = Runner::new(DatasetKind::Activity, s.scale, s.seed);
    let mut out = String::from("Extension: battery lifetime (230 mAh @ 3 V, one batch / 6 s)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>14}",
        "Defense", "mJ/sequence", "lifetime (h)"
    );
    for defense in [Defense::Standard, Defense::Padded, Defense::Age] {
        let res = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let cost = res.mean_energy();
        let battery = Battery::from_mah(230.0, 3.0);
        let hours = battery.lifetime_hours(MilliJoules(cost.0), 6.0);
        let _ = writeln!(
            out,
            "  {:<10} {:>14.2} {:>14.1}",
            defense.name(),
            cost.0,
            hours
        );
    }
    out.push_str("  (ZebraNet-style requirement: ≥ 72 h — all pass here, but AGE buys\n");
    out.push_str("   the longest deployment at equal security to padding)\n");
    out
}

/// The §7 pitfall measured: lossless compression leaks through message
/// sizes even with *non-adaptive* Uniform sampling, because compression
/// ratios are content-dependent.
pub fn compression(s: &Settings) -> String {
    use age_core::{DeltaCodec, StandardEncoder};
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let cfg = *runner.batch_config();
    let d = cfg.features();
    let policy = runner.policy(PolicyKind::Uniform, 0.7);
    let cipher = runner.cipher(CipherChoice::ChaCha20);

    let mut raw_obs = Vec::new();
    let mut compressed_obs = Vec::new();
    for (i, seq) in runner.test_sequences().iter().enumerate() {
        let indices = policy.sample(&seq.values, d);
        let mut values = Vec::with_capacity(indices.len() * d);
        for &t in &indices {
            values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
        }
        let batch = Batch::new(indices, values).expect("policy output is valid");
        let raw = cipher.seal(
            i as u64,
            &StandardEncoder.encode(&batch, &cfg).expect("fits"),
        );
        let packed = cipher.seal(i as u64, &DeltaCodec.encode(&batch, &cfg).expect("fits"));
        raw_obs.push((seq.label, raw.len()));
        compressed_obs.push((seq.label, packed.len()));
    }
    let nmi_of = |obs: &[(usize, usize)]| {
        let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = obs.iter().map(|&(_, m)| m).collect();
        age_attack::nmi(&labels, &sizes)
    };
    let mean = |obs: &[(usize, usize)]| {
        obs.iter().map(|&(_, m)| m as f64).sum::<f64>() / obs.len().max(1) as f64
    };
    let mut out =
        String::from("Extension: lossless compression leaks even under Uniform sampling (§7)\n");
    let _ = writeln!(
        out,
        "  {:<22} {:>11} {:>8}",
        "Encoding", "mean bytes", "NMI"
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>11.1} {:>8.3}",
        "raw (Uniform)",
        mean(&raw_obs),
        nmi_of(&raw_obs)
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>11.1} {:>8.3}",
        "delta-compressed",
        mean(&compressed_obs),
        nmi_of(&compressed_obs)
    );
    out.push_str("  (content-dependent coding re-opens the size side-channel that\n");
    out.push_str("   Uniform sampling had closed — the CRIME effect on telemetry)\n");
    out
}

/// Downstream utility: the server's whole point is event detection from
/// reconstructed sequences. Train a classifier on true sequences, evaluate
/// it on each defense's reconstructions — AGE must preserve the accuracy,
/// because its ~1% extra MAE is useless if inference collapses.
pub fn utility(s: &Settings) -> String {
    use age_attack::Knn;
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let spec = runner.dataset().spec();
    let d = spec.features;

    // Sequence features the server's event detector uses: per-feature mean,
    // standard deviation, and mean absolute step.
    let featurize = |values: &[f64]| -> Vec<f64> {
        let len = values.len() / d;
        let mut out = Vec::with_capacity(3 * d);
        for f in 0..d {
            let col: Vec<f64> = (0..len).map(|t| values[t * d + f]).collect();
            let mean = col.iter().sum::<f64>() / len as f64;
            let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / len as f64;
            let step =
                col.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (len - 1).max(1) as f64;
            out.extend([mean, var.sqrt(), step]);
        }
        out
    };

    // Train on the (true) training split.
    let train_x: Vec<Vec<f64>> = runner.dataset().sequences()
        [..runner.dataset().sequences().len() / 3]
        .iter()
        .map(|seq| featurize(&seq.values))
        .collect();
    let train_y: Vec<usize> = runner.dataset().sequences()
        [..runner.dataset().sequences().len() / 3]
        .iter()
        .map(|seq| seq.label)
        .collect();
    let model = Knn::fit(&train_x, &train_y, 5);

    let mut out = String::from("Extension: server-side event detection on reconstructed data\n");
    let _ = writeln!(out, "  {:<12} {:>14}", "Input", "accuracy (%)");
    // Ground truth ceiling.
    let truth_acc = {
        let mut correct = 0usize;
        for seq in runner.test_sequences() {
            if model.predict(&featurize(&seq.values)) == seq.label {
                correct += 1;
            }
        }
        100.0 * correct as f64 / runner.test_sequences().len() as f64
    };
    let _ = writeln!(out, "  {:<12} {:>14.1}", "true data", truth_acc);

    for defense in [Defense::Standard, Defense::Age] {
        let result = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        // Re-run the pipeline to get reconstructions (the runner reports
        // errors, so rebuild reconstructions from the decoded batches).
        let cfg = runner.batch_config();
        let cipher = runner.cipher(CipherChoice::ChaCha20);
        let policy = runner.policy(PolicyKind::Linear, 0.7);
        let encoder: Box<dyn Encoder> = match defense {
            Defense::Standard => Box::new(age_core::StandardEncoder),
            _ => {
                let m_b = target::target_bytes(cfg, 0.7);
                let plain = target::plaintext_budget(
                    target::reduced_target_bytes(m_b),
                    cipher.kind(),
                    cipher.overhead(),
                    16,
                )
                .max(AgeEncoder::min_target_bytes(cfg));
                Box::new(AgeEncoder::new(plain))
            }
        };
        let mut correct = 0usize;
        for seq in runner.test_sequences() {
            let indices = policy.sample(&seq.values, d);
            let mut values = Vec::with_capacity(indices.len() * d);
            for &t in &indices {
                values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
            }
            let batch = Batch::new(indices, values).expect("policy output is valid");
            let plaintext = encoder.encode(&batch, cfg).expect("feasible target");
            let decoded = encoder.decode(&plaintext, cfg).expect("own message");
            let recon =
                age_reconstruct::interpolate(decoded.indices(), decoded.values(), spec.seq_len, d);
            if model.predict(&featurize(&recon)) == seq.label {
                correct += 1;
            }
        }
        let acc = 100.0 * correct as f64 / runner.test_sequences().len() as f64;
        let _ = writeln!(out, "  {:<12} {:>14.1}", defense.name(), acc);
        let _ = result; // keep the fitted threshold cached
    }
    out.push_str("  (AGE's lossy encoding must not dent the server's event detector —\n");
    out.push_str("   the utility the sensor exists to provide)\n");
    out
}

/// Which message-size statistic the attacker leans on: permutation feature
/// importance of the §5.4 features (average, median, std, IQR).
pub fn importance(s: &Settings) -> String {
    use age_attack::permutation_importance;
    let runner = Runner::new(DatasetKind::Epilepsy, s.scale, s.seed);
    let attack = ClassifierAttack {
        total_samples: s.attack_samples,
        n_estimators: s.attack_estimators,
        seed: s.seed,
        ..Default::default()
    };
    let mut out =
        String::from("Extension: attack feature importance (Epilepsy, Linear, accuracy drop)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>9} {:>9} {:>9} {:>9}",
        "Defense", "average", "median", "std", "IQR"
    );
    for defense in [Defense::Standard, Defense::Age] {
        let res = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let samples = attack.build_samples(&res.observations());
        let imp = permutation_importance(&samples, &attack, 3);
        let _ = writeln!(
            out,
            "  {:<10} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            defense.name(),
            imp[0],
            imp[1],
            imp[2],
            imp[3]
        );
    }
    out.push_str("  (the mean and the spread of the size distribution both carry\n");
    out.push_str("   the leak; with AGE every column is worthless)\n");
    out
}

/// Intermittent power (§3.3): a solar-harvesting satellite in a 60%-sun
/// orbit. Cheaper messages let AGE downlink more batches per orbit than
/// either the standard policy or padding.
pub fn harvest(s: &Settings) -> String {
    use age_energy::{EncoderCost, Harvester};
    let runner = Runner::new(DatasetKind::Tiselac, s.scale, s.seed);
    let model = *runner.energy_model();
    let mut out =
        String::from("Extension: energy harvesting (Tiselac downlink, 60% sunlight orbit)\n");
    let _ = writeln!(
        out,
        "  {:<10} {:>10} {:>12} {:>10}",
        "Defense", "batches", "skipped", "NMI"
    );
    for defense in [Defense::Standard, Defense::Padded, Defense::Age] {
        let res = runner.run(
            PolicyKind::Linear,
            defense,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        // Replay the per-sequence costs against a harvested store; income
        // is set just below the standard policy's mean cost so eclipse
        // periods force hard choices.
        let mut harvester = Harvester::new(MilliJoules(200.0), MilliJoules(38.0));
        let mut sent = 0usize;
        let mut skipped = 0usize;
        let mut observations = Vec::new();
        for (i, record) in res.records.iter().enumerate() {
            harvester.step(i % 5 < 3); // 60% illumination duty cycle
            let cost = model.sequence_cost(
                record.collected,
                record.collected * runner.dataset().spec().features,
                record.message_bytes,
                if defense == Defense::Age {
                    EncoderCost::Age
                } else {
                    EncoderCost::Standard
                },
            );
            if harvester.try_spend(cost) {
                sent += 1;
                observations.push((record.label, record.message_bytes));
            } else {
                skipped += 1;
            }
        }
        let labels: Vec<usize> = observations.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = observations.iter().map(|&(_, m)| m).collect();
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>12} {:>10.3}",
            defense.name(),
            sent,
            skipped,
            age_attack::nmi(&labels, &sizes)
        );
    }
    out.push_str("  (AGE downlinks the most batches per orbit and still leaks nothing)\n");
    out
}

/// Ablations of this implementation's own design choices (the deviations
/// DESIGN.md documents): the group-split utilization pass, the small-batch
/// cap on the §4.5 target reduction, and the offline-fit safety margin.
pub fn design(s: &Settings) -> String {
    use age_core::inspect_message;
    let mut out = String::from("Extension: ablations of this implementation's design choices\n");

    // --- (a) group-split pass: padding fraction and MAE on Activity. ---
    {
        let runner = Runner::new(DatasetKind::Activity, s.scale, s.seed);
        let cfg = *runner.batch_config();
        let d = cfg.features();
        let policy = runner.policy(PolicyKind::Linear, 0.9);
        let m_b = target::target_bytes(&cfg, 0.5);
        let plain = target::plaintext_budget(
            target::reduced_target_bytes(m_b),
            age_crypto::CipherKind::Stream,
            12,
            16,
        );
        let _ = writeln!(
            out,
            "  (a) group-split utilization pass (Activity, 50% target):"
        );
        let _ = writeln!(
            out,
            "      {:<12} {:>10} {:>12}",
            "variant", "MAE", "padding (%)"
        );
        for (name, split) in [("with split", true), ("without", false)] {
            let enc = AgeEncoder::new(plain).with_group_splitting(split);
            let mut err = 0.0;
            let mut pad = 0.0;
            let mut n = 0usize;
            for seq in runner.test_sequences() {
                let indices = policy.sample(&seq.values, d);
                let mut values = Vec::with_capacity(indices.len() * d);
                for &t in &indices {
                    values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
                }
                let batch = Batch::new(indices, values).expect("policy output is valid");
                let msg = enc.encode(&batch, &cfg).expect("feasible target");
                pad += inspect_message(&msg, &cfg)
                    .expect("own message")
                    .padding_fraction();
                let decoded = enc.decode(&msg, &cfg).expect("own message");
                let recon = age_reconstruct::interpolate(
                    decoded.indices(),
                    decoded.values(),
                    cfg.max_len(),
                    d,
                );
                err += age_reconstruct::mae(&recon, &seq.values);
                n += 1;
            }
            let _ = writeln!(
                out,
                "      {:<12} {:>10.4} {:>12.2}",
                name,
                err / n as f64,
                100.0 * pad / n as f64
            );
        }
    }

    // --- (b) reduction cap on a small-batch dataset (Pavement). ---
    {
        let runner = Runner::new(DatasetKind::Pavement, s.scale, s.seed);
        let cfg = *runner.batch_config();
        let d = cfg.features();
        let policy = runner.policy(PolicyKind::Linear, 0.5);
        let m_b = target::target_bytes(&cfg, 0.3);
        let _ = writeln!(
            out,
            "  (b) §4.5 reduction cap (Pavement, M_B = {m_b} bytes):"
        );
        let _ = writeln!(
            out,
            "      {:<18} {:>8} {:>10}",
            "schedule", "target", "MAE"
        );
        for (name, reduced) in [
            ("capped (M_B/8)", target::reduced_target_bytes(m_b)),
            ("paper-literal", target::reduced_target_bytes_uncapped(m_b)),
        ] {
            let plain = target::plaintext_budget(reduced, age_crypto::CipherKind::Stream, 12, 16)
                .max(AgeEncoder::min_target_bytes(&cfg));
            let enc = AgeEncoder::new(plain);
            let mut err = 0.0;
            let mut n = 0usize;
            for seq in runner.test_sequences() {
                let indices = policy.sample(&seq.values, d);
                let mut values = Vec::with_capacity(indices.len() * d);
                for &t in &indices {
                    values.extend_from_slice(&seq.values[t * d..(t + 1) * d]);
                }
                let batch = Batch::new(indices, values).expect("policy output is valid");
                let msg = enc.encode(&batch, &cfg).expect("feasible target");
                let decoded = enc.decode(&msg, &cfg).expect("own message");
                let recon = age_reconstruct::interpolate(
                    decoded.indices(),
                    decoded.values(),
                    cfg.max_len(),
                    d,
                );
                err += age_reconstruct::mae(&recon, &seq.values);
                n += 1;
            }
            let _ = writeln!(
                out,
                "      {:<18} {:>8} {:>10.4}",
                name,
                plain,
                err / n as f64
            );
        }
    }

    // --- (c) offline-fit safety margin (Password, budget enforced). ---
    {
        let _ = writeln!(
            out,
            "  (c) offline-fit margin (Password, Linear, 50% budget):"
        );
        let _ = writeln!(
            out,
            "      {:<10} {:>12} {:>10}",
            "margin", "violations", "MAE"
        );
        for margin in [1.0, Runner::FIT_MARGIN] {
            let runner =
                Runner::new(DatasetKind::Password, s.scale, s.seed).with_fit_margin(margin);
            let res = runner.run(
                PolicyKind::Linear,
                Defense::Standard,
                0.5,
                CipherChoice::ChaCha20,
                true,
            );
            let _ = writeln!(
                out,
                "      {:<10.2} {:>7}/{:<4} {:>10.4}",
                margin,
                res.violations(),
                res.records.len(),
                res.mean_mae()
            );
        }
    }
    out.push_str("  (each choice buys measurable error/robustness; see DESIGN.md)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_ids_dispatch() {
        let s = Settings::quick();
        assert!(run_extension("nope", &s).is_none());
        let out = run_extension("lifetime", &s).expect("known id");
        assert!(out.contains("lifetime"));
    }

    #[test]
    fn feedback_extension_reports_rates() {
        let out = feedback(&Settings::quick());
        assert!(out.contains("realized rate"));
    }

    #[test]
    fn timing_extension_reports_the_gap_channel() {
        let out = timing(&Settings::quick());
        assert!(out.contains("timing NMI"));
        assert!(out.contains("Std") && out.contains("AGE"));
    }
}
