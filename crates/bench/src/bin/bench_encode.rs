//! Encode-path, seal-path, and sweep benchmark, written to
//! `BENCH_encode.json` (schema `age-bench/encode-v3`).
//!
//! Measures, for every encoder: mean wall-clock per `encode_into` call on a
//! full 50×6 batch, and heap traffic per call in steady state (which the
//! `EncodeScratch` reuse design holds at zero — the same property
//! `crates/core/tests/alloc.rs` enforces). A per-stage breakdown isolates
//! the three hot phases of a fixed-length message: lane quantization,
//! word-level bit packing, and AEAD sealing. Every cipher's `seal_into`
//! throughput over AGE-sized frames is reported as `sealed_mb_per_s`. Then
//! the parallel experiment sweep ([`age_sim::run_cells`]) is timed over a
//! 72-cell grid at 1, 2, and `available_parallelism` threads, checking the
//! results stay byte-identical across thread counts.
//!
//! ```text
//! cargo run -p age-bench --release --bin bench_encode
//! cargo run -p age-bench --release --bin bench_encode -- --check
//! ```
//!
//! `--check` is the CI perf-sanity mode: it re-measures the AGE encoder
//! and fails (non-zero exit) if steady state allocates at all or if
//! `ns_per_batch` regressed to more than 2× the committed
//! `BENCH_encode.json` figure. It writes nothing.

use std::fmt::Write as _;
use std::time::Instant;

use age_core::{
    AgeEncoder, Batch, BatchConfig, DeltaCodec, EncodeScratch, Encoder, PaddedEncoder,
    PrunedEncoder, SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_crypto::{AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};
use age_datasets::{DatasetKind, Scale};
use age_fixed::{BitWriter, Format};
use age_sim::{default_threads, run_cells, Defense, PolicyKind, Runner, SweepCell, SweepOptions};
use age_telemetry::alloc::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const SWEEP_RATES: [f64; 4] = [0.3, 0.5, 0.7, 1.0];
const SWEEP_POLICIES: [PolicyKind; 3] = [
    PolicyKind::Uniform,
    PolicyKind::Linear,
    PolicyKind::Deviation,
];
const SWEEP_DEFENSES: [Defense; 6] = [
    Defense::Standard,
    Defense::Padded,
    Defense::Age,
    Defense::Single,
    Defense::Unshifted,
    Defense::Pruned,
];

/// AGE's target message size throughout the workspace benchmarks.
const TARGET_BYTES: usize = 220;

struct Measured {
    ns_per_iter: f64,
    allocs_per_iter: f64,
    bytes_per_iter: f64,
}

/// Times one closure in steady state: warm-up sizes the loop, then a timed
/// run counts wall-clock and heap traffic per iteration.
fn time_steady(mut work: impl FnMut()) -> Measured {
    let warm_start = Instant::now();
    let warm_iters = 200u64;
    for _ in 0..warm_iters {
        work();
    }
    let est_ns = (warm_start.elapsed().as_nanos() as u64 / warm_iters).max(1);
    let iters = (300_000_000 / est_ns).clamp(100, 2_000_000);

    let before = alloc::snapshot();
    let start = Instant::now();
    for _ in 0..iters {
        work();
    }
    let elapsed = start.elapsed();
    let heap = alloc::snapshot().since(before);

    Measured {
        ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
        allocs_per_iter: heap.allocations as f64 / iters as f64,
        bytes_per_iter: heap.bytes as f64 / iters as f64,
    }
}

struct EncoderStats {
    name: &'static str,
    ns_per_batch: f64,
    allocs_per_batch: f64,
    bytes_allocated_per_batch: f64,
}

/// Times steady-state `encode_into` and its per-batch heap traffic.
fn measure(encoder: &dyn Encoder, batch: &Batch, cfg: &BatchConfig) -> EncoderStats {
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::new();
    let m = time_steady(|| {
        encoder
            .encode_into(batch, cfg, &mut scratch, &mut out)
            .expect("benchmark encoders are feasible");
        std::hint::black_box(out.len());
    });
    EncoderStats {
        name: encoder.name(),
        ns_per_batch: m.ns_per_iter,
        allocs_per_batch: m.allocs_per_iter,
        bytes_allocated_per_batch: m.bytes_per_iter,
    }
}

struct StageStats {
    quantize_ns: f64,
    pack_ns: f64,
    seal_ns: f64,
}

/// Isolates the three phases of producing one on-air AGE message: lane
/// quantization of the full batch, word-level packing of the quantized
/// fields, and AEAD sealing of a target-sized plaintext.
fn measure_stages(batch: &Batch, cfg: &BatchConfig) -> StageStats {
    let fmt = cfg.format();

    let mut lane: Vec<u64> = Vec::new();
    let quantize = time_steady(|| {
        fmt.quantize_bits_slice(batch.values(), &mut lane);
        std::hint::black_box(lane.len());
    });

    fmt.quantize_bits_slice(batch.values(), &mut lane);
    let width = fmt.width();
    let mut buf: Vec<u8> = Vec::new();
    let pack = time_steady(|| {
        let mut w = BitWriter::from_vec(std::mem::take(&mut buf));
        w.write_fields(&lane, width);
        buf = w.into_bytes();
        std::hint::black_box(buf.len());
    });

    let cipher = ChaCha20Poly1305::new([0x42; 32]);
    let plaintext = vec![0x5Au8; TARGET_BYTES];
    let mut frame = Vec::new();
    let mut sequence = 0u64;
    let seal = time_steady(|| {
        sequence += 1;
        cipher.seal_into(sequence, &plaintext, &mut frame);
        std::hint::black_box(frame.len());
    });

    StageStats {
        quantize_ns: quantize.ns_per_iter,
        pack_ns: pack.ns_per_iter,
        seal_ns: seal.ns_per_iter,
    }
}

/// Steady-state cost of one epoch-ratchet step (the HKDF-style derive a
/// rekeying sensor pays at every rotation boundary).
fn measure_kdf() -> f64 {
    let mut ratchet = age_crypto::kdf::EpochRatchet::new([0x42; 32]);
    time_steady(|| {
        ratchet.advance();
        std::hint::black_box(ratchet.key()[0]);
    })
    .ns_per_iter
}

struct CipherStats {
    name: &'static str,
    sealed_mb_per_s: f64,
    ns_per_seal: f64,
    allocs_per_seal: f64,
}

/// Steady-state `seal_into` throughput on AGE-sized plaintexts: on-air
/// megabytes produced per second, with the heap quiet after warm-up.
fn measure_cipher(name: &'static str, cipher: &dyn Cipher) -> CipherStats {
    let plaintext = vec![0x5Au8; TARGET_BYTES];
    let frame_len = cipher.message_len(TARGET_BYTES);
    let mut frame = Vec::new();
    let mut sequence = 0u64;
    let m = time_steady(|| {
        sequence += 1;
        cipher.seal_into(sequence, &plaintext, &mut frame);
        std::hint::black_box(frame.len());
    });
    CipherStats {
        name,
        sealed_mb_per_s: frame_len as f64 * 1e9 / m.ns_per_iter / 1e6,
        ns_per_seal: m.ns_per_iter,
        allocs_per_seal: m.allocs_per_iter,
    }
}

fn bench_batch(cfg: &BatchConfig) -> Batch {
    let d = cfg.features();
    let k = cfg.max_len();
    Batch::new(
        (0..k).collect(),
        (0..k * d)
            .map(|i| {
                let x = i as f64;
                (x * 0.17).sin() * (1.0 + (i % 7) as f64) - 2.5
            })
            .collect(),
    )
    .expect("ramp batch is valid")
}

fn sweep_grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &policy in &SWEEP_POLICIES {
        for &defense in &SWEEP_DEFENSES {
            for &rate in &SWEEP_RATES {
                cells.push(SweepCell::new(policy, defense, rate));
            }
        }
    }
    cells
}

/// Pulls `"ns_per_batch"` for the `"AGE"` entry out of the committed
/// report without a JSON parser (workspace policy: no external deps).
fn committed_age_ns(report: &str) -> Option<f64> {
    let entry = report
        .split('{')
        .find(|s| s.contains("\"name\": \"AGE\""))?;
    let tail = entry.split("\"ns_per_batch\":").nth(1)?;
    tail.split(&[',', '}'][..]).next()?.trim().parse().ok()
}

/// CI perf-sanity gate: re-measure the AGE encoder and compare against the
/// committed report. Exits non-zero on steady-state allocation or a >2×
/// `ns_per_batch` regression.
fn check_mode() -> ! {
    let report = std::fs::read_to_string("BENCH_encode.json")
        .expect("--check needs a committed BENCH_encode.json in the working directory");
    let committed_ns =
        committed_age_ns(&report).expect("committed BENCH_encode.json carries an AGE ns_per_batch");

    let cfg =
        BatchConfig::new(50, 6, Format::new(16, 13).expect("valid format")).expect("valid config");
    let batch = bench_batch(&cfg);
    let age = measure(&AgeEncoder::new(TARGET_BYTES), &batch, &cfg);

    println!(
        "perf check: AGE {:.0} ns/batch (committed {:.0}, limit {:.0}), {:.4} allocs/batch",
        age.ns_per_batch,
        committed_ns,
        committed_ns * 2.0,
        age.allocs_per_batch
    );
    let mut failed = false;
    if age.allocs_per_batch > 0.0 {
        eprintln!(
            "FAIL: AGE encode_into allocates in steady state ({:.4} allocs/batch)",
            age.allocs_per_batch
        );
        failed = true;
    }
    if age.ns_per_batch > committed_ns * 2.0 {
        eprintln!(
            "FAIL: AGE ns_per_batch {:.0} exceeds 2x the committed {:.0}",
            age.ns_per_batch, committed_ns
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("perf check passed");
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        check_mode();
    }

    let cfg =
        BatchConfig::new(50, 6, Format::new(16, 13).expect("valid format")).expect("valid config");
    let d = cfg.features();
    let k = cfg.max_len();
    let batch = bench_batch(&cfg);

    println!("encode path, full {k}x{d} batch:");
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::new(AgeEncoder::new(TARGET_BYTES)),
        Box::new(StandardEncoder),
        Box::new(PaddedEncoder::for_config(&cfg)),
        Box::new(SingleEncoder::new(TARGET_BYTES)),
        Box::new(UnshiftedEncoder::new(TARGET_BYTES)),
        Box::new(PrunedEncoder::new(TARGET_BYTES)),
        Box::new(DeltaCodec),
    ];
    let stats: Vec<EncoderStats> = encoders
        .iter()
        .map(|e| {
            let st = measure(e.as_ref(), &batch, &cfg);
            println!(
                "  {:<10} {:>10.0} ns/batch  {:>6.2} allocs/batch  {:>8.1} B/batch",
                st.name, st.ns_per_batch, st.allocs_per_batch, st.bytes_allocated_per_batch
            );
            st
        })
        .collect();

    let stages = measure_stages(&batch, &cfg);
    println!(
        "stages ({}B target): quantize {:.0} ns, pack {:.0} ns, seal {:.0} ns",
        TARGET_BYTES, stages.quantize_ns, stages.pack_ns, stages.seal_ns
    );
    let kdf_ns = measure_kdf();
    println!("kdf: {kdf_ns:.0} ns per epoch-ratchet derive");

    println!("seal path, {TARGET_BYTES}B plaintext:");
    let ciphers: Vec<(&'static str, Box<dyn Cipher>)> = vec![
        ("ChaCha20", Box::new(ChaCha20::new([0x42; 32]))),
        (
            "ChaCha20Poly1305",
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
        ),
        ("AesCtr", Box::new(AesCtr::new([0x42; 16]))),
        ("AesCbc", Box::new(AesCbc::new([0x42; 16]))),
    ];
    let cipher_stats: Vec<CipherStats> = ciphers
        .iter()
        .map(|(name, c)| {
            let st = measure_cipher(name, c.as_ref());
            println!(
                "  {:<17} {:>8.1} MB/s sealed  {:>8.0} ns/seal  {:>6.2} allocs/seal",
                st.name, st.sealed_mb_per_s, st.ns_per_seal, st.allocs_per_seal
            );
            st
        })
        .collect();

    // Sweep wall-clock. Thresholds are fitted once up front so every thread
    // count times the same (cached) work.
    let available = default_threads();
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 2022);
    let cells = sweep_grid();
    for &policy in &SWEEP_POLICIES {
        for &rate in &SWEEP_RATES {
            let _ = runner.policy(policy, rate);
        }
    }

    let mut counts = vec![1usize, 2, available];
    counts.sort_unstable();
    counts.dedup();
    println!(
        "\nsweep, {} cells (Epilepsy/Small), available_parallelism={available}:",
        cells.len()
    );
    let mut timings: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<String> = None;
    let mut deterministic = true;
    for &threads in &counts {
        let opts = SweepOptions {
            threads,
            ..Default::default()
        };
        let start = Instant::now();
        let results = run_cells(&runner, &cells, &opts);
        let seconds = start.elapsed().as_secs_f64();
        let fingerprint = format!("{results:?}");
        match &reference {
            None => reference = Some(fingerprint),
            Some(expected) => deterministic &= *expected == fingerprint,
        }
        println!("  {threads} thread(s): {seconds:.2}s");
        timings.push((threads, seconds));
    }
    println!("  deterministic across thread counts: {deterministic}");

    // Hand-rolled JSON (workspace policy: no external deps).
    let mut json = String::from("{\n  \"schema\": \"age-bench/encode-v3\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"max_len\": {k}, \"features\": {d}, \"width\": {}, \"target_bytes\": {TARGET_BYTES}}},",
        cfg.format().width()
    );
    json.push_str("  \"encoders\": [\n");
    for (i, st) in stats.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_batch\": {:.1}, \"allocs_per_batch\": {:.4}, \"bytes_allocated_per_batch\": {:.1}}}",
            st.name, st.ns_per_batch, st.allocs_per_batch, st.bytes_allocated_per_batch
        );
        json.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"stages\": {{\"quantize_ns_per_batch\": {:.1}, \"pack_ns_per_batch\": {:.1}, \"seal_ns_per_message\": {:.1}}},",
        stages.quantize_ns, stages.pack_ns, stages.seal_ns
    );
    let _ = writeln!(json, "  \"kdf\": {{\"kdf_ns_per_derive\": {kdf_ns:.1}}},");
    json.push_str("  \"ciphers\": [\n");
    for (i, st) in cipher_stats.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"sealed_mb_per_s\": {:.1}, \"ns_per_seal\": {:.1}, \"allocs_per_seal\": {:.4}}}",
            st.name, st.sealed_mb_per_s, st.ns_per_seal, st.allocs_per_seal
        );
        json.push_str(if i + 1 < cipher_stats.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"dataset\": \"Epilepsy\", \"scale\": \"Small\", \"cells\": {}, \"available_parallelism\": {available},",
        cells.len()
    );
    json.push_str("    \"threads\": [\n");
    let base = timings[0].1;
    for (i, &(threads, seconds)) in timings.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"threads\": {threads}, \"seconds\": {seconds:.3}, \"speedup_vs_1\": {:.2}}}",
            base / seconds.max(1e-9)
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "    ],\n    \"deterministic_across_threads\": {deterministic}\n  }}\n}}"
    );

    let path = "BENCH_encode.json";
    std::fs::write(path, &json).expect("can write benchmark report");
    println!("\n[written to {path}]");
    assert!(deterministic, "sweep results diverged across thread counts");
}
