//! Encode-path and sweep benchmark, written to `BENCH_encode.json`.
//!
//! Measures, for every encoder: mean wall-clock per `encode_into` call on a
//! full 50×6 batch, and heap traffic per call in steady state (which the
//! `EncodeScratch` reuse design holds at zero — the same property
//! `crates/core/tests/alloc.rs` enforces). Then times the parallel
//! experiment sweep ([`age_sim::run_cells`]) over a 72-cell grid at 1, 2,
//! and `available_parallelism` threads, checking the results stay
//! byte-identical across thread counts.
//!
//! ```text
//! cargo run -p age-bench --release --bin bench_encode
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use age_core::{
    AgeEncoder, Batch, BatchConfig, DeltaCodec, EncodeScratch, Encoder, PaddedEncoder,
    PrunedEncoder, SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_datasets::{DatasetKind, Scale};
use age_fixed::Format;
use age_sim::{default_threads, run_cells, Defense, PolicyKind, Runner, SweepCell, SweepOptions};
use age_telemetry::alloc::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const SWEEP_RATES: [f64; 4] = [0.3, 0.5, 0.7, 1.0];
const SWEEP_POLICIES: [PolicyKind; 3] = [
    PolicyKind::Uniform,
    PolicyKind::Linear,
    PolicyKind::Deviation,
];
const SWEEP_DEFENSES: [Defense; 6] = [
    Defense::Standard,
    Defense::Padded,
    Defense::Age,
    Defense::Single,
    Defense::Unshifted,
    Defense::Pruned,
];

struct EncoderStats {
    name: &'static str,
    ns_per_batch: f64,
    allocs_per_batch: f64,
    bytes_allocated_per_batch: f64,
}

/// Times steady-state `encode_into` and its per-batch heap traffic.
fn measure(encoder: &dyn Encoder, batch: &Batch, cfg: &BatchConfig) -> EncoderStats {
    let mut scratch = EncodeScratch::new();
    let mut out = Vec::new();
    let mut run = |iters: u64| {
        for _ in 0..iters {
            encoder
                .encode_into(batch, cfg, &mut scratch, &mut out)
                .expect("benchmark encoders are feasible");
            std::hint::black_box(out.len());
        }
    };

    // Warm-up: grows scratch to its high-water mark and sizes the timing loop.
    let warm_start = Instant::now();
    let warm_iters = 200u64;
    run(warm_iters);
    let est_ns = (warm_start.elapsed().as_nanos() as u64 / warm_iters).max(1);
    let iters = (300_000_000 / est_ns).clamp(100, 2_000_000);

    let before = alloc::snapshot();
    let start = Instant::now();
    run(iters);
    let elapsed = start.elapsed();
    let heap = alloc::snapshot().since(before);

    EncoderStats {
        name: encoder.name(),
        ns_per_batch: elapsed.as_nanos() as f64 / iters as f64,
        allocs_per_batch: heap.allocations as f64 / iters as f64,
        bytes_allocated_per_batch: heap.bytes as f64 / iters as f64,
    }
}

fn sweep_grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &policy in &SWEEP_POLICIES {
        for &defense in &SWEEP_DEFENSES {
            for &rate in &SWEEP_RATES {
                cells.push(SweepCell::new(policy, defense, rate));
            }
        }
    }
    cells
}

fn main() {
    let cfg =
        BatchConfig::new(50, 6, Format::new(16, 13).expect("valid format")).expect("valid config");
    let d = cfg.features();
    let k = cfg.max_len();
    let batch = Batch::new(
        (0..k).collect(),
        (0..k * d)
            .map(|i| {
                let x = i as f64;
                (x * 0.17).sin() * (1.0 + (i % 7) as f64) - 2.5
            })
            .collect(),
    )
    .expect("ramp batch is valid");

    println!("encode path, full {k}x{d} batch:");
    let encoders: Vec<Box<dyn Encoder>> = vec![
        Box::new(AgeEncoder::new(220)),
        Box::new(StandardEncoder),
        Box::new(PaddedEncoder::for_config(&cfg)),
        Box::new(SingleEncoder::new(220)),
        Box::new(UnshiftedEncoder::new(220)),
        Box::new(PrunedEncoder::new(220)),
        Box::new(DeltaCodec),
    ];
    let stats: Vec<EncoderStats> = encoders
        .iter()
        .map(|e| {
            let st = measure(e.as_ref(), &batch, &cfg);
            println!(
                "  {:<10} {:>10.0} ns/batch  {:>6.2} allocs/batch  {:>8.1} B/batch",
                st.name, st.ns_per_batch, st.allocs_per_batch, st.bytes_allocated_per_batch
            );
            st
        })
        .collect();

    // Sweep wall-clock. Thresholds are fitted once up front so every thread
    // count times the same (cached) work.
    let available = default_threads();
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 2022);
    let cells = sweep_grid();
    for &policy in &SWEEP_POLICIES {
        for &rate in &SWEEP_RATES {
            let _ = runner.policy(policy, rate);
        }
    }

    let mut counts = vec![1usize, 2, available];
    counts.sort_unstable();
    counts.dedup();
    println!(
        "\nsweep, {} cells (Epilepsy/Small), available_parallelism={available}:",
        cells.len()
    );
    let mut timings: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<String> = None;
    let mut deterministic = true;
    for &threads in &counts {
        let opts = SweepOptions {
            threads,
            ..Default::default()
        };
        let start = Instant::now();
        let results = run_cells(&runner, &cells, &opts);
        let seconds = start.elapsed().as_secs_f64();
        let fingerprint = format!("{results:?}");
        match &reference {
            None => reference = Some(fingerprint),
            Some(expected) => deterministic &= *expected == fingerprint,
        }
        println!("  {threads} thread(s): {seconds:.2}s");
        timings.push((threads, seconds));
    }
    println!("  deterministic across thread counts: {deterministic}");

    // Hand-rolled JSON (workspace policy: no external deps).
    let mut json = String::from("{\n  \"schema\": \"age-bench/encode-v1\",\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"max_len\": {k}, \"features\": {d}, \"width\": {}}},",
        cfg.format().width()
    );
    json.push_str("  \"encoders\": [\n");
    for (i, st) in stats.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"ns_per_batch\": {:.1}, \"allocs_per_batch\": {:.4}, \"bytes_allocated_per_batch\": {:.1}}}",
            st.name, st.ns_per_batch, st.allocs_per_batch, st.bytes_allocated_per_batch
        );
        json.push_str(if i + 1 < stats.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"dataset\": \"Epilepsy\", \"scale\": \"Small\", \"cells\": {}, \"available_parallelism\": {available},",
        cells.len()
    );
    json.push_str("    \"threads\": [\n");
    let base = timings[0].1;
    for (i, &(threads, seconds)) in timings.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"threads\": {threads}, \"seconds\": {seconds:.3}, \"speedup_vs_1\": {:.2}}}",
            base / seconds.max(1e-9)
        );
        json.push_str(if i + 1 < timings.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(
        json,
        "    ],\n    \"deterministic_across_threads\": {deterministic}\n  }}\n}}"
    );

    let path = "BENCH_encode.json";
    std::fs::write(path, &json).expect("can write benchmark report");
    println!("\n[written to {path}]");
    assert!(deterministic, "sweep results diverged across thread counts");
}
