//! Fleet-gateway throughput benchmark, written to `BENCH_gateway.json`
//! (schema `age-bench/gateway-v1`).
//!
//! Synthesizes a seeded fleet (default 100k sensors × 4 frames), drains
//! it through the sharded gateway, and reports sustained ingest
//! throughput, p50/p99 per-frame ingest latency, per-shard session
//! balance, and steady-state heap traffic on the single-shard ingest
//! path (which must be zero — the property
//! `crates/gateway/tests/alloc.rs` enforces per frame class).
//!
//! ```text
//! cargo run -p age-bench --release --bin bench_gateway
//! cargo run -p age-bench --release --bin bench_gateway -- --sensors 200000 --shards 8
//! cargo run -p age-bench --release --bin bench_gateway -- --check
//! ```
//!
//! `--check` is the CI perf-sanity mode: a reduced fleet re-measure that
//! fails (non-zero exit) if steady-state ingest allocates at all, if
//! `ns_per_frame` regressed to more than 3× the committed
//! `BENCH_gateway.json` figure, if arming the streaming leakage
//! monitor costs more than 10% per frame, or if staggered epoch
//! rekeying costs more than 10% per frame (the absolute gate is a
//! min-of-3; the overhead gates interleave paired rounds and take a
//! low-quartile ratio to survive noisy CI boxes). It writes nothing.

use std::fmt::Write as _;
use std::time::Instant;

use age_bench::{run_gateway, GatewayRunConfig};
use age_gateway::Gateway;
use age_sim::fleet::{fleet_gateway_config, generate, FleetConfig};
use age_telemetry::alloc::{self, CountingAllocator};
#[cfg(feature = "telemetry")]
use age_telemetry::MonitorConfig;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const SCHEMA: &str = "age-bench/gateway-v1";

fn die(message: &str) -> ! {
    eprintln!("{message}");
    std::process::exit(2);
}

/// Steady-state single-thread ingest: ns/frame and allocs/frame, with
/// the shard warm. Thread-local alloc counters require this to run on
/// one thread, so it uses `ingest` rather than `run`. The trace must
/// be deep (many frames per sensor) and the warm-up long: a session
/// only stops allocating once it has seen every (event, size) and
/// (event, gap) histogram key at least once, and events are drawn
/// randomly per frame.
fn measure_steady(
    sensors: u64,
    frames_per_sensor: usize,
    seed: u64,
    monitored: bool,
    rekey_interval: Option<u64>,
) -> (f64, f64) {
    let fleet = FleetConfig {
        frames_per_sensor,
        rekey_interval,
        ..FleetConfig::new(sensors, seed)
    };
    let traffic = generate(&fleet);
    #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
    let mut gateway_config = fleet_gateway_config(&fleet, 1);
    #[cfg(feature = "telemetry")]
    if monitored {
        gateway_config.monitor = Some(MonitorConfig {
            window_us: 500_000,
            ..MonitorConfig::default()
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = monitored;
    let mut gateway = Gateway::new(gateway_config);
    for sensor_id in 0..fleet.sensors {
        // cohort_of is always in range for the two fleet cohorts.
        let _ = gateway.provision(sensor_id, fleet.cohort_of(sensor_id));
    }
    let split = traffic.frames.len() * 3 / 4;
    for frame in &traffic.frames[..split] {
        let _ = gateway.ingest(frame);
    }
    let steady = &traffic.frames[split..];
    let before = alloc::snapshot();
    let start = Instant::now();
    for frame in steady {
        let _ = gateway.ingest(frame);
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let delta = alloc::snapshot().since(before);
    (
        elapsed / steady.len() as f64,
        delta.allocations as f64 / steady.len() as f64,
    )
}

/// Min-of-N steady-state measure: the minimum ns/frame over `rounds`
/// runs (robust to scheduler noise) and the *maximum* allocs/frame (an
/// allocation on any round is a real regression).
fn min_steady(
    sensors: u64,
    frames_per_sensor: usize,
    seed: u64,
    monitored: bool,
    rekey_interval: Option<u64>,
) -> (f64, f64) {
    let mut best_ns = f64::INFINITY;
    let mut worst_allocs: f64 = 0.0;
    for _ in 0..3 {
        let (ns, allocs) =
            measure_steady(sensors, frames_per_sensor, seed, monitored, rekey_interval);
        best_ns = best_ns.min(ns);
        worst_allocs = worst_allocs.max(allocs);
    }
    (best_ns, worst_allocs)
}

/// One timed ingest pass over pre-generated traffic: build a fresh
/// provisioned gateway (replay windows forbid reusing one), warm it on
/// the first 75% of the trace, time the rest. Returns ns/frame.
fn timed_pass(fleet: &FleetConfig, traffic: &age_sim::fleet::FleetTraffic, monitored: bool) -> f64 {
    #[cfg_attr(not(feature = "telemetry"), allow(unused_mut))]
    let mut gateway_config = fleet_gateway_config(fleet, 1);
    #[cfg(feature = "telemetry")]
    if monitored {
        gateway_config.monitor = Some(MonitorConfig {
            window_us: 500_000,
            ..MonitorConfig::default()
        });
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = monitored;
    let mut gateway = Gateway::new(gateway_config);
    for sensor_id in 0..fleet.sensors {
        let _ = gateway.provision(sensor_id, fleet.cohort_of(sensor_id));
    }
    let split = traffic.frames.len() * 3 / 4;
    for frame in &traffic.frames[..split] {
        let _ = gateway.ingest(frame);
    }
    let steady = &traffic.frames[split..];
    let start = Instant::now();
    for frame in steady {
        let _ = gateway.ingest(frame);
    }
    start.elapsed().as_nanos() as f64 / steady.len() as f64
}

/// Paired min-of-N for overhead gates: generates both traces once, then
/// interleaves short baseline and variant ingest rounds so machine
/// drift (thermal throttling, noisy neighbours) lands on both legs
/// equally, and compares the two minima. A sequential min-of-N would
/// attribute any slowdown between the two measurement windows to the
/// variant.
fn min_steady_paired(
    sensors: u64,
    frames_per_sensor: usize,
    seed: u64,
    variant_monitored: bool,
    variant_rekey: Option<u64>,
) -> (f64, f64) {
    let base_fleet = FleetConfig {
        frames_per_sensor,
        ..FleetConfig::new(sensors, seed)
    };
    let base_traffic = generate(&base_fleet);
    let variant_fleet = FleetConfig {
        frames_per_sensor,
        rekey_interval: variant_rekey,
        ..FleetConfig::new(sensors, seed)
    };
    let variant_traffic = generate(&variant_fleet);
    // Lower-quartile of per-round ratios: each round's base and variant
    // passes are adjacent in time, so a slowdown burst inflates both
    // sides of a round's ratio roughly equally, and the low quartile
    // discards the rounds a burst straddles anyway. A true per-frame
    // regression is deterministic — it inflates *every* round's ratio,
    // quartile included — so the gate stays sensitive to real cost
    // while shrugging off noisy-neighbour CI boxes. A min-of-mins
    // across all rounds would compare two different time windows.
    let mut base_ns = f64::INFINITY;
    let mut ratios = Vec::new();
    for _ in 0..9 {
        let b = timed_pass(&base_fleet, &base_traffic, false);
        let v = timed_pass(&variant_fleet, &variant_traffic, variant_monitored);
        base_ns = base_ns.min(b);
        ratios.push(v / b.max(1e-9));
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    (base_ns, base_ns * ratios[ratios.len() / 4])
}

fn committed_ns_per_frame(report: &str) -> Option<f64> {
    let key = "\"ns_per_frame\": ";
    let at = report.find(key)? + key.len();
    let rest = &report[at..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn check_mode() -> ! {
    let report = std::fs::read_to_string("BENCH_gateway.json").unwrap_or_else(|e| {
        die(&format!(
            "--check needs a committed BENCH_gateway.json: {e}"
        ))
    });
    let committed = committed_ns_per_frame(&report)
        .unwrap_or_else(|| die("committed BENCH_gateway.json carries no ns_per_frame"));

    let (ns_per_frame, allocs_per_frame) = min_steady(1_000, 40, 2022, false, None);
    println!(
        "gateway perf check: {ns_per_frame:.0} ns/frame (committed {committed:.0}, \
         limit {:.0}), {allocs_per_frame:.4} allocs/frame",
        committed * 3.0
    );
    let mut failed = false;
    if allocs_per_frame > 0.0 {
        eprintln!(
            "FAIL: gateway ingest allocates in steady state ({allocs_per_frame:.4} allocs/frame)"
        );
        failed = true;
    }
    if ns_per_frame > committed * 3.0 {
        eprintln!("FAIL: ns_per_frame {ns_per_frame:.0} exceeds 3x the committed {committed:.0}");
        failed = true;
    }
    #[cfg(feature = "telemetry")]
    {
        let (base_ns, monitored_ns) = min_steady_paired(1_000, 40, 2022, true, None);
        let overhead = monitored_ns / base_ns.max(1e-9);
        println!(
            "monitored ingest: {monitored_ns:.0} ns/frame ({:.1}% overhead, limit 10%)",
            (overhead - 1.0) * 100.0
        );
        if overhead > 1.10 {
            eprintln!(
                "FAIL: streaming monitor costs {:.1}% per frame (limit 10%)",
                (overhead - 1.0) * 100.0
            );
            failed = true;
        }
    }
    // Staggered rekeying pays at each epoch boundary: the boundary frame
    // fails trial-opens under the current and previous keys (two full AEAD
    // verifies — the epoch is never on the wire) before the forward probe
    // derives the next key and succeeds. Amortized over an 80-frame epoch
    // (still far faster than any deployed cadence) that must fit in the
    // same 10% envelope. Rotation swaps the session cipher through the
    // factory Box, so the zero-alloc assertion deliberately does not
    // apply to this leg.
    let (rekey_base_ns, rekey_ns) = min_steady_paired(1_000, 80, 2022, false, Some(80));
    let rekey_overhead = rekey_ns / rekey_base_ns.max(1e-9);
    println!(
        "staggered-rekey ingest: {rekey_ns:.0} ns/frame ({:.1}% overhead, limit 10%)",
        (rekey_overhead - 1.0) * 100.0
    );
    if rekey_overhead > 1.10 {
        eprintln!(
            "FAIL: staggered rekeying costs {:.1}% per frame (limit 10%)",
            (rekey_overhead - 1.0) * 100.0
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("gateway perf check passed");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        check_mode();
    }
    let mut config = GatewayRunConfig::new(100_000);
    config.record_latency = true;
    let mut out_path = String::from("BENCH_gateway.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sensors" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => config.sensors = n,
                    _ => die("--sensors needs a positive integer"),
                }
            }
            "--frames" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => config.frames_per_sensor = n,
                    _ => die("--frames needs a positive integer"),
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => config.shards = n,
                    _ => die("--shards needs a positive integer"),
                }
            }
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse().ok()) {
                    Some(n) if n > 0 => config.threads = n,
                    _ => die("--threads needs a positive integer"),
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out_path = path.clone(),
                    None => die("--out needs a path"),
                }
            }
            other => die(&format!(
                "unknown flag '{other}'; usage: bench_gateway [--sensors N] [--frames N] \
                 [--shards K] [--threads T] [--out FILE] [--check]"
            )),
        }
        i += 1;
    }

    let frames = config.sensors * config.frames_per_sensor as u64;
    println!(
        "fleet: {} sensors x {} frames = {} frames, {} shards, {} threads",
        config.sensors, config.frames_per_sensor, frames, config.shards, config.threads
    );
    let run = run_gateway(&config);
    let frames_per_sec = run.report.stats.frames as f64 / run.ingest_seconds.max(1e-9);
    let p50 = run.latency.p50_ns();
    let p99 = run.latency.p99_ns();
    let max_occupancy = run.occupancy.iter().copied().max().unwrap_or(0);
    let min_occupancy = run.occupancy.iter().copied().min().unwrap_or(0);
    let balance = max_occupancy as f64 / (min_occupancy.max(1)) as f64;
    let (steady_ns, steady_allocs) = min_steady(1_000, 40, config.seed, false, None);
    #[cfg(feature = "telemetry")]
    let (monitored_ns, monitor_overhead) = {
        let (ns, _) = min_steady(1_000, 40, config.seed, true, None);
        (ns, ns / steady_ns.max(1e-9))
    };

    print!("{}", run.report);
    println!(
        "generated in {:.2}s, drained in {:.2}s ({:.0} frames/s)",
        run.generate_seconds, run.ingest_seconds, frames_per_sec
    );
    println!("ingest latency: p50 <= {p50} ns, p99 <= {p99} ns");
    println!(
        "shard balance: {min_occupancy}..={max_occupancy} sessions/shard (ratio {balance:.3})"
    );
    println!(
        "steady single-thread ingest: {steady_ns:.0} ns/frame, {steady_allocs:.4} allocs/frame"
    );
    #[cfg(feature = "telemetry")]
    {
        println!(
            "monitored ingest: {monitored_ns:.0} ns/frame \
             ({:.1}% streaming-monitor overhead)",
            (monitor_overhead - 1.0) * 100.0
        );
        println!(
            "leakage gate: {}, nonce audits: {}",
            if run.gate_passed() { "PASS" } else { "FAIL" },
            if run.nonce_clean { "clean" } else { "VIOLATED" }
        );
    }

    let mut json = String::with_capacity(1024);
    let _ = write!(
        json,
        "{{\n  \"schema\": \"{SCHEMA}\",\n  \"sensors\": {},\n  \"frames_per_sensor\": {},\n  \
         \"frames\": {},\n  \"shards\": {},\n  \"threads\": {},\n  \"seed\": {},\n  \
         \"accepted\": {},\n  \"rejected\": {},\n  \"generate_seconds\": {:.3},\n  \
         \"ingest_seconds\": {:.3},\n  \"frames_per_sec\": {:.0},\n  \"ns_per_frame\": {:.1},\n  \
         \"steady_allocs_per_frame\": {:.4},\n  \"p50_ingest_ns\": {},\n  \"p99_ingest_ns\": {},\n  \
         \"min_shard_sessions\": {},\n  \"max_shard_sessions\": {},\n  \"balance_ratio\": {:.4}",
        config.sensors,
        config.frames_per_sensor,
        frames,
        config.shards,
        config.threads,
        config.seed,
        run.report.stats.accepted,
        run.report.stats.rejected(),
        run.generate_seconds,
        run.ingest_seconds,
        frames_per_sec,
        steady_ns,
        steady_allocs,
        p50,
        p99,
        min_occupancy,
        max_occupancy,
        balance,
    );
    #[cfg(feature = "telemetry")]
    {
        let _ = write!(
            json,
            ",\n  \"monitored_ns_per_frame\": {:.1},\n  \"monitor_overhead_ratio\": {:.4},\n  \
             \"gate_passed\": {},\n  \"nonce_clean\": {}",
            monitored_ns,
            monitor_overhead,
            run.gate_passed(),
            run.nonce_clean
        );
    }
    json.push_str("\n}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("[report written to {out_path}]"),
        Err(e) => die(&format!("cannot write '{out_path}': {e}")),
    }

    #[cfg(feature = "telemetry")]
    if !run.gate_passed() || !run.nonce_clean {
        std::process::exit(1);
    }
}
