//! The CI leakage-regression gate.
//!
//! Runs the pinned audit sweep (adaptive policies × {Std, Padded, AGE} on
//! the seeded Epilepsy dataset), scores every stream on **two channels** —
//! wire-size NMI and inter-transmission-gap (timing) NMI, each with a
//! seeded permutation p-value — writes `LEAKAGE.json` (format v2), and
//! exits non-zero if the gate fails: a defended encoder leaks through
//! sizes, a defended encoder's *schedule* correlates with events, or the
//! undefended baseline fails to leak on either channel (which would mean
//! the detector can no longer prove it would catch a regression).
//!
//! ```text
//! cargo run -p age-bench --release --bin bench_leakage
//! cargo run -p age-bench --release --bin bench_leakage -- --standard --threads 2
//! cargo run -p age-bench --release --bin bench_leakage -- --out target/LEAKAGE.json
//! ```

#[cfg(feature = "telemetry")]
fn main() {
    use age_bench::{audit, Settings};

    let args: Vec<String> = std::env::args().skip(1).collect();
    // Quick scale by default: the gate separates NMI ≈ 0 from NMI ≫ 0.05,
    // which small runs already do decisively, and CI wants fast legs.
    let mut settings = Settings::quick();
    let mut out = String::from("LEAKAGE.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => settings = Settings::quick(),
            "--standard" => settings = Settings::standard(),
            "--full" => settings = Settings::full(),
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => settings.threads = n,
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = path.clone(),
                    None => {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: bench_leakage \
                     [--quick|--standard|--full] [--threads N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let start = std::time::Instant::now();
    let report = audit::run_gate(&settings);
    print!("{report}");
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cannot write leakage report '{out}': {e}");
        std::process::exit(2);
    }
    println!(
        "[leakage report written to {out} in {:.1}s]",
        start.elapsed().as_secs_f64()
    );
    let gate = report
        .gate
        .as_ref()
        .expect("run_gate always sets a verdict");
    if !gate.passed {
        eprintln!("leakage gate FAILED");
        std::process::exit(1);
    }
}

#[cfg(not(feature = "telemetry"))]
fn main() {
    eprintln!("bench_leakage requires the `telemetry` feature (this binary was built without it)");
    std::process::exit(2);
}
