//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p age-bench --release --bin repro -- all
//! cargo run -p age-bench --release --bin repro -- table4 fig6
//! cargo run -p age-bench --release --bin repro -- --quick all
//! cargo run -p age-bench --release --bin repro -- --full table6
//! cargo run -p age-bench --release --bin repro -- --telemetry out.jsonl table4
//! ```
//!
//! `--faults <rate>` overrides the drop/corruption rate used by the `faults`
//! extension (a repro knob for the robustness experiments).
//!
//! `--telemetry <path>` streams one JSON object per encoded batch to `path`
//! (stage timings, group layout, message length) and prints a per-stream
//! summary table after the experiments; requires the `telemetry` feature.
//!
//! `--audit` watches the sealed wire frames every experiment transmits,
//! scores per-stream leakage (NMI between event labels and frame sizes,
//! plus a seeded permutation p-value), prints the audit table, and writes
//! `LEAKAGE.json` (`--audit-out <path>` to relocate); requires the
//! `telemetry` feature.
//!
//! `--power-faults <rate>` overrides the power-cut rate used by the
//! `resets` extension and arms the run-wide nonce-uniqueness auditor: if
//! any two sealed frames in the whole run shared an (epoch, sequence) pair
//! — a reused nonce — the process exits non-zero. `--audit` arms the same
//! auditor. Requires the `telemetry` feature.
//!
//! `--trace <path>` records every experiment's virtual-clock spans
//! (sample → encode → seal → link attempts → ack) and writes them as
//! Chrome `trace_event` JSON — load the file in `chrome://tracing` or
//! Perfetto. Timestamps are virtual microseconds, not wall time, so the
//! file is byte-deterministic for a fixed seed. Requires the `telemetry`
//! feature.
//!
//! `--gateway` runs the fleet-scale ingest experiment instead of (or in
//! addition to) the paper experiments: `--sensors N` simulated sensors
//! drain through a `--shards K` sharded gateway, the deterministic run
//! artifact is written to `GATEWAY.json` (`--gateway-out <path>` to
//! relocate), and with the `telemetry` feature the two-channel leakage
//! gate plus both nonce audits must pass or the process exits non-zero.
//! The artifact is byte-identical at any `--shards`/`--threads` value —
//! CI's determinism leg compares two such runs with `cmp`.

use std::time::Instant;

use age_bench::{run_experiment, run_extension, Settings, EXPERIMENTS, EXTENSIONS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::standard();
    let mut ids: Vec<String> = Vec::new();
    let mut telemetry_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut fault_rate: Option<f64> = None;
    let mut power_fault_rate: Option<f64> = None;
    let mut audit = false;
    let mut audit_out = String::from("LEAKAGE.json");
    let mut trace_path: Option<String> = None;
    let mut gateway = false;
    let mut gateway_out = String::from("GATEWAY.json");
    let mut sensors: u64 = 10_000;
    let mut shards: usize = 4;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--audit" => audit = true,
            "--gateway" => gateway = true,
            "--gateway-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => {
                        gateway = true;
                        gateway_out = path.clone();
                    }
                    None => {
                        eprintln!("--gateway-out needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--sensors" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n > 0 => sensors = n,
                    _ => {
                        eprintln!("--sensors needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => shards = n,
                    _ => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--audit-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => {
                        audit = true;
                        audit_out = path.clone();
                    }
                    None => {
                        eprintln!("--audit-out needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" => settings = Settings::quick(),
            "--full" => settings = Settings::full(),
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<f64>().ok()) {
                    Some(rate) if (0.0..=1.0).contains(&rate) => fault_rate = Some(rate),
                    _ => {
                        eprintln!("--faults needs a rate in 0.0..=1.0");
                        std::process::exit(2);
                    }
                }
            }
            "--power-faults" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<f64>().ok()) {
                    Some(rate) if (0.0..=1.0).contains(&rate) => power_fault_rate = Some(rate),
                    _ => {
                        eprintln!("--power-faults needs a rate in 0.0..=1.0");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(path) => telemetry_path = Some(path.clone()),
                    None => {
                        eprintln!("--telemetry needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_path = Some(path.clone()),
                    None => {
                        eprintln!("--trace needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "extensions" => ids.extend(EXTENSIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    // Applied after the scale flags so `--threads 2 --quick` still works.
    if let Some(n) = threads {
        settings.threads = n;
    }
    if fault_rate.is_some() {
        settings.fault_rate = fault_rate;
    }
    if power_fault_rate.is_some() {
        settings.power_fault_rate = power_fault_rate;
    }
    if ids.is_empty() && !gateway {
        eprintln!(
            "usage: repro [--quick|--full] [--threads N] [--faults RATE] \
             [--power-faults RATE] [--telemetry out.jsonl] [--audit] \
             [--audit-out LEAKAGE.json] [--trace TRACE.json] \
             [--gateway [--sensors N] [--shards K] [--gateway-out GATEWAY.json]] \
             <experiment...|all|extensions>"
        );
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        eprintln!("extensions:  {}", EXTENSIONS.join(" "));
        std::process::exit(2);
    }
    ids.dedup();

    if gateway {
        let mut config = age_bench::GatewayRunConfig::new(sensors);
        config.shards = shards;
        config.threads = if settings.threads > 0 {
            settings.threads
        } else {
            shards
        };
        config.permutations = settings.permutations.min(500);
        config.seed = settings.seed;
        let start = Instant::now();
        let run = age_bench::run_gateway(&config);
        print!("{}", run.report);
        println!("shard occupancy: {:?} sessions", run.occupancy);
        #[cfg(feature = "telemetry")]
        {
            print!("{}", run.leakage);
            println!(
                "nonce audits (seal-side and gateway-side): {}",
                if run.nonce_clean { "clean" } else { "VIOLATED" }
            );
        }
        match std::fs::write(&gateway_out, run.gateway_json()) {
            Ok(()) => println!("[gateway report written to {gateway_out}]"),
            Err(e) => {
                eprintln!("cannot write gateway report '{gateway_out}': {e}");
                std::process::exit(2);
            }
        }
        println!(
            "[gateway: {} sensors through {} shards in {:.1}s]\n",
            sensors,
            shards,
            start.elapsed().as_secs_f64()
        );
        #[cfg(feature = "telemetry")]
        if !run.gate_passed() || !run.nonce_clean {
            eprintln!("gateway run FAILED its leakage gate or nonce audit");
            std::process::exit(1);
        }
    }

    #[cfg(not(feature = "telemetry"))]
    {
        if telemetry_path.is_some() {
            eprintln!(
                "--telemetry requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if audit {
            eprintln!(
                "--audit requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if trace_path.is_some() {
            eprintln!(
                "--trace requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if power_fault_rate.is_some() {
            eprintln!(
                "note: built without the `telemetry` feature — power faults still run, \
                 but the nonce-uniqueness auditor is unavailable"
            );
        }
        let _ = audit_out;
    }

    #[cfg(feature = "telemetry")]
    let (summary_sink, leakage_sink, nonce_sink, trace_sink) = {
        use std::sync::Arc;
        let mut sinks: Vec<Arc<dyn age_telemetry::Sink>> = Vec::new();
        let summary = telemetry_path.as_deref().map(|path| {
            let jsonl = match age_telemetry::JsonlSink::create(path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("cannot create telemetry file '{path}': {e}");
                    std::process::exit(2);
                }
            };
            sinks.push(Arc::new(jsonl));
            let summary = Arc::new(age_telemetry::SummarySink::new());
            sinks.push(summary.clone());
            summary
        });
        let leakage = audit.then(|| {
            let sink = Arc::new(age_telemetry::LeakageSink::new());
            sinks.push(sink.clone());
            sink
        });
        // Nonce uniqueness is audited whenever wire frames are being
        // watched anyway, and always when power faults are in play — a
        // reboot that reuses a (key, nonce) pair must fail the run.
        let nonce = (audit || power_fault_rate.is_some()).then(|| {
            let sink = Arc::new(age_telemetry::NonceAuditSink::new());
            sinks.push(sink.clone());
            sink
        });
        // Span emission is off by default (tracing every experiment costs
        // memory); the sink and the global switch arm it together.
        let trace = trace_path.is_some().then(|| {
            let sink = Arc::new(age_telemetry::TraceSink::new());
            sinks.push(sink.clone());
            age_telemetry::set_trace_enabled(true);
            sink
        });
        if !sinks.is_empty() {
            age_telemetry::install_global(Arc::new(age_telemetry::FanoutSink(sinks)));
        }
        (summary, leakage, nonce, trace)
    };

    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &settings).or_else(|| run_extension(id, &settings)) {
            Some(output) => {
                println!("{output}");
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {} | extensions: {}",
                    EXPERIMENTS.join(" "),
                    EXTENSIONS.join(" ")
                );
                std::process::exit(2);
            }
        }
    }

    #[cfg(feature = "telemetry")]
    {
        if summary_sink.is_some()
            || leakage_sink.is_some()
            || nonce_sink.is_some()
            || trace_sink.is_some()
        {
            age_telemetry::clear_global();
        }
        if trace_sink.is_some() {
            age_telemetry::set_trace_enabled(false);
        }
        // Transport counters accumulate process-globally, so the rollup is
        // printed here rather than folded into per-stream summaries.
        let transport = age_telemetry::TransportRollup::capture();
        if !transport.is_empty() {
            println!("transport rollup (all experiments):");
            print!("{transport}");
        }
        if let Some(summary) = summary_sink {
            let summary = summary.take();
            if !summary.is_empty() {
                println!("telemetry summary (message sizes per stream):");
                print!("{summary}");
            }
            if let Some(path) = &telemetry_path {
                println!("[per-batch records written to {path}]");
            }
        }
        if let Some(leakage) = leakage_sink {
            let report = age_bench::audit::finalize(&leakage.take(), &settings);
            if report.entries.is_empty() {
                println!("leakage audit: no wire frames observed (did the experiments transmit?)");
            } else {
                println!("leakage audit (sealed wire frames per stream):");
                print!("{report}");
            }
            match std::fs::write(&audit_out, report.to_json()) {
                Ok(()) => println!("[leakage report written to {audit_out}]"),
                Err(e) => {
                    eprintln!("cannot write leakage report '{audit_out}': {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(trace) = trace_sink {
            let spans = trace.take();
            let path = trace_path.as_deref().expect("trace sink implies a path");
            match std::fs::write(path, age_telemetry::render_chrome_json(&spans)) {
                Ok(()) => println!(
                    "[{} virtual-clock spans written to {path} (chrome://tracing format)]",
                    spans.len()
                ),
                Err(e) => {
                    eprintln!("cannot write trace '{path}': {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(nonce) = nonce_sink {
            let audit = nonce.take();
            println!("nonce audit (run-wide (epoch, sequence) uniqueness):");
            print!("{audit}");
            if !audit.is_clean() {
                eprintln!("nonce audit FAILED: a (key, nonce) pair was used twice");
                std::process::exit(1);
            }
        }
    }
}
