//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p age-bench --release --bin repro -- all
//! cargo run -p age-bench --release --bin repro -- table4 fig6
//! cargo run -p age-bench --release --bin repro -- --quick all
//! cargo run -p age-bench --release --bin repro -- --full table6
//! ```

use std::time::Instant;

use age_bench::{run_experiment, run_extension, Settings, EXPERIMENTS, EXTENSIONS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::standard();
    let mut ids: Vec<String> = Vec::new();
    for arg in &args {
        match arg.as_str() {
            "--quick" => settings = Settings::quick(),
            "--full" => settings = Settings::full(),
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "extensions" => ids.extend(EXTENSIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: repro [--quick|--full] <experiment...|all|extensions>");
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        eprintln!("extensions:  {}", EXTENSIONS.join(" "));
        std::process::exit(2);
    }
    ids.dedup();

    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &settings).or_else(|| run_extension(id, &settings)) {
            Some(output) => {
                println!("{output}");
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {} | extensions: {}",
                    EXPERIMENTS.join(" "),
                    EXTENSIONS.join(" ")
                );
                std::process::exit(2);
            }
        }
    }
}
