//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p age-bench --release --bin repro -- all
//! cargo run -p age-bench --release --bin repro -- table4 fig6
//! cargo run -p age-bench --release --bin repro -- --quick all
//! cargo run -p age-bench --release --bin repro -- --full table6
//! cargo run -p age-bench --release --bin repro -- --telemetry out.jsonl table4
//! ```
//!
//! `--faults <rate>` overrides the drop/corruption rate used by the `faults`
//! extension (a repro knob for the robustness experiments).
//!
//! `--telemetry <path>` streams one JSON object per encoded batch to `path`
//! (stage timings, group layout, message length) and prints a per-stream
//! summary table after the experiments; requires the `telemetry` feature.
//!
//! `--audit` watches the sealed wire frames every experiment transmits,
//! scores per-stream leakage (NMI between event labels and frame sizes,
//! plus a seeded permutation p-value), prints the audit table, and writes
//! `LEAKAGE.json` (`--audit-out <path>` to relocate); requires the
//! `telemetry` feature.
//!
//! `--power-faults <rate>` overrides the power-cut rate used by the
//! `resets` extension and arms the run-wide nonce-uniqueness auditor: if
//! any two sealed frames in the whole run shared an (epoch, sequence) pair
//! — a reused nonce — the process exits non-zero. `--audit` arms the same
//! auditor. Requires the `telemetry` feature.
//!
//! `--rekey-interval <n>` overrides the epoch length used by the `rekey`
//! extension (the link ratchets to a fresh key every `n` sequence numbers)
//! and arms the same run-wide nonce auditor, now keyed per key epoch: a
//! rotation that re-seals an old counter under an old key exits non-zero.
//!
//! `--trace <path>` records every experiment's virtual-clock spans
//! (sample → encode → seal → link attempts → ack) and writes them as
//! Chrome `trace_event` JSON — load the file in `chrome://tracing` or
//! Perfetto. Timestamps are virtual microseconds, not wall time, so the
//! file is byte-deterministic for a fixed seed. Requires the `telemetry`
//! feature.
//!
//! `--gateway` runs the fleet-scale ingest experiment instead of (or in
//! addition to) the paper experiments: `--sensors N` simulated sensors
//! drain through a `--shards K` sharded gateway, a per-shard ingest
//! table is printed, the deterministic run artifact is written to
//! `GATEWAY.json` (`--gateway-out <path>` to relocate), and with the
//! `telemetry` feature the two-channel leakage gate plus both nonce
//! audits must pass or the process exits non-zero (deferred to the end
//! of the run so trace/telemetry artifacts still land). The artifact is
//! byte-identical at any `--shards`/`--threads` value — CI's
//! determinism leg compares two such runs with `cmp`. Combined with
//! `--trace`, gateway ingest emits per-shard span trees
//! (ingest → decode → audit) into the same Chrome-trace file.
//!
//! `--health <path>` re-runs the fleet through the *monitored* driver
//! (streaming windowed leakage monitor + flight recorder + periodic
//! health snapshots) and writes one JSON line per virtual half-second
//! to `path`, plus a Prometheus-style exposition of the final snapshot
//! to `<path>.prom`. The stream is byte-identical at any shard/thread
//! count — CI `cmp`s it at 1 vs 4 shards. Implies `--gateway`;
//! requires the `telemetry` feature.
//!
//! `--postmortem <dir>` arms postmortem capture for the monitored run:
//! the first windowed alarm (or dirty nonce audit, or end-of-run gate
//! failure) freezes the merged flight-recorder ring into
//! `<dir>/POSTMORTEM.json`. Implies `--gateway`; requires `telemetry`.
//!
//! `--inject-regression <us>` injects the monitor-leg regression
//! scenario into the monitored run: after virtual time `us`, defended
//! sensors delay transmissions in proportion to the event class, so the
//! windowed monitor must raise a timing-leak alarm mid-run — CI runs
//! this and asserts the alarm and postmortem appear.

use std::time::Instant;

use age_bench::{run_experiment, run_extension, Settings, EXPERIMENTS, EXTENSIONS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut settings = Settings::standard();
    let mut ids: Vec<String> = Vec::new();
    let mut telemetry_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut fault_rate: Option<f64> = None;
    let mut power_fault_rate: Option<f64> = None;
    let mut rekey_interval: Option<u64> = None;
    let mut audit = false;
    let mut audit_out = String::from("LEAKAGE.json");
    let mut trace_path: Option<String> = None;
    let mut gateway = false;
    let mut gateway_out = String::from("GATEWAY.json");
    let mut sensors: u64 = 10_000;
    let mut shards: usize = 4;
    let mut health_out: Option<String> = None;
    let mut postmortem_dir: Option<String> = None;
    let mut inject_regression_us: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--audit" => audit = true,
            "--gateway" => gateway = true,
            "--gateway-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => {
                        gateway = true;
                        gateway_out = path.clone();
                    }
                    None => {
                        eprintln!("--gateway-out needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--sensors" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n > 0 => sensors = n,
                    _ => {
                        eprintln!("--sensors needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--shards" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => shards = n,
                    _ => {
                        eprintln!("--shards needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--audit-out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => {
                        audit = true;
                        audit_out = path.clone();
                    }
                    None => {
                        eprintln!("--audit-out needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--quick" => settings = Settings::quick(),
            "--full" => settings = Settings::full(),
            "--threads" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) if n > 0 => threads = Some(n),
                    _ => {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<f64>().ok()) {
                    Some(rate) if (0.0..=1.0).contains(&rate) => fault_rate = Some(rate),
                    _ => {
                        eprintln!("--faults needs a rate in 0.0..=1.0");
                        std::process::exit(2);
                    }
                }
            }
            "--power-faults" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<f64>().ok()) {
                    Some(rate) if (0.0..=1.0).contains(&rate) => power_fault_rate = Some(rate),
                    _ => {
                        eprintln!("--power-faults needs a rate in 0.0..=1.0");
                        std::process::exit(2);
                    }
                }
            }
            "--rekey-interval" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) if n > 0 => rekey_interval = Some(n),
                    _ => {
                        eprintln!("--rekey-interval needs a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--telemetry" => {
                i += 1;
                match args.get(i) {
                    Some(path) => telemetry_path = Some(path.clone()),
                    None => {
                        eprintln!("--telemetry needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => {
                i += 1;
                match args.get(i) {
                    Some(path) => trace_path = Some(path.clone()),
                    None => {
                        eprintln!("--trace needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--health" => {
                i += 1;
                match args.get(i) {
                    Some(path) => health_out = Some(path.clone()),
                    None => {
                        eprintln!("--health needs an output path");
                        std::process::exit(2);
                    }
                }
            }
            "--postmortem" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => postmortem_dir = Some(dir.clone()),
                    None => {
                        eprintln!("--postmortem needs an output directory");
                        std::process::exit(2);
                    }
                }
            }
            "--inject-regression" => {
                i += 1;
                match args.get(i).and_then(|n| n.parse::<u64>().ok()) {
                    Some(us) => inject_regression_us = Some(us),
                    None => {
                        eprintln!("--inject-regression needs a virtual-time threshold in µs");
                        std::process::exit(2);
                    }
                }
            }
            "all" => ids.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            "extensions" => ids.extend(EXTENSIONS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    // Applied after the scale flags so `--threads 2 --quick` still works.
    if let Some(n) = threads {
        settings.threads = n;
    }
    if fault_rate.is_some() {
        settings.fault_rate = fault_rate;
    }
    if power_fault_rate.is_some() {
        settings.power_fault_rate = power_fault_rate;
    }
    if rekey_interval.is_some() {
        settings.rekey_interval = rekey_interval;
    }
    // The monitored-run flags only make sense with the fleet experiment.
    if health_out.is_some() || postmortem_dir.is_some() || inject_regression_us.is_some() {
        gateway = true;
    }
    if ids.is_empty() && !gateway {
        eprintln!(
            "usage: repro [--quick|--full] [--threads N] [--faults RATE] \
             [--power-faults RATE] [--rekey-interval N] [--telemetry out.jsonl] [--audit] \
             [--audit-out LEAKAGE.json] [--trace TRACE.json] \
             [--gateway [--sensors N] [--shards K] [--gateway-out GATEWAY.json] \
             [--health HEALTH.jsonl] [--postmortem DIR] [--inject-regression US]] \
             <experiment...|all|extensions>"
        );
        eprintln!("experiments: {}", EXPERIMENTS.join(" "));
        eprintln!("extensions:  {}", EXTENSIONS.join(" "));
        std::process::exit(2);
    }
    ids.dedup();

    #[cfg(not(feature = "telemetry"))]
    {
        if telemetry_path.is_some() {
            eprintln!(
                "--telemetry requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if audit {
            eprintln!(
                "--audit requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if trace_path.is_some() {
            eprintln!(
                "--trace requires the `telemetry` feature (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if health_out.is_some() || postmortem_dir.is_some() || inject_regression_us.is_some() {
            eprintln!(
                "--health/--postmortem/--inject-regression require the `telemetry` feature \
                 (this binary was built without it)"
            );
            std::process::exit(2);
        }
        if power_fault_rate.is_some() || rekey_interval.is_some() {
            eprintln!(
                "note: built without the `telemetry` feature — power faults and rekeying \
                 still run, but the nonce-uniqueness auditor is unavailable"
            );
        }
        let _ = audit_out;
    }

    // Sinks go in before the gateway runs: shard tracers snapshot the
    // trace switch at construction, so `--trace --gateway` only records
    // ingest spans if the trace sink is already installed here.
    #[cfg(feature = "telemetry")]
    let (summary_sink, leakage_sink, nonce_sink, trace_sink) = {
        use std::sync::Arc;
        let mut sinks: Vec<Arc<dyn age_telemetry::Sink>> = Vec::new();
        let summary = telemetry_path.as_deref().map(|path| {
            let jsonl = match age_telemetry::JsonlSink::create(path) {
                Ok(sink) => sink,
                Err(e) => {
                    eprintln!("cannot create telemetry file '{path}': {e}");
                    std::process::exit(2);
                }
            };
            sinks.push(Arc::new(jsonl));
            let summary = Arc::new(age_telemetry::SummarySink::new());
            sinks.push(summary.clone());
            summary
        });
        let leakage = audit.then(|| {
            let sink = Arc::new(age_telemetry::LeakageSink::new());
            sinks.push(sink.clone());
            sink
        });
        // Nonce uniqueness is audited whenever wire frames are being
        // watched anyway, and always when power faults or rekeying are in
        // play — a reboot or rotation that reuses a (key, nonce) pair
        // must fail the run.
        let nonce = (audit || power_fault_rate.is_some() || rekey_interval.is_some()).then(|| {
            let sink = Arc::new(age_telemetry::NonceAuditSink::new());
            sinks.push(sink.clone());
            sink
        });
        // Span emission is off by default (tracing every experiment costs
        // memory); the sink and the global switch arm it together.
        let trace = trace_path.is_some().then(|| {
            let sink = Arc::new(age_telemetry::TraceSink::new());
            sinks.push(sink.clone());
            age_telemetry::set_trace_enabled(true);
            sink
        });
        if !sinks.is_empty() {
            age_telemetry::install_global(Arc::new(age_telemetry::FanoutSink(sinks)));
        }
        (summary, leakage, nonce, trace)
    };

    // A failed gate or nonce audit no longer exits on the spot: the
    // verdict is deferred to the end of `main` so the trace, telemetry,
    // health, and postmortem artifacts still land for the postmortem.
    #[cfg(feature = "telemetry")]
    let mut gateway_failed = false;

    if gateway {
        let mut config = age_bench::GatewayRunConfig::new(sensors);
        config.shards = shards;
        config.threads = if settings.threads > 0 {
            settings.threads
        } else {
            shards
        };
        config.permutations = settings.permutations.min(500);
        config.seed = settings.seed;
        // Latency never enters GATEWAY.json, so recording it keeps the
        // artifact byte-comparable while making the table informative.
        config.record_latency = true;
        let start = Instant::now();
        let run = age_bench::run_gateway(&config);
        print!("{}", run.report);
        println!("shard occupancy: {:?} sessions", run.occupancy);
        println!("per-shard ingest:");
        print!("{}", age_gateway::shard_table(&run.shard_reports));
        #[cfg(feature = "telemetry")]
        {
            print!("{}", run.leakage);
            println!(
                "nonce audits (seal-side and gateway-side): {}",
                if run.nonce_clean { "clean" } else { "VIOLATED" }
            );
        }
        match std::fs::write(&gateway_out, run.gateway_json()) {
            Ok(()) => println!("[gateway report written to {gateway_out}]"),
            Err(e) => {
                eprintln!("cannot write gateway report '{gateway_out}': {e}");
                std::process::exit(2);
            }
        }
        println!(
            "[gateway: {} sensors through {} shards in {:.1}s]\n",
            sensors,
            shards,
            start.elapsed().as_secs_f64()
        );
        #[cfg(feature = "telemetry")]
        if !run.gate_passed() || !run.nonce_clean {
            eprintln!("gateway run FAILED its leakage gate or nonce audit");
            gateway_failed = true;
        }

        // The monitored rerun: same fleet, ingested tick by tick with
        // the streaming monitor, flight recorder, and health snapshots.
        #[cfg(feature = "telemetry")]
        if health_out.is_some() || postmortem_dir.is_some() || inject_regression_us.is_some() {
            let mut monitor_config = match inject_regression_us {
                Some(after_us) => {
                    let mut scenario = age_sim::monitor::regression_scenario(sensors, config.seed);
                    scenario.fleet.regress_timing_after_us = Some(after_us);
                    scenario
                }
                None => age_sim::monitor::MonitorRunConfig::new(
                    age_sim::fleet::FleetConfig::new(sensors, config.seed),
                    shards,
                    config.threads,
                ),
            };
            monitor_config.shards = shards;
            monitor_config.threads = config.threads;
            monitor_config.gate_permutations = config.permutations;
            let monitored_start = Instant::now();
            let monitored = age_sim::monitor::run_monitored(&monitor_config);
            println!(
                "[monitored rerun: {} health ticks, {} windowed alarm(s) in {:.1}s]",
                monitored.snapshots.len(),
                monitored.alarms.len(),
                monitored_start.elapsed().as_secs_f64()
            );
            for alarm in &monitored.alarms {
                println!("  {alarm}");
            }
            if let (Some(at), false) =
                (monitored.first_alarm_at_frames, monitored.alarms.is_empty())
            {
                println!(
                    "  first alarm fired at {at} of {} frames (mid-run)",
                    monitored.report.stats.frames
                );
            }
            if let Some(path) = &health_out {
                if let Err(e) = std::fs::write(path, &monitored.health_jsonl) {
                    eprintln!("cannot write health stream '{path}': {e}");
                    std::process::exit(2);
                }
                let prom_path = format!("{path}.prom");
                if let Err(e) = std::fs::write(&prom_path, &monitored.prometheus) {
                    eprintln!("cannot write prometheus exposition '{prom_path}': {e}");
                    std::process::exit(2);
                }
                println!(
                    "[{} health snapshots written to {path}; final exposition to {prom_path}]",
                    monitored.snapshots.len()
                );
            }
            if let Some(dir) = &postmortem_dir {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("cannot create postmortem directory '{dir}': {e}");
                    std::process::exit(2);
                }
                match (&monitored.postmortem, &monitored.postmortem_trigger) {
                    (Some(body), Some(trigger)) => {
                        let path = format!("{dir}/POSTMORTEM.json");
                        if let Err(e) = std::fs::write(&path, body) {
                            eprintln!("cannot write postmortem '{path}': {e}");
                            std::process::exit(2);
                        }
                        println!("[postmortem ({trigger}) written to {path}]");
                    }
                    _ => println!("[no postmortem trigger — flight recorder stayed quiet]"),
                }
            }
            // An injected regression is *supposed* to leak; only an
            // organic monitored-gate failure counts against the run.
            if inject_regression_us.is_none() && !monitored.gate.passed {
                eprintln!("monitored gateway rerun FAILED its leakage gate");
                gateway_failed = true;
            }
        }
    }

    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &settings).or_else(|| run_extension(id, &settings)) {
            Some(output) => {
                println!("{output}");
                println!(
                    "[{} completed in {:.1}s]\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
            }
            None => {
                eprintln!(
                    "unknown experiment '{id}'; known: {} | extensions: {}",
                    EXPERIMENTS.join(" "),
                    EXTENSIONS.join(" ")
                );
                std::process::exit(2);
            }
        }
    }

    #[cfg(feature = "telemetry")]
    {
        if summary_sink.is_some()
            || leakage_sink.is_some()
            || nonce_sink.is_some()
            || trace_sink.is_some()
        {
            age_telemetry::clear_global();
        }
        if trace_sink.is_some() {
            age_telemetry::set_trace_enabled(false);
        }
        // Transport counters accumulate process-globally, so the rollup is
        // printed here rather than folded into per-stream summaries.
        let transport = age_telemetry::TransportRollup::capture();
        if !transport.is_empty() {
            println!("transport rollup (all experiments):");
            print!("{transport}");
        }
        if let Some(summary) = summary_sink {
            let summary = summary.take();
            if !summary.is_empty() {
                println!("telemetry summary (message sizes per stream):");
                print!("{summary}");
            }
            if let Some(path) = &telemetry_path {
                println!("[per-batch records written to {path}]");
            }
        }
        if let Some(leakage) = leakage_sink {
            let report = age_bench::audit::finalize(&leakage.take(), &settings);
            if report.entries.is_empty() {
                println!("leakage audit: no wire frames observed (did the experiments transmit?)");
            } else {
                println!("leakage audit (sealed wire frames per stream):");
                print!("{report}");
            }
            match std::fs::write(&audit_out, report.to_json()) {
                Ok(()) => println!("[leakage report written to {audit_out}]"),
                Err(e) => {
                    eprintln!("cannot write leakage report '{audit_out}': {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(trace) = trace_sink {
            let spans = trace.take();
            let path = trace_path.as_deref().expect("trace sink implies a path");
            match std::fs::write(path, age_telemetry::render_chrome_json(&spans)) {
                Ok(()) => println!(
                    "[{} virtual-clock spans written to {path} (chrome://tracing format)]",
                    spans.len()
                ),
                Err(e) => {
                    eprintln!("cannot write trace '{path}': {e}");
                    std::process::exit(2);
                }
            }
        }
        if let Some(nonce) = nonce_sink {
            let audit = nonce.take();
            println!("nonce audit (run-wide (epoch, sequence) uniqueness):");
            print!("{audit}");
            if !audit.is_clean() {
                eprintln!("nonce audit FAILED: a (key, nonce) pair was used twice");
                std::process::exit(1);
            }
        }
        // The deferred gateway verdict: every artifact above has been
        // written, so a failed gate or nonce audit can exit non-zero now.
        if gateway_failed {
            std::process::exit(1);
        }
    }
}
