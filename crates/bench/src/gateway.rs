//! Shared fleet-gateway runner for `bench_gateway` and `repro --gateway`.
//!
//! Generates seeded fleet traffic with [`age_sim::fleet`], drains it
//! through an [`age_gateway::Gateway`], and assembles `GATEWAY.json`:
//! the deterministic artifact CI compares byte-for-byte across
//! shard/thread configurations. Wall-clock numbers (throughput, ingest
//! latency) are returned separately and never enter that artifact.

use std::time::Instant;

use age_gateway::{FleetReport, Gateway, LatencyHistogram, ShardReport};
use age_sim::fleet::{fleet_gateway_config, generate, FleetConfig};

#[cfg(feature = "telemetry")]
use crate::audit::default_gate;
#[cfg(feature = "telemetry")]
use age_telemetry::{LeakageReport, MonitorConfig};

/// Shape of one gateway run.
#[derive(Debug, Clone, Copy)]
pub struct GatewayRunConfig {
    /// Simulated sensors.
    pub sensors: u64,
    /// Frames each sensor transmits.
    pub frames_per_sensor: usize,
    /// Session-table shards.
    pub shards: usize,
    /// Worker threads for the drain (clamped to the shard count).
    pub threads: usize,
    /// Fleet seed (keys, events, phases).
    pub seed: u64,
    /// Permutations for the leakage report's p-values.
    pub permutations: usize,
    /// Record per-frame wall-clock ingest latency.
    pub record_latency: bool,
    /// Arm the streaming leakage monitor (500 ms windows) inside every
    /// shard. Changes no deterministic artifact byte — the monitor only
    /// observes — so `GATEWAY.json` stays comparable; the point of the
    /// knob is measuring the monitor's ingest overhead.
    pub monitored: bool,
}

impl GatewayRunConfig {
    /// The standard fleet benchmark shape at `sensors` sensors.
    pub fn new(sensors: u64) -> GatewayRunConfig {
        GatewayRunConfig {
            sensors,
            frames_per_sensor: 4,
            shards: 4,
            threads: 4,
            seed: 2022,
            permutations: 200,
            record_latency: false,
            monitored: false,
        }
    }
}

/// Everything one run produces. Deterministic pieces (`report`,
/// `gateway_json`) depend only on the traffic; timing pieces depend on
/// the machine.
pub struct GatewayRun {
    /// The deterministic fleet rollup.
    pub report: FleetReport,
    /// Sessions per shard.
    pub occupancy: Vec<usize>,
    /// Per-shard ingest accounting — the `repro --gateway` table.
    pub shard_reports: Vec<ShardReport>,
    /// Merged ingest latency (empty unless `record_latency`).
    pub latency: LatencyHistogram,
    /// Wall-clock seconds spent draining the traffic.
    pub ingest_seconds: f64,
    /// Wall-clock seconds spent synthesizing the traffic.
    pub generate_seconds: f64,
    /// Scored leakage report over the aggregated fleet traffic, with
    /// the pinned gate verdict stamped.
    #[cfg(feature = "telemetry")]
    pub leakage: LeakageReport,
    /// Seal-side and gateway-side nonce audits both clean.
    #[cfg(feature = "telemetry")]
    pub nonce_clean: bool,
}

impl GatewayRun {
    /// Whether the two-channel leakage gate passed on fleet traffic.
    #[cfg(feature = "telemetry")]
    pub fn gate_passed(&self) -> bool {
        self.leakage.gate.as_ref().is_some_and(|g| g.passed)
    }

    /// `GATEWAY.json`: the deterministic run artifact. Byte-identical
    /// for a given `(sensors, frames, seed)` at any shard or thread
    /// count — CI's determinism leg relies on exactly this.
    pub fn gateway_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n\"version\": 1,\n\"fleet\": ");
        out.push_str(&self.report.to_json());
        #[cfg(feature = "telemetry")]
        {
            out.push_str(",\n\"nonce_clean\": ");
            out.push_str(if self.nonce_clean { "true" } else { "false" });
            out.push_str(",\n\"leakage\": ");
            out.push_str(&self.leakage.to_json());
        }
        out.push_str("}\n");
        out
    }
}

/// Runs one fleet through one gateway.
pub fn run_gateway(config: &GatewayRunConfig) -> GatewayRun {
    let mut fleet = FleetConfig::new(config.sensors, config.seed);
    fleet.frames_per_sensor = config.frames_per_sensor;

    let generate_start = Instant::now();
    let traffic = generate(&fleet);
    let generate_seconds = generate_start.elapsed().as_secs_f64();

    let mut gateway_config = fleet_gateway_config(&fleet, config.shards);
    gateway_config.record_latency = config.record_latency;
    #[cfg(feature = "telemetry")]
    if config.monitored {
        gateway_config.monitor = Some(MonitorConfig {
            window_us: 500_000,
            ..MonitorConfig::default()
        });
    }
    let mut gateway = Gateway::new(gateway_config);
    for sensor_id in 0..fleet.sensors {
        // cohort_of is always in range for the fleet's two cohorts.
        let _ = gateway.provision(sensor_id, fleet.cohort_of(sensor_id));
    }

    let ingest_start = Instant::now();
    gateway.run(&traffic.frames, config.threads);
    let ingest_seconds = ingest_start.elapsed().as_secs_f64();

    #[cfg(feature = "telemetry")]
    let leakage = {
        let mut report = gateway
            .leakage_audit()
            .report(config.permutations, config.seed);
        report.gate = Some(default_gate().evaluate(&report.entries));
        report
    };
    #[cfg(feature = "telemetry")]
    let nonce_clean = traffic.sealed_nonces.is_clean() && gateway.nonce_audit().is_clean();

    GatewayRun {
        report: gateway.fleet_report(),
        occupancy: gateway.shard_occupancy(),
        shard_reports: gateway.shard_reports(),
        latency: gateway.latency(),
        ingest_seconds,
        generate_seconds,
        #[cfg(feature = "telemetry")]
        leakage,
        #[cfg(feature = "telemetry")]
        nonce_clean,
    }
}
