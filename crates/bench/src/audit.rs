//! The leakage-audit harness behind `repro --audit` and the
//! `bench_leakage` gate binary.
//!
//! One pinned configuration lives here so CI, the repro artifact, and the
//! tests all speak the same thresholds. The gate judges two channels:
//!
//! - **Size**: a defended encoder whose audited wire-size NMI exceeds
//!   [`LEAKAGE_NMI_THRESHOLD`] fails.
//! - **Timing**: a defended encoder whose inter-transmission-gap NMI
//!   exceeds the same threshold *with a significant permutation p-value*
//!   fails (the p-value requirement absorbs the benign gap variance that
//!   retry backoff injects into small samples).
//!
//! On both channels the gate refuses to pass unless the undefended `Std`
//! baseline *does* exceed the thresholds on the same seeded data — proof
//! each detector is live, not vacuously green.

use std::sync::Arc;

use age_datasets::DatasetKind;
use age_sim::{run_cells, Defense, PolicyKind, Runner, SweepCell, SweepOptions};
use age_telemetry::{LeakageAudit, LeakageGate, LeakageReport, LeakageSink};

use crate::report::Settings;

/// NMI above this is a leakage regression for defended encoders.
///
/// Rationale: with the audit's per-cell sample sizes (tens to a few hundred
/// frames), the maximum-likelihood NMI of genuinely independent streams
/// sits well below 0.05 (finite-sample bias shrinks as 1/n and the
/// defended encoders are *constant-size*, scoring exactly 0.0), while the
/// undefended baseline scores an order of magnitude above it. 0.05 is far
/// from both, so neither noise nor a real leak can straddle the line.
pub const LEAKAGE_NMI_THRESHOLD: f64 = 0.05;

/// Baseline leakage must be at least this significant (permutation-test
/// p-value) before the gate counts it as proof the detector works.
pub const LEAKAGE_P_THRESHOLD: f64 = 0.05;

/// Streams with fewer audited frames than this are skipped by the gate;
/// NMI estimates from a handful of observations are bias-dominated.
pub const LEAKAGE_MIN_OBSERVATIONS: u64 = 30;

/// The pinned gate configuration: every fixed-size defense must stay at or
/// below the threshold, and the variable-size `Std` baseline must
/// demonstrably leak.
pub fn default_gate() -> LeakageGate {
    LeakageGate {
        nmi_threshold: LEAKAGE_NMI_THRESHOLD,
        p_threshold: LEAKAGE_P_THRESHOLD,
        min_observations: LEAKAGE_MIN_OBSERVATIONS,
        defended: ["AGE", "Padded", "Single", "Unshifted", "Pruned"]
            .map(String::from)
            .to_vec(),
        baseline: vec!["Std".to_string()],
    }
}

/// The sweep audited by `bench_leakage`: both adaptive policies crossed
/// with the undefended baseline and the two headline defenses, at two
/// budgets. Budget enforcement is off (as in the paper's leakage analysis)
/// so every sequence transmits and the audit sees the full size stream.
pub fn gate_cells() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for policy in [PolicyKind::Linear, PolicyKind::Deviation] {
        for defense in [Defense::Standard, Defense::Padded, Defense::Age] {
            for rate in [0.5, 0.7] {
                let mut cell = SweepCell::new(policy, defense, rate);
                cell.enforce_budget = false;
                cells.push(cell);
            }
        }
    }
    cells
}

/// Runs the pinned audit sweep on the seeded Epilepsy dataset, collecting
/// wire records through a shared [`LeakageSink`], and returns the merged
/// audit state. Byte-identical at any thread count: the sink's counts
/// commute and scoring happens after the sweep.
pub fn audit_sweep(settings: &Settings) -> LeakageAudit {
    let runner = Runner::new(DatasetKind::Epilepsy, settings.scale, settings.seed);
    let sink = Arc::new(LeakageSink::new());
    let options = SweepOptions {
        threads: settings.threads,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    run_cells(&runner, &gate_cells(), &options);
    sink.take()
}

/// Scores an audit and stamps the pinned gate's verdict into the report.
pub fn finalize(audit: &LeakageAudit, settings: &Settings) -> LeakageReport {
    let mut report = audit.report(settings.permutations, settings.seed);
    report.gate = Some(default_gate().evaluate(&report.entries));
    report
}

/// The whole gate: sweep, score, judge. `bench_leakage` exits non-zero
/// when the returned report's gate verdict is a failure.
pub fn run_gate(settings: &Settings) -> LeakageReport {
    finalize(&audit_sweep(settings), settings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Settings {
        let mut s = Settings::quick();
        s.permutations = 60;
        s
    }

    #[test]
    fn pinned_gate_passes_on_the_audited_sweep() {
        let report = run_gate(&quick());
        let gate = report.gate.as_ref().unwrap();
        assert!(gate.passed, "failures: {:?}", gate.failures);
        // Every defended stream is constant-size on a fault-free cadence,
        // so both channels score exactly 0.
        for e in &report.entries {
            if e.encoder != "Std" {
                assert_eq!(e.nmi, 0.0, "{}/{} leaked", e.label, e.encoder);
                assert_eq!(e.distinct_sizes, 1, "{}/{}", e.label, e.encoder);
                assert_eq!(e.timing_nmi, 0.0, "{}/{} leaked timing", e.label, e.encoder);
                assert_eq!(e.distinct_gaps, 1, "{}/{} gaps", e.label, e.encoder);
            }
        }
        // And the baseline demonstrably leaks — through both channels.
        assert!(report.entries.iter().any(|e| e.encoder == "Std"
            && e.nmi > LEAKAGE_NMI_THRESHOLD
            && e.p_value <= LEAKAGE_P_THRESHOLD));
        assert!(report.entries.iter().any(|e| e.encoder == "Std"
            && e.timing_nmi > LEAKAGE_NMI_THRESHOLD
            && e.timing_p_value <= LEAKAGE_P_THRESHOLD));
        // Both verdict legs actually ran.
        assert!(gate.timing_defended_checked > 0 && gate.timing_baseline_checked > 0);
    }

    #[test]
    fn gate_fails_on_an_event_correlated_schedule_behind_constant_sizes() {
        // The injected bug class the timing channel exists to catch: a
        // defended stream whose frames are all the same length but whose
        // send schedule stretches with the event — say, an event-dependent
        // backoff or a data-dependent encode stall.
        let audit = audit_sweep(&quick());
        let mut regressed = LeakageAudit::new();
        regressed.merge(&audit);
        let mut t = 0u64;
        for i in 0..160u64 {
            let event = (i % 3) as usize;
            t += 500_000 + event as u64 * 60_000;
            regressed.observe_timed("Epilepsy/Linear/Padded/r0.33", "Padded", event, 118, t);
        }
        let report = finalize(&regressed, &quick());
        let gate = report.gate.as_ref().unwrap();
        assert!(!gate.passed);
        assert!(
            gate.failures
                .iter()
                .any(|f| f.contains("timing regression") && f.contains("Padded")),
            "failures: {:?}",
            gate.failures
        );
        // The size channel stays clean — only the timing verdict fires.
        assert!(
            !gate
                .failures
                .iter()
                .any(|f| f.contains("leakage regression")),
            "failures: {:?}",
            gate.failures
        );
    }

    #[test]
    fn gate_fails_when_a_defended_encoder_regresses() {
        // Injected padding regression: replay the leaky Std streams under a
        // defended encoder's name, as a broken padding stage would look.
        let audit = audit_sweep(&quick());
        let mut regressed = LeakageAudit::new();
        regressed.merge(&audit);
        for ((label, encoder), stream) in audit.streams() {
            if encoder == "Std" {
                let (events, sizes) = stream.expand();
                for (&e, &s) in events.iter().zip(&sizes) {
                    regressed.observe(label, "Padded", e, s);
                }
            }
        }
        let report = finalize(&regressed, &quick());
        let gate = report.gate.as_ref().unwrap();
        assert!(!gate.passed);
        assert!(
            gate.failures
                .iter()
                .any(|f| f.contains("leakage regression") && f.contains("Padded")),
            "failures: {:?}",
            gate.failures
        );
    }
}
