//! A minimal wall-clock benchmark harness (no external deps).
//!
//! Used by the `benches/` targets, which run standalone (`harness = false`).
//! Each benchmark warms up briefly, picks an iteration count that fills the
//! measurement window, and reports the mean time per iteration. Pass a
//! substring on the command line to run a subset:
//! `cargo bench -p age-bench --bench encode -- age`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and prints benchmark timings.
pub struct Harness {
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
    results: Vec<(String, f64, u64)>,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            filter: None,
            warm_up: Duration::from_millis(200),
            measure: Duration::from_millis(500),
            results: Vec::new(),
        }
    }
}

impl Harness {
    /// Build a harness from command-line arguments: the first non-flag
    /// argument (cargo passes `--bench` and similar flags through) is a
    /// substring filter on benchmark names.
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            filter,
            ..Self::default()
        }
    }

    /// Override the per-benchmark warm-up and measurement windows.
    pub fn with_windows(mut self, warm_up: Duration, measure: Duration) -> Self {
        self.warm_up = warm_up;
        self.measure = measure;
        self
    }

    /// Time `f`, printing and recording the mean nanoseconds per iteration.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed() < self.warm_up && warm_iters < 1_000_000) {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as u64 / warm_iters).max(1);
        let iters = (self.measure.as_nanos() as u64 / est_ns).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "{name:<44} {:>12}/iter  ({iters} iters)",
            format_ns(mean_ns)
        );
        self.results.push((name.to_string(), mean_ns, iters));
    }

    /// Results recorded so far: (name, mean ns/iter, iterations).
    pub fn results(&self) -> &[(String, f64, u64)] {
        &self.results
    }

    /// Print a closing line; consumes the harness.
    pub fn finish(self) {
        println!("{} benchmark(s) run", self.results.len());
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_a_result() {
        let mut h =
            Harness::default().with_windows(Duration::from_millis(1), Duration::from_millis(1));
        h.bench("trivial", || 1 + 1);
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].1 > 0.0);
    }

    #[test]
    fn filter_skips_non_matching_names() {
        let mut h = Harness {
            filter: Some("match".into()),
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            results: Vec::new(),
        };
        h.bench("other", || 0);
        assert!(h.results().is_empty());
        h.bench("a_matching_name", || 0);
        assert_eq!(h.results().len(), 1);
    }
}
