//! Sampling-policy walk costs and offline threshold fitting.

use age_datasets::{Dataset, DatasetKind, Scale};
use age_nn::Trainer;
use age_sampling::{fit_threshold, DeviationPolicy, LinearPolicy, Policy, UniformPolicy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sampling_walk(c: &mut Criterion) {
    let data = Dataset::generate(DatasetKind::Activity, Scale::Small, 1);
    let seq = &data.sequences()[0].values;
    let d = data.spec().features;
    let mut group = c.benchmark_group("policy_walk");
    group.bench_function("uniform", |b| {
        let p = UniformPolicy::new(0.5);
        b.iter(|| black_box(p.sample(black_box(seq), d)));
    });
    group.bench_function("linear", |b| {
        let p = LinearPolicy::new(0.3);
        b.iter(|| black_box(p.sample(black_box(seq), d)));
    });
    group.bench_function("deviation", |b| {
        let p = DeviationPolicy::new(0.1);
        b.iter(|| black_box(p.sample(black_box(seq), d)));
    });
    group.finish();
}

fn bench_threshold_fit(c: &mut Criterion) {
    let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 2);
    let d = data.spec().features;
    let train: Vec<&[f64]> = data
        .sequences()
        .iter()
        .map(|s| s.values.as_slice())
        .collect();
    c.bench_function("fit/linear_threshold", |b| {
        b.iter(|| {
            black_box(fit_threshold(
                LinearPolicy::new,
                black_box(&train),
                d,
                0.5,
                8.0,
                16,
            ))
        });
    });
}

fn bench_skip_rnn(c: &mut Criterion) {
    let seqs: Vec<Vec<f64>> = (0..4)
        .map(|s| (0..60).map(|t| ((t + s * 3) as f64 * 0.2).sin()).collect())
        .collect();
    c.bench_function("fit/skip_rnn_epoch", |b| {
        b.iter(|| black_box(Trainer::new(1, 8, 3).epochs(1).train(black_box(&seqs))));
    });
    let model = Trainer::new(1, 8, 3).epochs(1).train(&seqs);
    c.bench_function("policy_walk/skip_rnn", |b| {
        b.iter(|| black_box(model.sample(black_box(&seqs[0]), 0.0)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_sampling_walk, bench_threshold_fit, bench_skip_rnn
}
criterion_main!(benches);
