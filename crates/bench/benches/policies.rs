//! Sampling-policy walk costs and offline threshold fitting.

use age_bench::Harness;
use age_datasets::{Dataset, DatasetKind, Scale};
use age_nn::Trainer;
use age_sampling::{fit_threshold, DeviationPolicy, LinearPolicy, Policy, UniformPolicy};

fn main() {
    let mut h = Harness::from_args();

    let data = Dataset::generate(DatasetKind::Activity, Scale::Small, 1);
    let seq = &data.sequences()[0].values;
    let d = data.spec().features;
    let uniform = UniformPolicy::new(0.5);
    h.bench("policy_walk/uniform", || uniform.sample(seq, d));
    let linear = LinearPolicy::new(0.3);
    h.bench("policy_walk/linear", || linear.sample(seq, d));
    let deviation = DeviationPolicy::new(0.1);
    h.bench("policy_walk/deviation", || deviation.sample(seq, d));

    let fit_data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 2);
    let fit_d = fit_data.spec().features;
    let train: Vec<&[f64]> = fit_data
        .sequences()
        .iter()
        .map(|s| s.values.as_slice())
        .collect();
    h.bench("fit/linear_threshold", || {
        fit_threshold(LinearPolicy::new, &train, fit_d, 0.5, 8.0, 16)
    });

    let seqs: Vec<Vec<f64>> = (0..4)
        .map(|s| (0..60).map(|t| ((t + s * 3) as f64 * 0.2).sin()).collect())
        .collect();
    h.bench("fit/skip_rnn_epoch", || {
        Trainer::new(1, 8, 3).epochs(1).train(&seqs)
    });
    let model = Trainer::new(1, 8, 3).epochs(1).train(&seqs);
    h.bench("policy_walk/skip_rnn", || model.sample(&seqs[0], 0.0));

    h.finish();
}
