//! Microbenchmarks of the encoders: the per-batch cost an MCU would pay.

use age_bench::Harness;
use age_core::mcu::{encode_raw, RawBatch};
use age_core::{
    AgeEncoder, Batch, BatchConfig, DeltaCodec, Encoder, PaddedEncoder, PrunedEncoder,
    SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_fixed::Format;

fn activity_config() -> BatchConfig {
    BatchConfig::new(50, 6, Format::new(16, 13).expect("valid")).expect("valid")
}

fn batch(k: usize, d: usize) -> Batch {
    let values: Vec<f64> = (0..k * d)
        .map(|i| ((i as f64) * 0.37).sin() * 2.0)
        .collect();
    Batch::new((0..k).collect(), values).expect("valid")
}

fn main() {
    let mut h = Harness::from_args();
    let cfg = activity_config();

    for k in [5usize, 25, 50] {
        let b = batch(k, 6);
        let encoders: Vec<(&str, Box<dyn Encoder>)> = vec![
            ("age", Box::new(AgeEncoder::new(220))),
            ("standard", Box::new(StandardEncoder)),
            ("padded", Box::new(PaddedEncoder::for_config(&cfg))),
            ("single", Box::new(SingleEncoder::new(220))),
            ("unshifted", Box::new(UnshiftedEncoder::new(220))),
            ("pruned", Box::new(PrunedEncoder::new(220))),
        ];
        for (name, enc) in &encoders {
            h.bench(&format!("encode/{name}/{k}"), || {
                enc.encode(&b, &cfg).expect("feasible")
            });
        }
    }

    let b = batch(50, 6);
    let rb = RawBatch::from_batch(&b, &cfg);
    let age = AgeEncoder::new(220);
    h.bench("encode/age_mcu_integer_50", || {
        encode_raw(&age, &rb, &cfg).expect("feasible")
    });
    h.bench("encode/delta_codec_50", || {
        DeltaCodec.encode(&b, &cfg).expect("feasible")
    });

    let msg = age.encode(&b, &cfg).expect("feasible");
    h.bench("decode/age_full_batch", || {
        age.decode(&msg, &cfg).expect("own message")
    });
    let std_msg = StandardEncoder.encode(&b, &cfg).expect("feasible");
    h.bench("decode/standard_full_batch", || {
        StandardEncoder.decode(&std_msg, &cfg).expect("own message")
    });

    h.finish();
}
