//! Microbenchmarks of the encoders: the per-batch cost an MCU would pay.

use age_core::mcu::{encode_raw, RawBatch};
use age_core::{
    AgeEncoder, Batch, BatchConfig, DeltaCodec, Encoder, PaddedEncoder, PrunedEncoder,
    SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_fixed::Format;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn activity_config() -> BatchConfig {
    BatchConfig::new(50, 6, Format::new(16, 13).expect("valid")).expect("valid")
}

fn batch(k: usize, d: usize) -> Batch {
    let values: Vec<f64> = (0..k * d)
        .map(|i| ((i as f64) * 0.37).sin() * 2.0)
        .collect();
    Batch::new((0..k).collect(), values).expect("valid")
}

fn bench_encode(c: &mut Criterion) {
    let cfg = activity_config();
    let mut group = c.benchmark_group("encode");
    for k in [5usize, 25, 50] {
        let b = batch(k, 6);
        group.bench_with_input(BenchmarkId::new("age", k), &b, |bench, b| {
            let enc = AgeEncoder::new(220);
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
        group.bench_with_input(BenchmarkId::new("standard", k), &b, |bench, b| {
            let enc = StandardEncoder;
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
        group.bench_with_input(BenchmarkId::new("padded", k), &b, |bench, b| {
            let enc = PaddedEncoder::for_config(&cfg);
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
        group.bench_with_input(BenchmarkId::new("single", k), &b, |bench, b| {
            let enc = SingleEncoder::new(220);
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
        group.bench_with_input(BenchmarkId::new("unshifted", k), &b, |bench, b| {
            let enc = UnshiftedEncoder::new(220);
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
        group.bench_with_input(BenchmarkId::new("pruned", k), &b, |bench, b| {
            let enc = PrunedEncoder::new(220);
            bench.iter(|| black_box(enc.encode(black_box(b), &cfg).expect("feasible")));
        });
    }
    group.finish();
}

fn bench_mcu_and_compress(c: &mut Criterion) {
    let cfg = activity_config();
    let b = batch(50, 6);
    let rb = RawBatch::from_batch(&b, &cfg);
    let enc = AgeEncoder::new(220);
    c.bench_function("encode/age_mcu_integer_50", |bench| {
        bench.iter(|| black_box(encode_raw(&enc, black_box(&rb), &cfg).expect("feasible")));
    });
    c.bench_function("encode/delta_codec_50", |bench| {
        bench.iter(|| black_box(DeltaCodec.encode(black_box(&b), &cfg).expect("feasible")));
    });
}

fn bench_decode(c: &mut Criterion) {
    let cfg = activity_config();
    let mut group = c.benchmark_group("decode");
    let b = batch(50, 6);
    let age = AgeEncoder::new(220);
    let msg = age.encode(&b, &cfg).expect("feasible");
    group.bench_function("age_full_batch", |bench| {
        bench.iter(|| black_box(age.decode(black_box(&msg), &cfg).expect("own message")));
    });
    let std_enc = StandardEncoder;
    let std_msg = std_enc.encode(&b, &cfg).expect("feasible");
    group.bench_function("standard_full_batch", |bench| {
        bench.iter(|| {
            black_box(
                std_enc
                    .decode(black_box(&std_msg), &cfg)
                    .expect("own message"),
            )
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_encode, bench_mcu_and_compress, bench_decode
}
criterion_main!(benches);
