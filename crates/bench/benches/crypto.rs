//! Cipher throughput on message-sized payloads.

use age_crypto::{poly1305, AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_seal(c: &mut Criterion) {
    let mut group = c.benchmark_group("seal");
    let chacha = ChaCha20::new([7; 32]);
    let ctr = AesCtr::new([7; 16]);
    let cbc = AesCbc::new([7; 16]);
    for len in [128usize, 1024] {
        let plaintext = vec![0xA5u8; len];
        group.bench_with_input(BenchmarkId::new("chacha20", len), &plaintext, |b, p| {
            b.iter(|| black_box(chacha.seal(1, black_box(p))));
        });
        group.bench_with_input(BenchmarkId::new("aes128_ctr", len), &plaintext, |b, p| {
            b.iter(|| black_box(ctr.seal(1, black_box(p))));
        });
        group.bench_with_input(BenchmarkId::new("aes128_cbc", len), &plaintext, |b, p| {
            b.iter(|| black_box(cbc.seal(1, black_box(p))));
        });
    }
    group.finish();
}

fn bench_aead(c: &mut Criterion) {
    let aead = ChaCha20Poly1305::new([7; 32]);
    let plaintext = vec![0xA5u8; 512];
    c.bench_function("seal/chacha20_poly1305_512", |b| {
        b.iter(|| black_box(aead.seal(1, black_box(&plaintext))));
    });
    let sealed = aead.seal(1, &plaintext);
    c.bench_function("open/chacha20_poly1305_512", |b| {
        b.iter(|| black_box(aead.open(black_box(&sealed)).expect("valid")));
    });
    let key = [9u8; 32];
    c.bench_function("poly1305/tag_512", |b| {
        b.iter(|| black_box(poly1305(black_box(&key), black_box(&plaintext))));
    });
}

fn bench_open(c: &mut Criterion) {
    let chacha = ChaCha20::new([7; 32]);
    let sealed = chacha.seal(1, &vec![0u8; 512]);
    c.bench_function("open/chacha20_512", |b| {
        b.iter(|| black_box(chacha.open(black_box(&sealed)).expect("valid")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(1));
    targets = bench_seal, bench_aead, bench_open
}
criterion_main!(benches);
