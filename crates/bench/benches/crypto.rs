//! Cipher throughput on message-sized payloads.

use age_bench::Harness;
use age_crypto::{poly1305, AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};

fn main() {
    let mut h = Harness::from_args();

    let chacha = ChaCha20::new([7; 32]);
    let ctr = AesCtr::new([7; 16]);
    let cbc = AesCbc::new([7; 16]);
    for len in [128usize, 1024] {
        let plaintext = vec![0xA5u8; len];
        h.bench(&format!("seal/chacha20/{len}"), || {
            chacha.seal(1, &plaintext)
        });
        h.bench(&format!("seal/aes128_ctr/{len}"), || {
            ctr.seal(1, &plaintext)
        });
        h.bench(&format!("seal/aes128_cbc/{len}"), || {
            cbc.seal(1, &plaintext)
        });
    }

    let aead = ChaCha20Poly1305::new([7; 32]);
    let plaintext = vec![0xA5u8; 512];
    h.bench("seal/chacha20_poly1305_512", || aead.seal(1, &plaintext));
    let sealed = aead.seal(1, &plaintext);
    h.bench("open/chacha20_poly1305_512", || {
        aead.open(&sealed).expect("valid")
    });
    let key = [9u8; 32];
    h.bench("poly1305/tag_512", || poly1305(&key, &plaintext));

    let sealed_stream = chacha.seal(1, &vec![0u8; 512]);
    h.bench("open/chacha20_512", || {
        chacha.open(&sealed_stream).expect("valid")
    });

    h.finish();
}
