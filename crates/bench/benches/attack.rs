//! Attacker-side costs: NMI estimation, permutation testing, AdaBoost.

use age_attack::{nmi, permutation_test, AdaBoost, ClassifierAttack};
use age_bench::Harness;

fn observations(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .map(|i| (i % 4, 200 + (i % 4) * 40 + (i * 31) % 25))
        .collect()
}

fn main() {
    let mut h = Harness::from_args();

    let obs = observations(1000);
    let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = obs.iter().map(|&(_, s)| s).collect();
    h.bench("nmi/1000_messages", || nmi(&labels, &sizes));
    h.bench("permutation_test/100_perms", || {
        permutation_test(&labels, &sizes, 100, 7)
    });

    let x: Vec<Vec<f64>> = (0..800)
        .map(|i| {
            let l = (i % 4) as f64;
            vec![l * 10.0 + (i % 7) as f64, l * 5.0, (i % 13) as f64, l]
        })
        .collect();
    let y: Vec<usize> = (0..800).map(|i| i % 4).collect();
    h.bench("adaboost/fit_20x800", || AdaBoost::fit(&x, &y, 4, 20));
    let model = AdaBoost::fit(&x, &y, 4, 20);
    h.bench("adaboost/predict", || model.predict(&x[13]));

    let attack_obs = observations(400);
    let attack = ClassifierAttack {
        total_samples: 300,
        n_estimators: 10,
        ..Default::default()
    };
    h.bench("classifier_attack/5fold_300", || attack.run(&attack_obs));

    h.finish();
}
