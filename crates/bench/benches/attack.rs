//! Attacker-side costs: NMI estimation, permutation testing, AdaBoost.

use age_attack::{nmi, permutation_test, AdaBoost, ClassifierAttack};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn observations(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .map(|i| (i % 4, 200 + (i % 4) * 40 + (i * 31) % 25))
        .collect()
}

fn bench_nmi(c: &mut Criterion) {
    let obs = observations(1000);
    let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = obs.iter().map(|&(_, s)| s).collect();
    c.bench_function("nmi/1000_messages", |b| {
        b.iter(|| black_box(nmi(black_box(&labels), black_box(&sizes))));
    });
    c.bench_function("permutation_test/100_perms", |b| {
        b.iter(|| {
            black_box(permutation_test(
                black_box(&labels),
                black_box(&sizes),
                100,
                7,
            ))
        });
    });
}

fn bench_adaboost(c: &mut Criterion) {
    let x: Vec<Vec<f64>> = (0..800)
        .map(|i| {
            let l = (i % 4) as f64;
            vec![l * 10.0 + (i % 7) as f64, l * 5.0, (i % 13) as f64, l]
        })
        .collect();
    let y: Vec<usize> = (0..800).map(|i| i % 4).collect();
    c.bench_function("adaboost/fit_20x800", |b| {
        b.iter(|| black_box(AdaBoost::fit(black_box(&x), black_box(&y), 4, 20)));
    });
    let model = AdaBoost::fit(&x, &y, 4, 20);
    c.bench_function("adaboost/predict", |b| {
        b.iter(|| black_box(model.predict(black_box(&x[13]))));
    });
}

fn bench_full_attack(c: &mut Criterion) {
    let obs = observations(400);
    let attack = ClassifierAttack {
        total_samples: 300,
        n_estimators: 10,
        ..Default::default()
    };
    c.bench_function("classifier_attack/5fold_300", |b| {
        b.iter(|| black_box(attack.run(black_box(&obs))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_nmi, bench_adaboost, bench_full_attack
}
criterion_main!(benches);
