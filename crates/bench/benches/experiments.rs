//! One benchmark per paper experiment, timing a representative cell at
//! reduced scale. The full tables come from the `repro` binary
//! (`cargo run -p age-bench --release --bin repro -- all`).

use age_bench::{run_experiment, Harness, Settings};
use age_datasets::{DatasetKind, Scale};
use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
use std::time::Duration;

fn main() {
    // These cells are orders of magnitude slower than the microbenches;
    // keep the windows tight so the suite stays tractable.
    let mut h =
        Harness::from_args().with_windows(Duration::from_millis(100), Duration::from_millis(500));

    // Figure 1 and Table 3 are cheap enough to run whole.
    let s = Settings::quick();
    for id in ["fig1", "table3", "overhead"] {
        h.bench(&format!("experiment/{id}"), || {
            run_experiment(id, &s).expect("known id")
        });
    }

    // Table 1 cell: per-event size statistics of one adaptive policy.
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 3);
    h.bench("experiment/table1_cell", || {
        let res = runner.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        res.size_stats_by_label()
    });

    // Table 4/5 cell: one dataset × one budget × the seven error configs.
    h.bench("experiment/table45_cell", || {
        let mut total = 0.0;
        for (p, d) in [
            (PolicyKind::Uniform, Defense::Standard),
            (PolicyKind::Linear, Defense::Standard),
            (PolicyKind::Linear, Defense::Padded),
            (PolicyKind::Linear, Defense::Age),
            (PolicyKind::Deviation, Defense::Standard),
            (PolicyKind::Deviation, Defense::Padded),
            (PolicyKind::Deviation, Defense::Age),
        ] {
            let res = runner.run(p, d, 0.5, CipherChoice::ChaCha20, true);
            total += res.mean_mae() + res.weighted_mae();
        }
        total
    });

    // Figure 5 cell: one budget's series on Activity.
    let activity = Runner::new(DatasetKind::Activity, Scale::Small, 3);
    h.bench("experiment/fig5_cell", || {
        let std_res = activity.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            true,
        );
        let age_res = activity.run(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            true,
        );
        (std_res.mean_mae(), age_res.mean_mae())
    });

    // Table 6 cell: NMI plus a reduced permutation test.
    let pavement = Runner::new(DatasetKind::Pavement, Scale::Small, 3);
    let res = pavement.run(
        PolicyKind::Linear,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    let obs = res.observations();
    let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = obs.iter().map(|&(_, m)| m).collect();
    h.bench("experiment/table6_cell", || {
        age_attack::permutation_test(&labels, &sizes, 60, 1)
    });

    // Figure 6 / Figure 7 cell: one classifier attack evaluation.
    let epilepsy_res = runner.run(
        PolicyKind::Linear,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    let epilepsy_obs = epilepsy_res.observations();
    let attack = age_attack::ClassifierAttack {
        total_samples: 300,
        n_estimators: 10,
        ..Default::default()
    };
    h.bench("experiment/fig6_fig7_cell", || attack.run(&epilepsy_obs));

    // Table 7 cell: a Skip RNN run with and without AGE.
    let strawberry = Runner::new(DatasetKind::Strawberry, Scale::Small, 3);
    // Train once outside the timing loop (the paper trains offline too).
    let _ = strawberry.run(
        PolicyKind::SkipRnn,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    h.bench("experiment/table7_cell", || {
        let std_res = strawberry.run(
            PolicyKind::SkipRnn,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        let age_res = strawberry.run(
            PolicyKind::SkipRnn,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        (std_res.nmi(), age_res.nmi())
    });

    // Table 8 cell: the three ablation variants against AGE.
    let tiselac = Runner::new(DatasetKind::Tiselac, Scale::Small, 3);
    h.bench("experiment/table8_cell", || {
        let mut total = 0.0;
        for d in [
            Defense::Age,
            Defense::Single,
            Defense::Unshifted,
            Defense::Pruned,
        ] {
            total += tiselac
                .run(PolicyKind::Linear, d, 0.5, CipherChoice::ChaCha20, true)
                .mean_mae();
        }
        total
    });

    // Table 9/10 cell: one MCU-mode run (75 sequences, AES-128 CBC).
    h.bench("experiment/table910_cell", || {
        let res = activity.run_limited(
            PolicyKind::Linear,
            Defense::Age,
            0.7,
            CipherChoice::Aes128Cbc,
            true,
            Some(75),
        );
        (res.mean_energy(), res.mean_mae())
    });

    h.finish();
}
