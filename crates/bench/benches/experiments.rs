//! One Criterion target per paper experiment, timing a representative cell
//! at reduced scale. The full tables come from the `repro` binary
//! (`cargo run -p age-bench --release --bin repro -- all`).

use age_bench::{run_experiment, Settings};
use age_datasets::{DatasetKind, Scale};
use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn quick() -> Settings {
    Settings::quick()
}

/// Figure 1 and Table 3 are cheap enough to run whole.
fn bench_cheap_experiments(c: &mut Criterion) {
    let s = quick();
    for id in ["fig1", "table3", "overhead"] {
        c.bench_function(&format!("experiment/{id}"), |b| {
            b.iter(|| black_box(run_experiment(black_box(id), &s).expect("known id")));
        });
    }
}

/// Table 1 cell: per-event size statistics of one adaptive policy.
fn bench_table1(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 3);
    c.bench_function("experiment/table1_cell", |b| {
        b.iter(|| {
            let res = runner.run(
                PolicyKind::Linear,
                Defense::Standard,
                0.7,
                CipherChoice::ChaCha20,
                false,
            );
            black_box(res.size_stats_by_label())
        });
    });
}

/// Table 4/5 cell: one dataset × one budget × the seven error configs.
fn bench_table45(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 3);
    c.bench_function("experiment/table45_cell", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for (p, d) in [
                (PolicyKind::Uniform, Defense::Standard),
                (PolicyKind::Linear, Defense::Standard),
                (PolicyKind::Linear, Defense::Padded),
                (PolicyKind::Linear, Defense::Age),
                (PolicyKind::Deviation, Defense::Standard),
                (PolicyKind::Deviation, Defense::Padded),
                (PolicyKind::Deviation, Defense::Age),
            ] {
                let res = runner.run(p, d, 0.5, CipherChoice::ChaCha20, true);
                total += res.mean_mae() + res.weighted_mae();
            }
            black_box(total)
        });
    });
}

/// Figure 5 cell: one budget's five series on Activity.
fn bench_fig5(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Activity, Scale::Small, 3);
    c.bench_function("experiment/fig5_cell", |b| {
        b.iter(|| {
            let std_res = runner.run(
                PolicyKind::Linear,
                Defense::Standard,
                0.5,
                CipherChoice::ChaCha20,
                true,
            );
            let age_res = runner.run(
                PolicyKind::Linear,
                Defense::Age,
                0.5,
                CipherChoice::ChaCha20,
                true,
            );
            black_box((std_res.mean_mae(), age_res.mean_mae()))
        });
    });
}

/// Table 6 cell: NMI plus a reduced permutation test.
fn bench_table6(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Pavement, Scale::Small, 3);
    let res = runner.run(
        PolicyKind::Linear,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    let obs = res.observations();
    let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
    let sizes: Vec<usize> = obs.iter().map(|&(_, m)| m).collect();
    c.bench_function("experiment/table6_cell", |b| {
        b.iter(|| black_box(age_attack::permutation_test(&labels, &sizes, 60, 1)));
    });
}

/// Figure 6 / Figure 7 cell: one classifier attack evaluation.
fn bench_fig67(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 3);
    let res = runner.run(
        PolicyKind::Linear,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    let obs = res.observations();
    let attack = age_attack::ClassifierAttack {
        total_samples: 300,
        n_estimators: 10,
        ..Default::default()
    };
    c.bench_function("experiment/fig6_fig7_cell", |b| {
        b.iter(|| black_box(attack.run(black_box(&obs))));
    });
}

/// Table 7 cell: a Skip RNN run with and without AGE.
fn bench_table7(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Strawberry, Scale::Small, 3);
    // Train once outside the timing loop (the paper trains offline too).
    let _ = runner.run(
        PolicyKind::SkipRnn,
        Defense::Standard,
        0.5,
        CipherChoice::ChaCha20,
        false,
    );
    c.bench_function("experiment/table7_cell", |b| {
        b.iter(|| {
            let std_res = runner.run(
                PolicyKind::SkipRnn,
                Defense::Standard,
                0.5,
                CipherChoice::ChaCha20,
                false,
            );
            let age_res = runner.run(
                PolicyKind::SkipRnn,
                Defense::Age,
                0.5,
                CipherChoice::ChaCha20,
                false,
            );
            black_box((std_res.nmi(), age_res.nmi()))
        });
    });
}

/// Table 8 cell: the three ablation variants against AGE.
fn bench_table8(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Tiselac, Scale::Small, 3);
    c.bench_function("experiment/table8_cell", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for d in [
                Defense::Age,
                Defense::Single,
                Defense::Unshifted,
                Defense::Pruned,
            ] {
                total += runner
                    .run(PolicyKind::Linear, d, 0.5, CipherChoice::ChaCha20, true)
                    .mean_mae();
            }
            black_box(total)
        });
    });
}

/// Table 9/10 cell: one MCU-mode run (75 sequences, AES-128 CBC).
fn bench_table910(c: &mut Criterion) {
    let runner = Runner::new(DatasetKind::Activity, Scale::Small, 3);
    c.bench_function("experiment/table910_cell", |b| {
        b.iter(|| {
            let res = runner.run_limited(
                PolicyKind::Linear,
                Defense::Age,
                0.7,
                CipherChoice::Aes128Cbc,
                true,
                Some(75),
            );
            black_box((res.mean_energy(), res.mean_mae()))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_cheap_experiments, bench_table1, bench_table45, bench_fig5, bench_table6,
        bench_fig67, bench_table7, bench_table8, bench_table910
}
criterion_main!(benches);
