//! End-to-end simulator for the AGE evaluation (paper §5).
//!
//! The simulator mirrors the paper's setup: a sensor runs a sampling policy
//! over each sequence, encodes the collected batch (standard, padded, AGE,
//! or an ablation variant), encrypts it, and "transmits" it under an energy
//! budget; the server decrypts, decodes, and linearly interpolates; a
//! passive attacker records the message lengths. Budgets are set from
//! Uniform sampling's energy at collection rates 30%…100% (§5.1), and a
//! policy that exhausts its long-term budget loses all remaining sequences
//! (the server substitutes random values).
//!
//! [`Runner`] caches the generated dataset, fitted thresholds, and the
//! trained Skip RNN so a full table sweep does not refit per cell.
//!
//! # Examples
//!
//! ```
//! use age_datasets::{DatasetKind, Scale};
//! use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
//!
//! let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 42);
//! let result = runner.run(
//!     PolicyKind::Linear,
//!     Defense::Age,
//!     0.5,
//!     CipherChoice::ChaCha20,
//!     true,
//! );
//! // AGE: every transmitted message has the same size.
//! let sizes: Vec<usize> = result
//!     .records
//!     .iter()
//!     .filter(|r| !r.violated)
//!     .map(|r| r.message_bytes)
//!     .collect();
//! assert!(sizes.windows(2).all(|w| w[0] == w[1]));
//! ```

pub mod clock;
pub mod fleet;
#[cfg(feature = "telemetry")]
pub mod monitor;
pub mod node;
mod runner;
pub mod sweep;
pub mod threats;

pub use age_transport::{FaultPlan, NvmFaultPlan, RetryPolicy};
pub use clock::{ClockModel, VirtualClock};
pub use runner::{
    rekey_scenario, CipherChoice, Defense, ExperimentResult, FaultSetup, PolicyKind, PowerFaults,
    Runner, SequenceRecord, TransportSummary,
};
pub use sweep::{default_threads, run_cells, SweepCell, SweepOptions};
pub use threats::{run_multi_event, run_with_faults, FaultyRun, MultiEventRun};
