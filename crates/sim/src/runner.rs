//! The experiment runner: policies × defenses × budgets over a dataset.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::clock::{ClockModel, VirtualClock};
use age_core::{
    target, AgeEncoder, Batch, BatchConfig, EncodeScratch, Encoder, PaddedEncoder, PrunedEncoder,
    SingleEncoder, StandardEncoder, UnshiftedEncoder,
};
use age_crypto::{AesCbc, AesCtr, ChaCha20, ChaCha20Poly1305, Cipher};
use age_datasets::{Dataset, DatasetKind, Scale, Sequence};
use age_energy::{BudgetLedger, EncoderCost, EnergyModel, MilliJoules};
use age_nn::{fit_gate_bias, SkipRnn, SkipRnnPolicy, Trainer};
use age_reconstruct::{interpolate, mae, std_deviation};
use age_sampling::{
    fit_threshold, DeviationPolicy, LinearPolicy, Policy, RandomPolicy, UniformPolicy,
};
use age_telemetry::{DetRng, Tracer};
use age_transport::{
    chacha20poly1305_factory, epoch_skip_budget, ChannelStats, FaultChannel, FaultPlan, Link,
    LinkStats, NvmFaultPlan, NvmStore, Receiver, RetryPolicy, Sensor, SequenceJournal, MAX_SKIP,
};

/// Which sampling policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Evenly spaced, non-adaptive (the paper's primary baseline).
    Uniform,
    /// Bernoulli, non-adaptive (omitted from the paper's tables; Uniform
    /// dominates it).
    Random,
    /// Chatterjea & Havinga's difference-threshold policy \[25\].
    Linear,
    /// Silva et al.'s moving-deviation policy \[96\].
    Deviation,
    /// The trained Skip RNN policy \[22\] (§5.5).
    SkipRnn,
}

impl PolicyKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Uniform => "Uniform",
            PolicyKind::Random => "Random",
            PolicyKind::Linear => "Linear",
            PolicyKind::Deviation => "Deviation",
            PolicyKind::SkipRnn => "Skip RNN",
        }
    }
}

/// Which message-size defense to apply between sampling and encryption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defense {
    /// No defense: the standard variable-length message (leaks).
    Standard,
    /// BuFLO-style padding to the largest evaluation batch (§5.1).
    Padded,
    /// Adaptive Group Encoding (§4).
    Age,
    /// Ablation: one global width, static exponent (§5.6).
    Single,
    /// Ablation: six even groups, static exponent (§5.6).
    Unshifted,
    /// Ablation: pruning only, full-width survivors (§5.6).
    Pruned,
}

impl Defense {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Defense::Standard => "Std",
            Defense::Padded => "Padded",
            Defense::Age => "AGE",
            Defense::Single => "Single",
            Defense::Unshifted => "Unshifted",
            Defense::Pruned => "Pruned",
        }
    }

    fn encoder_cost(&self) -> EncoderCost {
        match self {
            // Only AGE runs the multi-step pipeline; everything else writes
            // values straight into a buffer.
            Defense::Age => EncoderCost::Age,
            _ => EncoderCost::Standard,
        }
    }
}

/// Which cipher encrypts the batched messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CipherChoice {
    /// RFC 7539 stream cipher — the paper's simulator default.
    ChaCha20,
    /// RFC 7539 AEAD (ChaCha20 + Poly1305 tag): authenticated messages.
    ChaCha20Poly1305,
    /// AES-128 in counter mode (stream-like framing).
    Aes128Ctr,
    /// AES-128 in CBC mode with PKCS#7 padding — the paper's MCU setting.
    Aes128Cbc,
}

impl CipherChoice {
    pub(crate) fn build(&self) -> Box<dyn Cipher> {
        match self {
            CipherChoice::ChaCha20 => Box::new(ChaCha20::new([0x42; 32])),
            CipherChoice::ChaCha20Poly1305 => Box::new(ChaCha20Poly1305::new([0x42; 32])),
            CipherChoice::Aes128Ctr => Box::new(AesCtr::new([0x42; 16])),
            CipherChoice::Aes128Cbc => Box::new(AesCbc::new([0x42; 16])),
        }
    }
}

/// Brownout schedule for a transport-backed run: the sensor loses power at
/// deterministic, seeded points — sometimes after the sequence journal
/// persisted a reservation but before the frame radiated — and must recover
/// without ever reusing a nonce. Enabling it routes every send through an
/// NVM-backed [`SequenceJournal`], whose flash writes are billed against
/// the same energy ledger as the radio.
///
/// Like the channel's [`FaultPlan`], the schedule is a pure function of the
/// seed and the cell coordinates, so sweeps stay byte-identical at any
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFaults {
    /// Per-message probability of a power cut before the send. Each cut is
    /// equally likely to strike before the seal or between the journal
    /// write and the radio transmission (the torn-frame window).
    pub reset_rate: f64,
    /// Base seed for the cut schedule, mixed with the cell coordinates.
    pub seed: u64,
    /// Journal reservation block size `K`: one NVM write per `K` frames.
    pub block: u64,
    /// Fault plan for the simulated NVM store itself (its seed field is
    /// ignored; the store is seeded from the cell coordinates).
    pub nvm: NvmFaultPlan,
}

impl PowerFaults {
    /// A schedule cutting power before each message with probability
    /// `reset_rate`, over mildly unreliable NVM and the default journal
    /// block size.
    pub fn at_rate(reset_rate: f64, seed: u64) -> Self {
        PowerFaults {
            reset_rate,
            seed,
            block: SequenceJournal::DEFAULT_BLOCK,
            nvm: NvmFaultPlan {
                fail_rate: 0.02,
                torn_rate: 0.05,
                seed: 0,
            },
        }
    }
}

/// Fault-injection setup for a transport-backed run: the channel's fault
/// rates, the sensor's retry/backoff policy, and (optionally) a power-cut
/// schedule with journal-backed recovery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSetup {
    /// Channel fault probabilities and base seed.
    pub plan: FaultPlan,
    /// Retry/timeout policy for unacknowledged frames.
    pub retry: RetryPolicy,
    /// Brownout schedule; `None` leaves the sensor reset-free and
    /// journal-free (the pre-recovery behavior, byte-identical).
    pub power: Option<PowerFaults>,
    /// Epoch rekeying: `Some(interval)` replaces the static session key
    /// with a per-cell ratchet root, rotating every `interval` sequence
    /// numbers (write-ahead journaled when `power` attaches a journal).
    /// Rekeying always seals with the ChaCha20-Poly1305 AEAD — the
    /// ratchet's epoch keys feed the cipher factory on both ends — so
    /// pair it with [`CipherChoice::ChaCha20Poly1305`]. `None` keeps the
    /// static single-key link, byte-identical to before.
    pub rekey_interval: Option<u64>,
}

impl FaultSetup {
    /// A setup over `plan` with the default retry policy and no power cuts.
    pub fn new(plan: FaultPlan) -> Self {
        FaultSetup {
            plan,
            retry: RetryPolicy::default(),
            power: None,
            rekey_interval: None,
        }
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Adds a brownout schedule (and with it, the sequence journal).
    pub fn with_power(mut self, power: PowerFaults) -> Self {
        self.power = Some(power);
        self
    }

    /// Enables epoch rekeying every `interval` sequence numbers.
    pub fn with_rekey(mut self, interval: u64) -> Self {
        self.rekey_interval = Some(interval);
        self
    }
}

/// The "rekey under fire" preset: scheduled rotations every `interval`
/// sequence numbers interleaved with journal-backed brownouts (torn NVM
/// writes included) and a dropping, corrupting channel. Used by the
/// `rekey` repro extension and the CI soak leg, whose contract is that
/// the nonce audit stays green and the wire stays byte-constant across
/// every rotation this setup forces.
pub fn rekey_scenario(interval: u64, reset_rate: f64, seed: u64) -> FaultSetup {
    FaultSetup::new(FaultPlan {
        drop_rate: 0.05,
        corrupt_rate: 0.02,
        seed,
        ..FaultPlan::NONE
    })
    .with_power(PowerFaults::at_rate(reset_rate, seed))
    .with_rekey(interval)
}

/// Transport-layer rollup of a fault-injected run. Deterministic per seed,
/// so it participates in byte-identical result comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportSummary {
    /// Link session counters (sent/retried/delivered/rejected/lost).
    pub link: LinkStats,
    /// Channel-side fault counters and wire-length extremes.
    pub channel: ChannelStats,
}

/// Per-sequence outcome of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequenceRecord {
    /// Ground-truth event label.
    pub label: usize,
    /// On-air message length the attacker observes (0 if never sent).
    pub message_bytes: usize,
    /// Reconstruction MAE against the true sequence.
    pub mae: f64,
    /// The sequence's standard deviation (Table 5 weighting).
    pub weight: f64,
    /// Energy spent on this sequence.
    pub energy_mj: f64,
    /// `true` if the budget was exhausted and the sequence was lost.
    pub violated: bool,
    /// Measurements the policy collected.
    pub collected: usize,
    /// Transmissions the transport used (1 = no retries; 0 if never sent).
    pub attempts: u32,
    /// `true` if the transport abandoned the message or the server could
    /// not decode what arrived (distinct from a budget violation: the
    /// energy was spent and the attacker saw the frames).
    pub lost: bool,
    /// Virtual time (µs) at which the frame's first radiation completed —
    /// the send stamp a timing eavesdropper records. 0 if nothing ever
    /// went on the air (budget violation, or the journal died first).
    pub sent_at_us: u64,
    /// Key epoch the frame was sealed under — always 0 on static-key
    /// paths, so single-link runs audit `(sensor, epoch, sequence)`
    /// exactly like fleet runs once rekeying is enabled.
    pub epoch: u64,
}

/// Aggregated result of one (policy, defense, budget) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Per-sequence records in evaluation order.
    pub records: Vec<SequenceRecord>,
    /// The budget's collection rate.
    pub rate: f64,
    /// Policy display name.
    pub policy: &'static str,
    /// Defense display name.
    pub defense: &'static str,
    /// Per-sequence energy budget.
    pub budget_per_seq: MilliJoules,
    /// Transport counters when the run went through the fault-injected
    /// link; `None` for the plain seal/open path.
    pub transport: Option<TransportSummary>,
}

impl ExperimentResult {
    /// Arithmetic mean MAE over all sequences (Table 4).
    pub fn mean_mae(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.mae).sum::<f64>() / self.records.len() as f64
    }

    /// Deviation-weighted mean MAE (Table 5).
    pub fn weighted_mae(&self) -> f64 {
        let total_weight: f64 = self.records.iter().map(|r| r.weight).sum();
        if total_weight <= 0.0 {
            return self.mean_mae();
        }
        self.records.iter().map(|r| r.mae * r.weight).sum::<f64>() / total_weight
    }

    /// `(label, message size)` pairs for transmitted sequences — the
    /// attacker's observations.
    pub fn observations(&self) -> Vec<(usize, usize)> {
        self.records
            .iter()
            .filter(|r| !r.violated)
            .map(|r| (r.label, r.message_bytes))
            .collect()
    }

    /// Empirical NMI between event labels and message sizes (Table 6).
    pub fn nmi(&self) -> f64 {
        let obs = self.observations();
        let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = obs.iter().map(|&(_, s)| s).collect();
        age_attack::nmi(&labels, &sizes)
    }

    /// `(label, inter-transmission gap µs)` pairs for successive sent
    /// frames — what a timing-only eavesdropper observes. Each gap is
    /// labeled with the *arriving* frame's event, whose radio
    /// serialization (and any backoff) shaped it.
    pub fn timing_observations(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut last: Option<u64> = None;
        for r in &self.records {
            if r.violated || r.sent_at_us == 0 {
                continue;
            }
            if let Some(prev) = last {
                if r.sent_at_us > prev {
                    out.push((r.label, (r.sent_at_us - prev) as usize));
                }
            }
            last = Some(r.sent_at_us);
        }
        out
    }

    /// Empirical NMI between event labels and inter-transmission gaps —
    /// the timing channel's counterpart to [`nmi`](Self::nmi).
    pub fn timing_nmi(&self) -> f64 {
        let obs = self.timing_observations();
        let labels: Vec<usize> = obs.iter().map(|&(l, _)| l).collect();
        let gaps: Vec<usize> = obs.iter().map(|&(_, g)| g).collect();
        age_attack::nmi(&labels, &gaps)
    }

    /// Mean energy per *transmitted* sequence (Table 9): violated sequences
    /// spend nothing and would make an over-budget defense look cheap.
    pub fn mean_energy(&self) -> MilliJoules {
        let sent: Vec<f64> = self
            .records
            .iter()
            .filter(|r| !r.violated)
            .map(|r| r.energy_mj)
            .collect();
        if sent.is_empty() {
            return MilliJoules::ZERO;
        }
        MilliJoules(sent.iter().sum::<f64>() / sent.len() as f64)
    }

    /// Number of sequences lost to budget violations.
    pub fn violations(&self) -> usize {
        self.records.iter().filter(|r| r.violated).count()
    }

    /// Number of sequences lost in transit (transport gave up or the
    /// server could not decode what arrived). Always 0 on the plain path.
    pub fn losses(&self) -> usize {
        self.records.iter().filter(|r| r.lost).count()
    }

    /// Mean and standard deviation of message sizes per event label
    /// (Table 1); labels with no transmitted messages are omitted.
    pub fn size_stats_by_label(&self) -> Vec<(usize, f64, f64, usize)> {
        let obs = self.observations();
        let max_label = obs.iter().map(|&(l, _)| l).max();
        let Some(max_label) = max_label else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for label in 0..=max_label {
            let sizes: Vec<f64> = obs
                .iter()
                .filter(|&&(l, _)| l == label)
                .map(|&(_, s)| s as f64)
                .collect();
            if sizes.is_empty() {
                continue;
            }
            let n = sizes.len();
            let mean = sizes.iter().sum::<f64>() / n as f64;
            let var = sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
            out.push((label, mean, var.sqrt(), n));
        }
        out
    }
}

/// Caches a generated dataset, fitted thresholds, and the trained Skip RNN,
/// and runs (policy × defense × budget) experiments over its test split.
///
/// The caches live behind [`Mutex`]es so a `&Runner` can be shared across
/// sweep worker threads (see [`crate::sweep`]); all fitting is
/// deterministic, so concurrent fill-in always converges to the same
/// values regardless of thread interleaving.
pub struct Runner {
    data: Dataset,
    batch_cfg: BatchConfig,
    energy: EnergyModel,
    seed: u64,
    train_count: usize,
    bounds: (f64, f64),
    fit_margin: f64,
    thresholds: Mutex<HashMap<(PolicyKind, u32), f64>>,
    skip_rnn: Mutex<Option<SkipRnn>>,
}

impl Runner {
    /// Fraction of sequences used for offline threshold/model fitting.
    const TRAIN_FRAC: f64 = 0.3;
    /// Hidden units of the Skip RNN policy.
    const RNN_HIDDEN: usize = 12;

    /// Generates the dataset and prepares an experiment runner.
    pub fn new(kind: DatasetKind, scale: Scale, seed: u64) -> Self {
        Self::with_dataset(Dataset::generate(kind, scale, seed), seed)
    }

    /// Prepares a runner over an existing dataset — including one built
    /// from real recordings via [`Dataset::from_sequences`].
    pub fn with_dataset(data: Dataset, seed: u64) -> Self {
        let spec = *data.spec();
        let batch_cfg = BatchConfig::new(spec.seq_len, spec.features, spec.format)
            .expect("Table 3 specs are valid batch configurations");
        let train_count = ((data.sequences().len() as f64 * Self::TRAIN_FRAC) as usize)
            .clamp(1, data.sequences().len() - 1);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for seq in data.sequences() {
            for &v in &seq.values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        Runner {
            data,
            batch_cfg,
            energy: EnergyModel::msp430(),
            seed,
            train_count,
            bounds: (lo, hi),
            fit_margin: Self::FIT_MARGIN,
            thresholds: Mutex::new(HashMap::new()),
            skip_rnn: Mutex::new(None),
        }
    }

    /// Overrides the offline-fit safety margin (default
    /// [`Runner::FIT_MARGIN`]); `1.0` targets the budget rate exactly.
    /// Clears any cached thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is outside `(0, 1]`.
    pub fn with_fit_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0, 1]");
        self.fit_margin = margin;
        self.thresholds
            .get_mut()
            .expect("no other runner handles")
            .clear();
        self
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// The batching configuration derived from Table 3.
    pub fn batch_config(&self) -> &BatchConfig {
        &self.batch_cfg
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// Test-split sequences (everything after the training prefix).
    pub fn test_sequences(&self) -> &[Sequence] {
        &self.data.sequences()[self.train_count..]
    }

    /// Instantiates a cipher for `choice` (the keys the simulator uses).
    pub fn cipher(&self, choice: CipherChoice) -> Box<dyn Cipher> {
        choice.build()
    }

    fn train_slices(&self) -> Vec<&[f64]> {
        self.data.sequences()[..self.train_count]
            .iter()
            .map(|s| s.values.as_slice())
            .collect()
    }

    /// Per-sequence energy budget at a collection rate: Uniform sampling's
    /// cost with the given cipher (§5.1).
    pub fn budget_per_seq(&self, rate: f64, cipher: CipherChoice) -> MilliJoules {
        let spec = self.data.spec();
        let cipher = cipher.build();
        let k = ((rate * spec.seq_len as f64) as usize).clamp(1, spec.seq_len);
        let plain = self.batch_cfg.standard_message_bytes(k);
        self.energy
            .uniform_budget(spec.seq_len, spec.features, rate, cipher.message_len(plain))
    }

    /// Builds (and caches the tuning of) a policy at a collection rate.
    pub fn policy(&self, kind: PolicyKind, rate: f64) -> Box<dyn Policy> {
        let spec = self.data.spec();
        let d = spec.features;
        match kind {
            PolicyKind::Uniform => Box::new(UniformPolicy::new(rate.clamp(1e-3, 1.0))),
            PolicyKind::Random => Box::new(RandomPolicy::new(rate.clamp(1e-3, 1.0), self.seed)),
            PolicyKind::Linear => {
                // Bound collection gaps relative to the sequence length —
                // unbounded periods on long, flat stretches produce gaps the
                // server cannot interpolate across.
                let cap = (spec.seq_len / 10).max(5);
                let thr = self.fitted_threshold(PolicyKind::Linear, rate, |t| {
                    Box::new(LinearPolicy::new(t).with_max_period(cap))
                });
                Box::new(LinearPolicy::new(thr).with_max_period(cap))
            }
            PolicyKind::Deviation => {
                // Doubling dynamics need a cap proportional to the sequence:
                // a period of 16 on Tiselac's 23-step sequences skips nearly
                // the whole batch in one decision.
                let cap = (spec.seq_len / 8).clamp(4, 16);
                let thr = self.fitted_threshold(PolicyKind::Deviation, rate, |t| {
                    Box::new(DeviationPolicy::new(t).with_max_period(cap))
                });
                Box::new(DeviationPolicy::new(thr).with_max_period(cap))
            }
            PolicyKind::SkipRnn => {
                let model = self.trained_rnn();
                let key = (PolicyKind::SkipRnn, (rate * 1000.0) as u32);
                let cached = self
                    .thresholds
                    .lock()
                    .expect("no poisoned fits")
                    .get(&key)
                    .copied();
                let bias = cached.unwrap_or_else(|| {
                    // Fit outside the lock; a concurrent duplicate fit is
                    // deterministic, so last-writer-wins is harmless.
                    let bias = fit_gate_bias(
                        &model,
                        &self.train_slices(),
                        d,
                        (rate * Self::FIT_MARGIN).clamp(1e-3, 1.0),
                        18,
                    );
                    self.thresholds
                        .lock()
                        .expect("no poisoned fits")
                        .insert(key, bias);
                    bias
                });
                Box::new(SkipRnnPolicy::new(model, bias))
            }
        }
    }

    /// Safety margin on the fitted collection rate: the offline fit targets
    /// slightly under the budget's rate so train/test generalization error
    /// does not push the realized energy over the long-term budget (a
    /// handful of randomized tail sequences would dominate the MAE).
    pub const FIT_MARGIN: f64 = 0.96;

    fn fitted_threshold<F>(&self, kind: PolicyKind, rate: f64, make: F) -> f64
    where
        F: Fn(f64) -> Box<dyn Policy>,
    {
        let key = (kind, (rate * 1000.0) as u32);
        if let Some(&thr) = self.thresholds.lock().expect("no poisoned fits").get(&key) {
            return thr;
        }
        // Fit outside the lock so sweep workers fitting different cells
        // don't serialize; the fit is deterministic, so two threads racing
        // on the same key insert the same value.
        let span = (self.bounds.1 - self.bounds.0).max(1e-6);
        let hi = span * self.data.spec().features as f64;
        let train = self.train_slices();
        let thr = fit_threshold(
            |t| PolicyRef(make(t)),
            &train,
            self.data.spec().features,
            (rate * self.fit_margin).clamp(1e-3, 1.0),
            hi,
            22,
        );
        self.thresholds
            .lock()
            .expect("no poisoned fits")
            .insert(key, thr);
        thr
    }

    fn trained_rnn(&self) -> SkipRnn {
        // Unlike threshold fits, training is expensive enough that we hold
        // the lock for its duration rather than risk duplicate work.
        let mut cache = self.skip_rnn.lock().expect("no poisoned training");
        if let Some(model) = cache.as_ref() {
            return model.clone();
        }
        let d = self.data.spec().features;
        // Cap BPTT cost on long datasets: train on sequence prefixes.
        let cap = 400 * d;
        let train: Vec<&[f64]> = self
            .train_slices()
            .into_iter()
            .map(|s| if s.len() > cap { &s[..cap] } else { s })
            .collect();
        let model = Trainer::new(d, Self::RNN_HIDDEN, self.seed ^ 0xD1CE)
            .epochs(2)
            .target_rate(0.5)
            .rate_weight(2.0)
            .train(&train);
        *cache = Some(model.clone());
        model
    }

    /// Builds the defense's encoder for a budget rate. Fixed-length targets
    /// derive from the paper's `M_B` minus AGE's §4.5 self-financing
    /// reduction, adapted to the cipher's framing.
    fn encoder(
        &self,
        defense: Defense,
        rate: f64,
        cipher: &dyn Cipher,
        policy: &dyn Policy,
        test: &[Sequence],
    ) -> Box<dyn Encoder> {
        let d = self.data.spec().features;
        match defense {
            Defense::Standard => Box::new(StandardEncoder),
            Defense::Padded => {
                // Minimal padding: the largest batch in the evaluation data.
                let max_k = test
                    .iter()
                    .map(|s| policy.sample(&s.values, d).len())
                    .max()
                    .unwrap_or(self.batch_cfg.max_len());
                Box::new(PaddedEncoder::new(
                    self.batch_cfg.standard_message_bytes(max_k),
                ))
            }
            fixed => {
                let m_b = target::target_bytes(&self.batch_cfg, rate);
                let on_air = target::reduced_target_bytes(m_b);
                let plain = target::plaintext_budget(on_air, cipher.kind(), cipher.overhead(), 16)
                    .max(AgeEncoder::min_target_bytes(&self.batch_cfg));
                match fixed {
                    Defense::Age => Box::new(AgeEncoder::new(plain)),
                    Defense::Single => Box::new(SingleEncoder::new(plain)),
                    Defense::Unshifted => Box::new(UnshiftedEncoder::new(plain)),
                    Defense::Pruned => Box::new(PrunedEncoder::new(plain)),
                    _ => unreachable!("variable-length defenses handled above"),
                }
            }
        }
    }

    /// Runs one experiment over the test split.
    ///
    /// `enforce_budget = true` applies the long-term energy budget with the
    /// paper's violation semantics; `false` evaluates rate-targeted
    /// sampling without budgets (used for the Skip RNN study, §5.5).
    pub fn run(
        &self,
        policy: PolicyKind,
        defense: Defense,
        rate: f64,
        cipher: CipherChoice,
        enforce_budget: bool,
    ) -> ExperimentResult {
        self.run_limited(policy, defense, rate, cipher, enforce_budget, None)
    }

    /// Like [`Runner::run`] but over only the first `limit` test sequences —
    /// the MCU experiments use 75 (§5.7).
    pub fn run_limited(
        &self,
        policy_kind: PolicyKind,
        defense: Defense,
        rate: f64,
        cipher_choice: CipherChoice,
        enforce_budget: bool,
        limit: Option<usize>,
    ) -> ExperimentResult {
        self.run_with_transport(
            policy_kind,
            defense,
            rate,
            cipher_choice,
            enforce_budget,
            limit,
            None,
        )
    }

    /// Derives an independent, reproducible fault-stream seed for one
    /// experiment cell: a pure function of the runner seed, the plan seed,
    /// and the cell coordinates, so sweeps stay byte-identical at any
    /// thread count while no two cells share a fault pattern.
    fn transport_seed(
        &self,
        policy: PolicyKind,
        defense: Defense,
        rate: f64,
        cipher: CipherChoice,
        plan_seed: u64,
    ) -> u64 {
        let mut s = self.seed
            ^ plan_seed.rotate_left(31)
            ^ rate.to_bits().rotate_left(13)
            ^ ((policy as u64) << 3)
            ^ ((defense as u64) << 7)
            ^ ((cipher as u64) << 11);
        // SplitMix64 finalizer to decorrelate neighbouring cells.
        s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        s ^ (s >> 31)
    }

    /// Like [`Runner::run_limited`] but optionally routing every message
    /// through the real [`age_transport`] link: frames are sealed under
    /// per-sequence nonces, pushed through a deterministic fault channel,
    /// retried with exponential backoff (retransmission energy is charged
    /// against the same budget), and decoded only if the receiver accepts
    /// them. Undelivered or undecodable sequences become `lost` records —
    /// the server substitutes a guess, exactly like a budget violation,
    /// but the energy stays spent and the attacker still saw the frames.
    ///
    /// With `faults: None` this is byte-identical to [`Runner::run_limited`].
    // One positional argument per experiment axis, mirroring `run_limited`;
    // bundling them would just move the axis list into a one-off struct.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_transport(
        &self,
        policy_kind: PolicyKind,
        defense: Defense,
        rate: f64,
        cipher_choice: CipherChoice,
        enforce_budget: bool,
        limit: Option<usize>,
        faults: Option<FaultSetup>,
    ) -> ExperimentResult {
        let spec = self.data.spec();
        let d = spec.features;
        let cipher = cipher_choice.build();
        let policy = self.policy(policy_kind, rate);
        let test_all = self.test_sequences();
        let test = match limit {
            Some(n) => &test_all[..n.min(test_all.len())],
            None => test_all,
        };
        let encoder = self.encoder(defense, rate, cipher.as_ref(), policy.as_ref(), test);
        let budget_per_seq = self.budget_per_seq(rate, cipher_choice);
        let mut ledger = BudgetLedger::new(budget_per_seq * test.len() as f64);
        let mut rng = DetRng::seed_from_u64(self.seed ^ 0xBAD_B0D6E7);

        // Name the telemetry stream for this experiment cell; the encoders
        // stamp every per-batch record with it. The collection rate is part
        // of the name because the fixed message target (AGE, Padded) is
        // chosen per rate — pooling rates would show size variance that no
        // eavesdropper of a single deployment ever observes.
        let label = format!(
            "{}/{}/{}/r{:.2}",
            self.data.spec().name,
            policy_kind.name(),
            defense.name(),
            rate
        );
        // Virtual time for this cell. Advancement is unconditional — never
        // feature-gated — so telemetry and MCU builds walk the exact same
        // schedule and produce identical `sent_at_us` stamps; only the
        // emission side (wire records, trace spans) is gated.
        let mut clock = VirtualClock::new(ClockModel::default());
        let mut tracer = Tracer::new(&label);
        #[cfg(feature = "telemetry")]
        let cell_epoch = age_telemetry::begin_epoch(&format!(
            "{label}|{cipher_choice:?}|budget={enforce_budget}|limit={limit:?}|faults={faults:?}"
        ));
        #[cfg(feature = "telemetry")]
        {
            age_telemetry::set_context_label(&label);
            // The nonce audit keys on (epoch, sequence): every run of every
            // cell gets a fresh key epoch, so only a genuine re-seal within
            // one run — a broken reboot recovery — collides. The identity
            // includes every axis the label omits, because two cells that
            // differ only in cipher or budget still hold distinct keys.
            // Rekeying cells later refine this base string with the link's
            // key epoch, so a rotation also rotates the audit cell.
            age_telemetry::set_context_epoch(&cell_epoch);
        }

        let mut records = Vec::with_capacity(test.len());
        let mut scratch = EncodeScratch::new();
        let mut plaintext = Vec::new();
        let mut message = Vec::new();
        let mut opened = Vec::new();
        let mut transport = None;

        if let Some(setup) = faults {
            let channel_seed =
                self.transport_seed(policy_kind, defense, rate, cipher_choice, setup.plan.seed);
            let mut link = match setup.rekey_interval {
                Some(interval) => {
                    // Both endpoints ratchet from the same per-cell root;
                    // the receiver's epoch-skip budget covers the jump a
                    // journal-block brownout can produce.
                    let root = age_crypto::kdf::sensor_root(
                        &age_crypto::kdf::fleet_secret(channel_seed),
                        0,
                    );
                    Link::with_parts(
                        Sensor::with_rekey(root, interval, 0, chacha20poly1305_factory),
                        Receiver::with_ratchet(
                            root,
                            MAX_SKIP,
                            epoch_skip_budget(MAX_SKIP, interval),
                            chacha20poly1305_factory,
                        ),
                        FaultChannel::with_seed(setup.plan, channel_seed),
                        setup.retry,
                    )
                }
                None => Link::with_channel(
                    cipher_choice.build(),
                    cipher_choice.build(),
                    FaultChannel::with_seed(setup.plan, channel_seed),
                    setup.retry,
                ),
            };
            // With a brownout schedule the sensor sends through the NVM
            // journal, and an independent seeded stream decides where the
            // power cuts fall. Both streams are pure functions of the cell
            // coordinates, like the channel's.
            let mut cuts = None;
            if let Some(power) = setup.power {
                let base =
                    self.transport_seed(policy_kind, defense, rate, cipher_choice, power.seed);
                let nvm = NvmStore::with_seed(power.nvm, base ^ 0xA5A5_5A5A_0F0F_F0F0);
                link = link.with_journal(SequenceJournal::new(nvm, power.block));
                cuts = Some((
                    DetRng::seed_from_u64(base ^ 0x0FF1_CE00_D15E_A5ED),
                    power.reset_rate,
                ));
            }
            let mut nvm_writes = link.journal_write_attempts();
            // The key epoch the wire-record audit currently attributes
            // frames to; epoch 0 keeps the base cell string so static
            // cells emit byte-identical records.
            #[cfg(feature = "telemetry")]
            let mut wire_epoch = 0u64;

            /// Sensor-side state of one sequence, pending the decode pass.
            struct Pending {
                label: usize,
                wire_seq: u64,
                weight: f64,
                collected: usize,
                frame_len: usize,
                attempts: u32,
                energy_mj: f64,
                violated: bool,
                sent_at_us: u64,
                epoch: u64,
            }
            // Pass 1 — transmit. Accepted payloads are keyed by sequence
            // number because a reordered frame can surface during a later
            // send (or only at the final flush).
            let mut pending = Vec::with_capacity(test.len());
            let mut arrived: HashMap<u64, Vec<u8>> = HashMap::new();
            for (i, seq) in test.iter().enumerate() {
                let truth = &seq.values;
                tracer.begin("sequence", "sim", clock.now_us());
                // The sensing window ticks whether or not the message later
                // clears the budget: sampling time is spent either way.
                tracer.begin("sample", "sim", clock.now_us());
                clock.advance_samples(spec.seq_len as u64);
                tracer.end(clock.now_us());
                let weight = std_deviation(truth);
                let indices = policy.sample(truth, d);
                let k = indices.len();
                let mut values = Vec::with_capacity(k * d);
                for &t in &indices {
                    values.extend_from_slice(&truth[t * d..(t + 1) * d]);
                }
                let batch = Batch::new(indices, values).expect("policy output is a valid batch");
                // Publish the ground-truth event so per-batch records and
                // wire records can be correlated against it by the audit.
                #[cfg(feature = "telemetry")]
                {
                    age_telemetry::set_context_event(Some(seq.label));
                    age_telemetry::set_context_vtime(clock.now_us());
                }
                tracer.begin("encode", "encode", clock.now_us());
                encoder
                    .encode_into(&batch, &self.batch_cfg, &mut scratch, &mut plaintext)
                    .expect("experiment encoders are configured with feasible targets");
                clock.advance_encode();
                tracer.end(clock.now_us());
                // Rekeying links always seal with the AEAD factory, so the
                // energy model's frame length comes from the AEAD layout
                // regardless of the cell's nominal cipher choice.
                let frame_len = match setup.rekey_interval {
                    Some(_) => ChaCha20Poly1305::new([0u8; 32]).message_len(plaintext.len()),
                    None => cipher.message_len(plaintext.len()),
                };
                let base_cost =
                    self.energy
                        .sequence_cost(k, k * d, frame_len, defense.encoder_cost());
                // Brownout injection: before this message goes out, the
                // schedule may cut power — either before anything happened
                // (a plain reboot) or in the torn window after the journal
                // reserved a sequence and sealed the frame but before the
                // radio fired. Both draws happen unconditionally so the
                // schedule never depends on earlier outcomes.
                if let Some((cut_rng, reset_rate)) = cuts.as_mut() {
                    let cut = cut_rng.gen_bool(*reset_rate);
                    let torn_window = cut_rng.gen_bool(0.5);
                    if cut {
                        if torn_window {
                            link.abort_send(&plaintext);
                        } else {
                            link.reboot_sensor();
                        }
                    }
                }
                if enforce_budget && !ledger.try_spend(base_cost) {
                    pending.push(Pending {
                        label: seq.label,
                        wire_seq: u64::MAX,
                        weight,
                        collected: 0,
                        frame_len: 0,
                        attempts: 0,
                        energy_mj: 0.0,
                        violated: true,
                        sent_at_us: 0,
                        epoch: link.sensor().epoch(),
                    });
                    tracer.end(clock.now_us());
                    continue;
                }
                // With a journal the link hands out the persisted sequence;
                // without one, sequences track the evaluation index exactly
                // as before recovery existed.
                tracer.begin("seal", "crypto", clock.now_us());
                clock.advance_seal();
                tracer.end(clock.now_us());
                // Rekeying links route through `send` even without a
                // journal: the RAM counter produces the same 0,1,2,…
                // numbering as the evaluation index, and `send` is where
                // the watermark rotation lives.
                let delivery = if link.has_journal() || setup.rekey_interval.is_some() {
                    link.send(&plaintext)
                } else {
                    link.send_as(i as u64, &plaintext)
                };
                // Journal flash writes (reservations, plus any brownout
                // recovery work since the last send) precede the radio.
                // This reads the same write counter the energy block below
                // settles, so the two see an identical per-sequence delta.
                let flash_writes = link.journal_write_attempts() - nvm_writes;
                if flash_writes > 0 {
                    tracer.begin("flash", "nvm", clock.now_us());
                    clock.advance_flash(flash_writes as u64);
                    tracer.end(clock.now_us());
                }
                // Replay the link's attempt schedule on the virtual clock:
                // each retransmission waits its capped backoff and then
                // radiates the same frame. The wire record is stamped with
                // the *first* radiation's completion — the instant an
                // eavesdropper first sees the message — while every retry
                // gets its own trace span.
                let mut sent_at_us = 0;
                for attempt in 0..delivery.attempts {
                    if attempt > 0 {
                        clock.advance_backoff_ms(setup.retry.timeout_ms(attempt - 1));
                    }
                    tracer.begin("attempt", "link", clock.now_us());
                    let done = clock.advance_radio(delivery.frame_len);
                    tracer.end(done);
                    if attempt == 0 {
                        sent_at_us = done;
                    }
                }
                if delivery.delivered {
                    tracer.begin("ack", "link", clock.now_us());
                    clock.advance_ack();
                    tracer.end(clock.now_us());
                }
                // Audit the *sealed* frame as the eavesdropper saw it — the
                // frame went on the air even if it was later lost in
                // transit. Zero attempts means the journal's NVM write was
                // exhausted and nothing ever radiated, so there is nothing
                // to observe.
                if delivery.attempts > 0 {
                    debug_assert_eq!(delivery.frame_len, frame_len);
                    // A rotation rotates the audit cell too: wire records
                    // seal under the link's key epoch, so the run-wide
                    // nonce audit keys on (cell, epoch, sequence) exactly
                    // like the fleet's (sensor, epoch, sequence).
                    #[cfg(feature = "telemetry")]
                    if setup.rekey_interval.is_some() && delivery.epoch != wire_epoch {
                        wire_epoch = delivery.epoch;
                        age_telemetry::set_context_epoch(&format!("{cell_epoch}|e{wire_epoch}"));
                    }
                    #[cfg(feature = "telemetry")]
                    if age_telemetry::active() {
                        age_telemetry::emit_wire(
                            defense.name(),
                            delivery.sequence,
                            seq.label,
                            delivery.frame_len,
                            sent_at_us,
                        );
                    }
                }
                // The radio spends retransmission energy before the sensor
                // can veto it; charging it may exhaust the ledger and
                // violate *later* sequences. Journal flash writes (cuts and
                // reservations alike) are billed against the same ledger.
                let retrans = self
                    .energy
                    .retransmission_cost(frame_len, delivery.attempts.saturating_sub(1));
                if enforce_budget && retrans.0 > 0.0 {
                    let _ = ledger.try_spend(retrans);
                }
                let journal_mj = {
                    let writes = link.journal_write_attempts();
                    let cost = self.energy.journal_write_cost(writes - nvm_writes);
                    nvm_writes = writes;
                    cost
                };
                if enforce_budget && journal_mj.0 > 0.0 {
                    let _ = ledger.try_spend(journal_mj);
                }
                for (seq_no, payload) in delivery.payloads {
                    arrived.entry(seq_no).or_insert(payload);
                }
                pending.push(Pending {
                    label: seq.label,
                    wire_seq: delivery.sequence,
                    weight,
                    collected: k,
                    frame_len: if delivery.attempts > 0 { frame_len } else { 0 },
                    attempts: delivery.attempts,
                    energy_mj: base_cost.0 + retrans.0 + journal_mj.0,
                    violated: false,
                    sent_at_us,
                    epoch: delivery.epoch,
                });
                tracer.end(clock.now_us());
            }
            for (seq_no, payload) in link.flush() {
                arrived.entry(seq_no).or_insert(payload);
            }

            // Pass 2 — decode what arrived, in evaluation order.
            for (i, info) in pending.into_iter().enumerate() {
                let truth = &test[i].values;
                if info.violated {
                    let guess: Vec<f64> = (0..truth.len())
                        .map(|_| rng.gen_range(self.bounds.0..=self.bounds.1))
                        .collect();
                    records.push(SequenceRecord {
                        label: info.label,
                        message_bytes: 0,
                        mae: mae(&guess, truth),
                        weight: info.weight,
                        energy_mj: 0.0,
                        violated: true,
                        collected: 0,
                        attempts: 0,
                        lost: false,
                        sent_at_us: 0,
                        epoch: info.epoch,
                    });
                    continue;
                }
                let decoded = arrived.remove(&info.wire_seq).and_then(|payload| {
                    match encoder.decode(&payload, &self.batch_cfg) {
                        Ok(batch) => Some(batch),
                        Err(_) => {
                            // Graceful degradation: an undecodable payload
                            // (possible under unauthenticated ciphers) skips
                            // the batch instead of panicking.
                            #[cfg(feature = "telemetry")]
                            age_telemetry::metrics::global::FRAMES_DECODE_FAILED.add(1);
                            None
                        }
                    }
                });
                match decoded {
                    Some(batch) => {
                        let recon = interpolate(batch.indices(), batch.values(), spec.seq_len, d);
                        records.push(SequenceRecord {
                            label: info.label,
                            message_bytes: info.frame_len,
                            mae: mae(&recon, truth),
                            weight: info.weight,
                            energy_mj: info.energy_mj,
                            violated: false,
                            collected: info.collected,
                            attempts: info.attempts,
                            lost: false,
                            sent_at_us: info.sent_at_us,
                            epoch: info.epoch,
                        });
                    }
                    None => {
                        // Lost in transit or mangled beyond decoding: the
                        // server guesses, the attacker still saw the
                        // fixed-size frames, and the energy stays spent.
                        let guess: Vec<f64> = (0..truth.len())
                            .map(|_| rng.gen_range(self.bounds.0..=self.bounds.1))
                            .collect();
                        records.push(SequenceRecord {
                            label: info.label,
                            message_bytes: info.frame_len,
                            mae: mae(&guess, truth),
                            weight: info.weight,
                            energy_mj: info.energy_mj,
                            violated: false,
                            collected: info.collected,
                            attempts: info.attempts,
                            lost: true,
                            sent_at_us: info.sent_at_us,
                            epoch: info.epoch,
                        });
                    }
                }
            }
            transport = Some(TransportSummary {
                link: *link.stats(),
                channel: *link.channel_stats(),
            });
        } else {
            for (i, seq) in test.iter().enumerate() {
                let truth = &seq.values;
                tracer.begin("sequence", "sim", clock.now_us());
                tracer.begin("sample", "sim", clock.now_us());
                clock.advance_samples(spec.seq_len as u64);
                tracer.end(clock.now_us());
                let weight = std_deviation(truth);
                let indices = policy.sample(truth, d);
                let k = indices.len();
                let mut values = Vec::with_capacity(k * d);
                for &t in &indices {
                    values.extend_from_slice(&truth[t * d..(t + 1) * d]);
                }
                let batch = Batch::new(indices, values).expect("policy output is a valid batch");
                #[cfg(feature = "telemetry")]
                {
                    age_telemetry::set_context_event(Some(seq.label));
                    age_telemetry::set_context_vtime(clock.now_us());
                }
                tracer.begin("encode", "encode", clock.now_us());
                encoder
                    .encode_into(&batch, &self.batch_cfg, &mut scratch, &mut plaintext)
                    .expect("experiment encoders are configured with feasible targets");
                clock.advance_encode();
                tracer.end(clock.now_us());
                tracer.begin("seal", "crypto", clock.now_us());
                cipher.seal_into(i as u64, &plaintext, &mut message);
                clock.advance_seal();
                tracer.end(clock.now_us());
                let cost =
                    self.energy
                        .sequence_cost(k, k * d, message.len(), defense.encoder_cost());

                if enforce_budget && !ledger.try_spend(cost) {
                    // Budget exhausted: the sequence is lost; the server can
                    // only guess within the data range (§5.1).
                    let guess: Vec<f64> = (0..truth.len())
                        .map(|_| rng.gen_range(self.bounds.0..=self.bounds.1))
                        .collect();
                    records.push(SequenceRecord {
                        label: seq.label,
                        message_bytes: 0,
                        mae: mae(&guess, truth),
                        weight,
                        energy_mj: 0.0,
                        violated: true,
                        collected: 0,
                        attempts: 0,
                        lost: false,
                        sent_at_us: 0,
                        epoch: 0,
                    });
                    tracer.end(clock.now_us());
                    continue;
                }

                // Budget cleared: the sealed message is transmitted. Its
                // on-air size — and the send time that size shapes — is
                // what the audit must correlate with events.
                tracer.begin("attempt", "link", clock.now_us());
                let sent_at_us = clock.advance_radio(message.len());
                tracer.end(sent_at_us);
                #[cfg(feature = "telemetry")]
                if age_telemetry::active() {
                    age_telemetry::emit_wire(
                        defense.name(),
                        i as u64,
                        seq.label,
                        message.len(),
                        sent_at_us,
                    );
                }
                tracer.begin("ack", "link", clock.now_us());
                clock.advance_ack();
                tracer.end(clock.now_us());

                cipher
                    .open_into(&message, &mut opened)
                    .expect("sealed messages always open");
                let decoded = encoder
                    .decode(&opened, &self.batch_cfg)
                    .expect("own messages always decode");
                let recon = interpolate(decoded.indices(), decoded.values(), spec.seq_len, d);
                records.push(SequenceRecord {
                    label: seq.label,
                    message_bytes: message.len(),
                    mae: mae(&recon, truth),
                    weight,
                    energy_mj: cost.0,
                    violated: false,
                    collected: k,
                    attempts: 1,
                    lost: false,
                    sent_at_us,
                    epoch: 0,
                });
                tracer.end(clock.now_us());
            }
        }

        // The event and virtual-time contexts are per-cell state; clear
        // them so batches emitted outside an experiment (warm-up,
        // calibration) aren't mislabeled or phantom-stamped.
        #[cfg(feature = "telemetry")]
        {
            age_telemetry::set_context_event(None);
            age_telemetry::set_context_vtime(0);
        }

        ExperimentResult {
            records,
            rate,
            policy: policy_kind.name(),
            defense: defense.name(),
            budget_per_seq,
            transport,
        }
    }
}

/// Adapter letting `fit_threshold` construct boxed policies.
#[derive(Debug)]
struct PolicyRef(Box<dyn Policy>);

impl Policy for PolicyRef {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn is_adaptive(&self) -> bool {
        self.0.is_adaptive()
    }
    fn sample(&self, values: &[f64], features: usize) -> Vec<usize> {
        self.0.sample(values, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> Runner {
        Runner::new(DatasetKind::Epilepsy, Scale::Small, 7)
    }

    #[test]
    fn age_messages_have_constant_size() {
        let r = runner();
        let res = r.run(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        let sizes: Vec<usize> = res.observations().iter().map(|&(_, s)| s).collect();
        assert!(!sizes.is_empty());
        assert!(
            sizes.windows(2).all(|w| w[0] == w[1]),
            "sizes vary: {sizes:?}"
        );
        assert_eq!(res.nmi(), 0.0);
    }

    #[test]
    fn standard_adaptive_messages_vary_and_leak() {
        let r = runner();
        let res = r.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        let sizes: Vec<usize> = res.observations().iter().map(|&(_, s)| s).collect();
        let distinct: std::collections::HashSet<usize> = sizes.iter().copied().collect();
        assert!(distinct.len() > 3, "adaptive sizes should vary");
        assert!(res.nmi() > 0.05, "nmi={}", res.nmi());
    }

    #[test]
    fn uniform_messages_do_not_leak() {
        let r = runner();
        let res = r.run(
            PolicyKind::Uniform,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            true,
        );
        assert_eq!(res.nmi(), 0.0);
        assert_eq!(res.violations(), 0, "uniform exactly meets its own budget");
    }

    #[test]
    fn padding_violates_tight_budgets() {
        let r = runner();
        let padded = r.run(
            PolicyKind::Linear,
            Defense::Padded,
            0.3,
            CipherChoice::ChaCha20,
            true,
        );
        let age = r.run(
            PolicyKind::Linear,
            Defense::Age,
            0.3,
            CipherChoice::ChaCha20,
            true,
        );
        assert!(
            padded.violations() > 0,
            "padding should blow the 30% budget"
        );
        assert_eq!(age.violations(), 0, "AGE must fit the budget");
        assert!(age.mean_mae() < padded.mean_mae());
    }

    #[test]
    fn age_error_close_to_standard() {
        let r = runner();
        let std_res = r.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        let age_res = r.run(
            PolicyKind::Linear,
            Defense::Age,
            0.7,
            CipherChoice::ChaCha20,
            false,
        );
        // AGE is lossy but must stay close (paper: ~1% median penalty; we
        // allow a loose factor at small scale).
        assert!(
            age_res.mean_mae() <= std_res.mean_mae() * 1.6 + 1e-4,
            "AGE {} vs Std {}",
            age_res.mean_mae(),
            std_res.mean_mae()
        );
    }

    #[test]
    fn block_cipher_keeps_fixed_sizes() {
        let r = runner();
        let res = r.run(
            PolicyKind::Deviation,
            Defense::Age,
            0.5,
            CipherChoice::Aes128Cbc,
            false,
        );
        let sizes: Vec<usize> = res.observations().iter().map(|&(_, s)| s).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
        // CBC framing: IV + padded body.
        assert_eq!(sizes[0] % 16, 0);
    }

    #[test]
    fn size_stats_by_label_cover_events() {
        let r = runner();
        let res = r.run(
            PolicyKind::Linear,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        let stats = res.size_stats_by_label();
        assert!(
            stats.len() >= 3,
            "expected most epilepsy events, got {stats:?}"
        );
        for &(_, mean, std, n) in &stats {
            assert!(mean > 0.0 && std >= 0.0 && n > 0);
        }
    }

    #[test]
    fn limited_runs_use_fewer_sequences() {
        let r = runner();
        let res = r.run_limited(
            PolicyKind::Uniform,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            false,
            Some(5),
        );
        assert_eq!(res.records.len(), 5);
    }

    #[test]
    fn skip_rnn_policy_runs_end_to_end() {
        let r = runner();
        let res = r.run(
            PolicyKind::SkipRnn,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        assert!(!res.records.is_empty());
        assert_eq!(res.nmi(), 0.0);
        let std_res = r.run(
            PolicyKind::SkipRnn,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            false,
        );
        // The learned policy's collection count varies across sequences.
        let counts: std::collections::HashSet<usize> =
            std_res.records.iter().map(|r| r.collected).collect();
        assert!(counts.len() > 1, "Skip RNN should be data-dependent");
    }

    #[test]
    fn thresholds_are_cached() {
        let r = runner();
        let _ = r.policy(PolicyKind::Linear, 0.5);
        let before = r.thresholds.lock().unwrap().len();
        let _ = r.policy(PolicyKind::Linear, 0.5);
        assert_eq!(r.thresholds.lock().unwrap().len(), before);
    }
}
