//! The monitored fleet driver: streaming ingest with health snapshots,
//! windowed leakage alarms, and postmortem capture.
//!
//! [`run_monitored`] drives a synthesized fleet trace through a gateway
//! in virtual-time segments (*ticks*) instead of one shot. After each
//! tick it folds the shard monitors, scores every leakage window the
//! tick closed, and emits one [`HealthSnapshot`] line — so a regression
//! that begins mid-trace raises its alarm while frames are still
//! in flight, which the end-of-run [`LeakageGate`] structurally cannot
//! do. The first trigger (a windowed alarm, a dirty gateway nonce
//! audit, or — failing those — an end-of-run gate failure) freezes the
//! merged flight-recorder contents into a `POSTMORTEM.json` string.
//!
//! Everything returned is deterministic: the tick boundaries are
//! virtual time, every per-tick rollup is a commutative fold over
//! shards, and alarm p-values are seeded per `(window, stream)` — so
//! `health_jsonl` and `postmortem` are byte-identical at any shard or
//! thread count (pinned by `tests/monitor.rs` and `cmp`'d in CI).

use age_gateway::{
    render_postmortem, FleetReport, Gateway, HealthSnapshot, ShardReport, StreamHealth,
};
use age_telemetry::{Alarm, GateOutcome, LeakageGate, LeakageReport, MonitorConfig};

use crate::fleet::{fleet_cohorts, fleet_gateway_config, generate, FleetConfig};

/// Shape of one monitored fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorRunConfig {
    /// The fleet to synthesize and ingest.
    pub fleet: FleetConfig,
    /// Gateway shard count.
    pub shards: usize,
    /// Worker threads for each tick's drain.
    pub threads: usize,
    /// Streaming-monitor window shape and thresholds; the end-of-run
    /// gate reuses its NMI/p/observation thresholds so the two layers
    /// cannot silently disagree about what counts as a leak.
    pub monitor: MonitorConfig,
    /// Health snapshot period in virtual microseconds (0 behaves as 1).
    pub health_every_us: u64,
    /// Flight-recorder ring capacity per shard.
    pub recorder_capacity: usize,
    /// Record wall-clock ingest latency (leave off when snapshot bytes
    /// are compared across runs — latency is nondeterministic by
    /// nature, so the comparable runs must keep the quantile fields 0).
    pub record_latency: bool,
    /// Permutations for the end-of-run gate's p-values.
    pub gate_permutations: usize,
}

impl MonitorRunConfig {
    /// Defaults matched to the fleet cost model: 500 ms leakage windows
    /// and 500 ms health ticks (roughly two frames per sensor per
    /// window at the ~258 ms per-frame cadence), a ring big enough
    /// that typical test fleets never evict, latency off.
    pub fn new(fleet: FleetConfig, shards: usize, threads: usize) -> MonitorRunConfig {
        MonitorRunConfig {
            fleet,
            shards,
            threads,
            monitor: MonitorConfig {
                window_us: 500_000,
                ..MonitorConfig::default()
            },
            health_every_us: 500_000,
            recorder_capacity: 4096,
            record_latency: false,
            gate_permutations: 200,
        }
    }
}

/// The monitor-leg regression scenario CI runs: a healthy fleet whose
/// defended cohort develops an event-proportional transmission delay
/// after one virtual second. Sized so several clean windows close
/// before the regression starts and several leaky ones close before
/// the trace ends — the windowed alarm must fire mid-run, frames still
/// in flight, where the end-of-run gate has not yet spoken.
pub fn regression_scenario(sensors: u64, seed: u64) -> MonitorRunConfig {
    let mut fleet = FleetConfig::new(sensors, seed);
    fleet.frames_per_sensor = 8;
    fleet.regress_timing_after_us = Some(1_000_000);
    let mut config = MonitorRunConfig::new(fleet, 4, 4);
    // One-second windows collect ~4 gaps per sensor — enough mass that
    // the permutation test resolves the injected correlation sharply.
    config.monitor.window_us = 1_000_000;
    config.health_every_us = 500_000;
    config
}

/// A plumbing-health scenario: after one virtual second every third
/// sensor's frames arrive with a flipped ciphertext byte, so the auth
/// rung rejects ~a third of traffic and the rejection-rate alarm trips.
pub fn corruption_scenario(sensors: u64, seed: u64) -> MonitorRunConfig {
    let mut fleet = FleetConfig::new(sensors, seed);
    fleet.frames_per_sensor = 8;
    fleet.corrupt_after_us = Some(1_000_000);
    MonitorRunConfig::new(fleet, 4, 4)
}

/// Everything one monitored run produces.
#[derive(Debug)]
pub struct MonitoredRun {
    /// The deterministic end-of-run fleet rollup.
    pub report: FleetReport,
    /// Per-shard ingest accounting (shard-count-dependent on purpose).
    pub shard_reports: Vec<ShardReport>,
    /// One snapshot per health tick, in tick order.
    pub snapshots: Vec<HealthSnapshot>,
    /// The snapshots rendered as JSONL — the `HEALTH.jsonl` bytes.
    pub health_jsonl: String,
    /// Prometheus-style exposition of the final snapshot.
    pub prometheus: String,
    /// Every windowed alarm raised, ordered by (tick scored, window,
    /// kind, stream).
    pub alarms: Vec<Alarm>,
    /// Fleet frame count at the moment the first alarm fired — proof
    /// the alarm preceded end-of-trace when it is below `stats.frames`.
    pub first_alarm_at_frames: Option<u64>,
    /// What triggered the postmortem, if anything did.
    pub postmortem_trigger: Option<String>,
    /// The rendered `POSTMORTEM.json` bytes, if triggered.
    pub postmortem: Option<String>,
    /// The end-of-run leakage report (same scoring as `repro`).
    pub leakage: LeakageReport,
    /// The end-of-run gate verdict over `leakage`.
    pub gate: GateOutcome,
}

/// Drives one monitored fleet run tick by tick.
pub fn run_monitored(config: &MonitorRunConfig) -> MonitoredRun {
    let traffic = generate(&config.fleet);
    let mut gateway_config = fleet_gateway_config(&config.fleet, config.shards);
    gateway_config.record_latency = config.record_latency;
    gateway_config.monitor = Some(config.monitor);
    gateway_config.recorder_capacity = config.recorder_capacity;
    let mut gateway = Gateway::new(gateway_config);
    for sensor_id in 0..config.fleet.sensors {
        // cohort_of is always in range for the two fleet cohorts.
        let _ = gateway.provision(sensor_id, config.fleet.cohort_of(sensor_id));
    }

    let cohorts = fleet_cohorts();
    let names: Vec<&str> = cohorts.iter().map(|c| c.name.as_str()).collect();
    let defended = [0usize];
    let tick_us = config.health_every_us.max(1);
    let window_us = config.monitor.window_us.max(1);
    let last_sent_us = traffic.frames.last().map_or(0, |f| f.sent_at_us);
    let ticks = last_sent_us / tick_us + 1;

    let mut cursor = 0usize;
    let mut scored_to = 0u64;
    let mut prev_frames = 0u64;
    let mut alarms: Vec<Alarm> = Vec::new();
    let mut first_alarm_at_frames = None;
    let mut snapshots = Vec::with_capacity(ticks as usize);
    let mut health_jsonl = String::new();
    let mut postmortem = None;
    let mut postmortem_trigger: Option<String> = None;

    for tick in 1..=ticks {
        let tick_end_us = tick * tick_us;
        let begin = cursor;
        while cursor < traffic.frames.len() && traffic.frames[cursor].sent_at_us < tick_end_us {
            cursor += 1;
        }
        gateway.run(&traffic.frames[begin..cursor], config.threads);

        // Score every window this tick closed. Frames are globally
        // time-sorted, so a window ending at or before `tick_end_us`
        // can never receive another observation — its score is final.
        let monitor = gateway.monitor();
        let close_to = (tick_end_us / window_us).max(scored_to);
        let mut fresh = Vec::new();
        if let Some(monitor) = &monitor {
            fresh = monitor.alarms(
                &config.monitor,
                &names,
                &defended,
                config.fleet.seed,
                scored_to,
                close_to,
            );
        }
        scored_to = close_to;

        let stats = gateway.fleet_stats();
        if !fresh.is_empty() && first_alarm_at_frames.is_none() {
            first_alarm_at_frames = Some(stats.frames);
        }
        let new_alarms = fresh.len() as u64;
        alarms.extend(fresh);

        // The latest fully-closed window's per-stream scores.
        let mut streams = Vec::new();
        if let Some(monitor) = &monitor {
            if close_to > 0 {
                let window = close_to - 1;
                for (id, name) in names.iter().enumerate() {
                    if let Some(score) = monitor.score(window, id) {
                        streams.push(StreamHealth {
                            name: (*name).to_string(),
                            window,
                            observations: score.observations,
                            nmi: score.nmi,
                            gap_observations: score.gap_observations,
                            timing_nmi: score.timing_nmi,
                        });
                    }
                }
            }
        }

        let mut alarming: Vec<String> = alarms.iter().map(|a| a.stream.clone()).collect();
        alarming.sort();
        alarming.dedup();
        let latency = gateway.latency();
        let delta_frames = stats.frames.saturating_sub(prev_frames);
        prev_frames = stats.frames;
        let snapshot = HealthSnapshot {
            tick,
            virtual_us: tick_end_us,
            stats,
            delta_frames,
            frames_per_vsec: delta_frames as f64 * 1e6 / tick_us as f64,
            p50_ingest_ns: latency.p50_ns(),
            p99_ingest_ns: latency.p99_ns(),
            streams,
            alarms_total: alarms.len() as u64,
            new_alarms,
            alarming,
        };
        health_jsonl.push_str(&snapshot.to_json_line());
        snapshots.push(snapshot);

        // First trigger wins: freeze the flight recorder right here,
        // mid-run, rather than at end of trace.
        if postmortem.is_none() {
            let trigger = if new_alarms > 0 {
                Some("windowed-alarm")
            } else if !gateway.nonce_audit().is_clean() {
                Some("nonce-audit")
            } else {
                None
            };
            if let Some(trigger) = trigger {
                let (records, dropped) = gateway.flight_records();
                postmortem = Some(render_postmortem(
                    trigger,
                    tick_end_us,
                    tick,
                    &stats,
                    &alarms,
                    &records,
                    dropped,
                ));
                postmortem_trigger = Some(trigger.to_string());
            }
        }
    }

    // Close out the final (possibly partial) window, then run the same
    // end-of-run gate `repro` applies.
    if let Some(monitor) = gateway.monitor() {
        let final_to = monitor.window_of(monitor.watermark_us()) + 1;
        if final_to > scored_to {
            let fresh = monitor.alarms(
                &config.monitor,
                &names,
                &defended,
                config.fleet.seed,
                scored_to,
                final_to,
            );
            if !fresh.is_empty() && first_alarm_at_frames.is_none() {
                first_alarm_at_frames = Some(gateway.fleet_stats().frames);
            }
            alarms.extend(fresh);
        }
    }
    let leakage = gateway
        .leakage_audit()
        .report(config.gate_permutations, config.fleet.seed);
    let gate = LeakageGate {
        nmi_threshold: config.monitor.nmi_threshold,
        p_threshold: config.monitor.p_threshold,
        min_observations: config.monitor.min_observations,
        defended: vec!["AGE".to_string()],
        baseline: vec!["Std".to_string()],
    };
    let outcome = gate.evaluate(&leakage.entries);
    if postmortem.is_none() && !outcome.passed {
        let (records, dropped) = gateway.flight_records();
        postmortem = Some(render_postmortem(
            "gate-failure",
            last_sent_us,
            ticks,
            &gateway.fleet_stats(),
            &alarms,
            &records,
            dropped,
        ));
        postmortem_trigger = Some("gate-failure".to_string());
    }

    let prometheus = snapshots.last().map_or(String::new(), |s| s.prometheus());
    MonitoredRun {
        report: gateway.fleet_report(),
        shard_reports: gateway.shard_reports(),
        snapshots,
        health_jsonl,
        prometheus,
        alarms,
        first_alarm_at_frames,
        postmortem_trigger,
        postmortem,
        leakage,
        gate: outcome,
    }
}
