//! Parallel, deterministic execution of experiment grids.
//!
//! A full table sweep is embarrassingly parallel: each (policy, defense,
//! rate, cipher) cell is an independent [`Runner::run_limited`] call over an
//! immutable dataset. This module fans a grid of [`SweepCell`]s out over a
//! small work-stealing pool — scoped threads pulling cell indices off one
//! shared [`AtomicUsize`] cursor — and merges the results **by cell index**,
//! so the output order (and content) is byte-identical no matter how many
//! threads ran or how they interleaved.
//!
//! Determinism holds because:
//!
//! - every cell's simulation is seeded from the runner, never from thread
//!   identity or wall clock;
//! - the runner's fit caches converge to the same values under any
//!   interleaving (fits are deterministic; see [`Runner`]);
//! - telemetry state (stream label, batch counter) is thread-local, every
//!   worker is a **fresh** thread (even at one thread), and every cell
//!   re-labels its stream, so record numbering is a pure function of the
//!   cell, not of which worker ran it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use age_telemetry::Sink;

use crate::runner::{CipherChoice, Defense, ExperimentResult, FaultSetup, PolicyKind, Runner};

/// One experiment cell: the arguments of a [`Runner::run_with_transport`]
/// call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Sampling policy to run.
    pub policy: PolicyKind,
    /// Message-size defense to apply.
    pub defense: Defense,
    /// Budget collection rate.
    pub rate: f64,
    /// Cipher sealing the messages.
    pub cipher: CipherChoice,
    /// Whether the long-term energy budget is enforced.
    pub enforce_budget: bool,
    /// Optional cap on evaluated test sequences.
    pub limit: Option<usize>,
    /// Optional fault-injected transport; `None` is the plain seal/open
    /// path. Each cell's fault stream is re-seeded from the cell identity,
    /// so results stay byte-identical at any thread count.
    pub faults: Option<FaultSetup>,
}

impl SweepCell {
    /// A budget-enforced, ChaCha20-sealed, uncapped cell — the common case
    /// for the paper's tables.
    pub fn new(policy: PolicyKind, defense: Defense, rate: f64) -> Self {
        SweepCell {
            policy,
            defense,
            rate,
            cipher: CipherChoice::ChaCha20,
            enforce_budget: true,
            limit: None,
            faults: None,
        }
    }

    /// Routes the cell's messages through the fault-injected transport.
    pub fn with_faults(mut self, faults: FaultSetup) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// How [`run_cells`] schedules and observes a sweep.
#[derive(Default)]
pub struct SweepOptions {
    /// Worker threads; `0` means [`default_threads`]. The thread count never
    /// affects results, only wall-clock time.
    pub threads: usize,
    /// Telemetry sink installed thread-locally on every worker. The sink is
    /// shared, so it must tolerate concurrent `record_batch` calls (all
    /// provided sinks do); aggregate sinks like `SummarySink` roll up
    /// order-insensitively.
    pub sink: Option<Arc<dyn Sink>>,
    /// Disables wall-clock stage timings on the workers, making telemetry
    /// records identical across reruns (the determinism tests set this).
    pub deterministic_timings: bool,
}

impl std::fmt::Debug for SweepOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("threads", &self.threads)
            .field("sink", &self.sink.as_ref().map(|_| ".."))
            .field("deterministic_timings", &self.deterministic_timings)
            .finish()
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every cell of `cells` against `runner` and returns the results in
/// cell order. Identically seeded runs produce identical results at any
/// thread count.
pub fn run_cells(
    runner: &Runner,
    cells: &[SweepCell],
    opts: &SweepOptions,
) -> Vec<ExperimentResult> {
    let threads = match opts.threads {
        0 => default_threads(),
        n => n,
    }
    .min(cells.len().max(1));

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<ExperimentResult>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    // Workers are spawned even for threads == 1: a fresh thread has fresh
    // telemetry thread-locals (label, batch counter), so single- and
    // multi-threaded sweeps start every cell from the same state.
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let cursor = &cursor;
            let sink = opts.sink.clone();
            let quiet = opts.deterministic_timings;
            handles.push(scope.spawn(move || {
                let _guard = sink.map(age_telemetry::install_thread);
                if quiet {
                    age_telemetry::set_timings_enabled(false);
                }
                let mut done: Vec<(usize, ExperimentResult)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let result = runner.run_with_transport(
                        cell.policy,
                        cell.defense,
                        cell.rate,
                        cell.cipher,
                        cell.enforce_budget,
                        cell.limit,
                        cell.faults,
                    );
                    done.push((i, result));
                }
                done
            }));
        }
        for handle in handles {
            for (i, result) in handle.join().expect("sweep workers do not panic") {
                slots[i] = Some(result);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every cell index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_datasets::{DatasetKind, Scale};

    #[test]
    fn results_come_back_in_cell_order() {
        let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
        let cells = [
            SweepCell::new(PolicyKind::Uniform, Defense::Standard, 0.5),
            SweepCell::new(PolicyKind::Linear, Defense::Age, 0.5),
            SweepCell::new(PolicyKind::Uniform, Defense::Standard, 0.7),
        ];
        let results = run_cells(&runner, &cells, &SweepOptions::default());
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].policy, "Uniform");
        assert_eq!(results[0].rate, 0.5);
        assert_eq!(results[1].defense, "AGE");
        assert_eq!(results[2].rate, 0.7);
    }

    #[test]
    fn parallel_matches_sequential_run_calls() {
        let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
        let cells = [
            SweepCell::new(PolicyKind::Linear, Defense::Age, 0.4),
            SweepCell::new(PolicyKind::Linear, Defense::Standard, 0.4),
        ];
        let swept = run_cells(
            &runner,
            &cells,
            &SweepOptions {
                threads: 2,
                ..Default::default()
            },
        );
        for (cell, result) in cells.iter().zip(&swept) {
            let direct = runner.run_with_transport(
                cell.policy,
                cell.defense,
                cell.rate,
                cell.cipher,
                cell.enforce_budget,
                cell.limit,
                cell.faults,
            );
            assert_eq!(*result, direct);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
        assert!(run_cells(&runner, &[], &SweepOptions::default()).is_empty());
    }
}
