//! Fleet traffic synthesis: N seeded sensors on the virtual clock.
//!
//! The gateway in `age-gateway` is only as testable as the traffic it
//! can be fed, so this module simulates a whole fleet: every sensor
//! gets a [`DetRng`] stream keyed by `(fleet seed, sensor id)`, a
//! [`VirtualClock`] with a per-sensor phase offset, and a transport
//! [`Sensor`] sealing under the key [`derive_key`] assigns it — the
//! same derivation the gateway runs at provisioning, so no key material
//! crosses the simulation boundary.
//!
//! Per frame, a sensor's clock walks the same cost model as the
//! single-link runner: one fixed 25-sample sensing window, encode,
//! seal, then radio serialization that is *affine in the wire length*.
//! AGE's constant frames therefore leave on a metronome cadence while
//! the `Std` baseline's event-sized frames shift their own send times —
//! the fleet-level reproduction of the paper's size-begets-timing
//! leakage, measured per sensor by the gateway's session histograms.
//!
//! Generation is per-sensor-deterministic: a sensor's frames depend
//! only on `(seed, sensor_id)`, never on how many other sensors exist,
//! and the global interleaving is a deterministic sort. The fleet tests
//! pin `generate` output and all downstream reports byte-for-byte.

use age_core::{AgeEncoder, Batch, BatchConfig, EncodeScratch, StandardEncoder};
use age_crypto::ChaCha20Poly1305;
use age_fixed::Format;
use age_gateway::{
    derive_key, derive_root, stagger_phase, Cohort, FleetFrame, Gateway, GatewayConfig,
};
use age_telemetry::DetRng;
#[cfg(feature = "telemetry")]
use age_telemetry::FleetNonceAudit;
use age_transport::{chacha20poly1305_factory, Sensor};

use crate::clock::{ClockModel, VirtualClock};

/// Samples a sensor accumulates before each transmission; also the
/// batch capacity, so every event class fits one frame.
pub const SENSING_WINDOW: u64 = 25;

/// Shape of a simulated fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Sensors in the fleet (ids `0..sensors`).
    pub sensors: u64,
    /// Frames each sensor transmits.
    pub frames_per_sensor: usize,
    /// Master seed: keys, event draws, and phase offsets all derive
    /// from it.
    pub seed: u64,
    /// Event classes (`0..events`); the class drives the batch size.
    pub events: usize,
    /// Every `baseline_every`-th sensor runs the leaky `Std` encoder so
    /// aggregated fleet traffic always carries the calibration cohort
    /// the leakage gate requires. 0 disables the baseline.
    pub baseline_every: u64,
    /// Injected timing regression: once a defended (AGE) sensor's clock
    /// passes this virtual time, each transmission is delayed by
    /// `event × regression_stretch_us` — the event class bleeding back
    /// into the send schedule, exactly the channel the paper's defense
    /// closes. `None` (the default) injects nothing. Drives the
    /// monitor-leg scenario proving a mid-run alarm fires *before* the
    /// end-of-run gate.
    pub regress_timing_after_us: Option<u64>,
    /// Per-event-class delay for the injected timing regression.
    pub regression_stretch_us: u64,
    /// Injected corruption: frames from every third sensor sent at or
    /// after this virtual time get one ciphertext byte flipped, so the
    /// gateway rejects them at the auth rung — a rejection-rate flood
    /// for the monitor. `None` (the default) injects nothing.
    pub corrupt_after_us: Option<u64>,
    /// Fleet-wide staggered rekey: `Some(interval)` gives every sensor
    /// an epoch ratchet rooted in the fleet secret, rotating every
    /// `interval` sequence numbers at its own [`stagger_phase`]. The
    /// gateway config from [`fleet_gateway_config`] mirrors the same
    /// setting, so both ends derive the same schedule from `(seed, id)`
    /// alone. `None` (the default) keeps static keys and byte-identical
    /// legacy artifacts.
    pub rekey_interval: Option<u64>,
}

impl FleetConfig {
    /// The standard fleet: 4 frames per sensor, 3 event classes, one
    /// baseline sensor in five.
    pub fn new(sensors: u64, seed: u64) -> FleetConfig {
        FleetConfig {
            sensors,
            frames_per_sensor: 4,
            seed,
            events: 3,
            baseline_every: 5,
            regress_timing_after_us: None,
            regression_stretch_us: 40_000,
            corrupt_after_us: None,
            rekey_interval: None,
        }
    }

    /// The cohort (0 = AGE, 1 = Std) a sensor id belongs to — a pure
    /// function, shared by generation and provisioning.
    pub fn cohort_of(&self, sensor_id: u64) -> usize {
        if self.baseline_every > 0 && sensor_id % self.baseline_every == self.baseline_every - 1 {
            1
        } else {
            0
        }
    }
}

/// The batch shape every fleet sensor uses: up to
/// [`SENSING_WINDOW`] readings of 2 features in Q16.10.
pub fn fleet_batch_config() -> BatchConfig {
    #[allow(clippy::unwrap_used)]
    BatchConfig::new(SENSING_WINDOW as usize, 2, Format::new(16, 10).unwrap()).unwrap()
}

/// The AGE payload target for the fleet batch shape, with headroom over
/// the encoder's minimum so grouping always succeeds.
pub fn fleet_age_target() -> usize {
    AgeEncoder::min_target_bytes(&fleet_batch_config()).max(160)
}

/// The two fleet cohorts, named to match the leakage gate's defended
/// (`"AGE"`) and baseline (`"Std"`) lists.
pub fn fleet_cohorts() -> Vec<Cohort> {
    vec![
        Cohort::new("AGE", Box::new(AgeEncoder::new(fleet_age_target()))),
        Cohort::new("Std", Box::new(StandardEncoder)),
    ]
}

/// A ready-to-run gateway config for this fleet at `shards` shards.
pub fn fleet_gateway_config(config: &FleetConfig, shards: usize) -> GatewayConfig {
    let mut gateway =
        GatewayConfig::new(fleet_batch_config(), fleet_cohorts(), config.seed, shards);
    gateway.rekey_interval = config.rekey_interval;
    gateway
}

/// Builds a gateway for the fleet and provisions every sensor.
pub fn provisioned_gateway(config: &FleetConfig, shards: usize) -> Gateway {
    let mut gateway = Gateway::new(fleet_gateway_config(config, shards));
    for sensor_id in 0..config.sensors {
        // cohort_of is always in range for the two fleet cohorts.
        let _ = gateway.provision(sensor_id, config.cohort_of(sensor_id));
    }
    gateway
}

/// Everything [`generate`] produces for one fleet run.
pub struct FleetTraffic {
    /// All frames, sorted by `(send time, sensor id)` — the arrival
    /// order an aggregating gateway would see.
    pub frames: Vec<FleetFrame>,
    /// Seal-side nonce audit: one observation per sealed frame,
    /// recorded *before* the channel. The run-wide backstop that no
    /// sensor ever sealed two frames under one `(epoch, sequence)`.
    #[cfg(feature = "telemetry")]
    pub sealed_nonces: FleetNonceAudit,
}

/// Synthesizes the fleet's traffic.
pub fn generate(config: &FleetConfig) -> FleetTraffic {
    let batch_cfg = fleet_batch_config();
    let cohorts = fleet_cohorts();
    let mut frames = Vec::with_capacity(config.sensors as usize * config.frames_per_sensor);
    #[cfg(feature = "telemetry")]
    let mut sealed_nonces = FleetNonceAudit::default();
    let mut scratch = EncodeScratch::new();
    let mut payload = Vec::new();
    let mut sealed = Vec::new();
    let events = config.events.max(1);

    for sensor_id in 0..config.sensors {
        let cohort = config.cohort_of(sensor_id);
        let Some(encoder) = cohorts.get(cohort) else {
            continue;
        };
        let mut rng = DetRng::seed_from_u64(
            config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(sensor_id),
        );
        let mut sensor = match config.rekey_interval {
            Some(interval) => Sensor::with_rekey(
                derive_root(config.seed, sensor_id),
                interval,
                stagger_phase(config.seed, sensor_id, interval),
                chacha20poly1305_factory,
            ),
            None => Sensor::new(Box::new(ChaCha20Poly1305::new(derive_key(
                config.seed,
                sensor_id,
            )))),
        };
        let mut clock = VirtualClock::new(ClockModel::default());
        // Random phase offset under one sensing window, so the fleet
        // interleaves instead of transmitting in lockstep.
        clock.advance_us(rng.gen_range(0..SENSING_WINDOW * 10_000));

        for _ in 0..config.frames_per_sensor {
            let event = rng.gen_range(0..events);
            // The event class sets how many of the window's readings
            // survive pruning: 6, 14, or 22 of 25.
            let kept = (6 + event * 8).min(SENSING_WINDOW as usize);
            let indices: Vec<usize> = (0..kept).collect();
            let values: Vec<f64> = (0..kept * batch_cfg.features())
                .map(|_| rng.gen_range(-16.0..16.0))
                .collect();
            let Ok(batch) = Batch::new(indices, values) else {
                continue;
            };
            if encoder
                .encoder
                .encode_into(&batch, &batch_cfg, &mut scratch, &mut payload)
                .is_err()
            {
                continue;
            }
            clock.advance_samples(SENSING_WINDOW);
            clock.advance_encode();
            clock.advance_seal();
            // Injected timing regression: a defended sensor whose clock
            // crossed the threshold stalls in proportion to the event
            // class before keying the radio, so its inter-transmission
            // gaps become event-correlated from that point on.
            if cohort == 0 {
                if let Some(after) = config.regress_timing_after_us {
                    if clock.now_us() >= after {
                        clock.advance_us(event as u64 * config.regression_stretch_us);
                    }
                }
            }
            let sequence = sensor.seal_into(&payload, &mut sealed);
            // `seal_into` rotates *before* sealing when the watermark
            // demands it, so the post-seal epoch is the one this frame
            // was sealed under (always 0 for static fleets).
            #[cfg(feature = "telemetry")]
            sealed_nonces.observe(sensor_id, sensor.epoch(), sequence);
            #[cfg(not(feature = "telemetry"))]
            let _ = sequence;
            let frame = FleetFrame::encode(sensor_id, &sealed, event, 0);
            let sent_at_us = clock.advance_radio(frame.wire.len());
            let mut frame = FleetFrame {
                sent_at_us,
                ..frame
            };
            // Injected corruption: flip one ciphertext byte so the
            // gateway's AEAD check rejects the frame at the auth rung.
            if let Some(after) = config.corrupt_after_us {
                if sensor_id % 3 == 0 && sent_at_us >= after {
                    if let Some(byte) = frame.wire.get_mut(age_gateway::HEADER_LEN + 4) {
                        *byte ^= 0x55;
                    }
                }
            }
            frames.push(frame);
        }
    }

    frames.sort_by_key(|f| (f.sent_at_us, f.sensor_id().unwrap_or(0)));
    FleetTraffic {
        frames,
        #[cfg(feature = "telemetry")]
        sealed_nonces,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let config = FleetConfig::new(40, 7);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.frames, b.frames);
        assert!(a
            .frames
            .windows(2)
            .all(|w| w[0].sent_at_us <= w[1].sent_at_us));
        assert_eq!(a.frames.len(), 40 * config.frames_per_sensor);
    }

    #[test]
    fn cohort_split_matches_baseline_every() {
        let config = FleetConfig::new(100, 1);
        let baseline = (0..100).filter(|&id| config.cohort_of(id) == 1).count();
        assert_eq!(baseline, 20, "one sensor in five runs Std");
    }

    #[test]
    fn age_frames_are_constant_size_std_frames_are_not() {
        let config = FleetConfig::new(60, 11);
        let traffic = generate(&config);
        let mut age_sizes = std::collections::BTreeSet::new();
        let mut std_sizes = std::collections::BTreeSet::new();
        for frame in &traffic.frames {
            let id = frame.sensor_id().unwrap_or(0);
            if config.cohort_of(id) == 0 {
                age_sizes.insert(frame.wire.len());
            } else {
                std_sizes.insert(frame.wire.len());
            }
        }
        assert_eq!(age_sizes.len(), 1, "AGE cohort must be one wire size");
        assert!(std_sizes.len() > 1, "Std cohort must leak via size");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn seal_side_nonce_audit_is_clean() {
        let traffic = generate(&FleetConfig::new(30, 3));
        assert!(traffic.sealed_nonces.is_clean());
        assert_eq!(traffic.sealed_nonces.sensors(), 30);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn rekeying_fleet_seals_across_epochs_without_reuse() {
        let mut config = FleetConfig::new(30, 3);
        config.frames_per_sensor = 20;
        config.rekey_interval = Some(6);
        let traffic = generate(&config);
        assert!(traffic.sealed_nonces.is_clean());
        assert_eq!(traffic.sealed_nonces.sensors(), 30);
        assert!(
            traffic.sealed_nonces.cells() > 30,
            "every sensor should have sealed under more than one epoch"
        );
        let again = generate(&config);
        assert_eq!(traffic.frames, again.frames, "rekey generation drifted");
    }
}
