//! Threat-model extensions: network faults and multi-event batches.
//!
//! Two settings the paper discusses but does not evaluate:
//!
//! - **Faults** (§4.5): AGE guarantees fixed-length messages *absent
//!   external faults*; a dropped packet shows the attacker a missing
//!   message. AGE's security argument is that faults occur independently of
//!   the sensed events — [`run_with_faults`] simulates an unreliable link
//!   so tests can verify the delivered-message sizes still carry zero
//!   information.
//! - **Multi-event batches** (§3.1): the paper's evaluation gives the
//!   attacker the easiest setting (one event per batch) and notes the
//!   defense extends to batches spanning multiple events.
//!   [`run_multi_event`] concatenates consecutive sequences into longer
//!   batches labelled by their dominant event.

use age_core::{target, AgeEncoder, Batch, BatchConfig, Encoder, StandardEncoder};

use age_datasets::Sequence;
use age_transport::{FaultPlan, RetryPolicy};

use crate::runner::{CipherChoice, Defense, FaultSetup, PolicyKind, Runner};

/// Observations surviving an unreliable link.
#[derive(Debug, Clone)]
pub struct FaultyRun {
    /// `(label, size)` of messages the attacker saw (delivered).
    pub delivered: Vec<(usize, usize)>,
    /// Labels of messages the network dropped.
    pub dropped_labels: Vec<usize>,
}

impl FaultyRun {
    /// NMI between labels and delivered sizes — must be 0 for AGE.
    pub fn delivered_nmi(&self) -> f64 {
        let labels: Vec<usize> = self.delivered.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = self.delivered.iter().map(|&(_, s)| s).collect();
        age_attack::nmi(&labels, &sizes)
    }

    /// NMI between labels and the delivered/dropped indicator — near zero
    /// when faults are independent of events (the §4.5 assumption).
    pub fn drop_indicator_nmi(&self) -> f64 {
        let mut labels: Vec<usize> = self.delivered.iter().map(|&(l, _)| l).collect();
        let mut indicator: Vec<usize> = vec![1; labels.len()];
        labels.extend(self.dropped_labels.iter().copied());
        indicator.extend(std::iter::repeat_n(0usize, self.dropped_labels.len()));
        age_attack::nmi(&labels, &indicator)
    }
}

/// Runs an experiment through the real [`age_transport`] link under `plan`'s
/// fault rates and `retry`'s retransmission policy. Faults are drawn from a
/// deterministic stream seeded by the plan and the cell coordinates, so the
/// run is reproducible at any thread count. A message counts as *dropped*
/// when the transport abandoned it (or the server could not decode what
/// arrived) — retransmissions that eventually get through still count as
/// delivered.
pub fn run_with_faults(
    runner: &Runner,
    policy: PolicyKind,
    defense: Defense,
    rate: f64,
    cipher: CipherChoice,
    plan: FaultPlan,
    retry: RetryPolicy,
) -> FaultyRun {
    let result = runner.run_with_transport(
        policy,
        defense,
        rate,
        cipher,
        false,
        None,
        Some(FaultSetup {
            plan,
            retry,
            power: None,
            rekey_interval: None,
        }),
    );
    let mut delivered = Vec::new();
    let mut dropped_labels = Vec::new();
    for record in result.records.iter().filter(|r| !r.violated) {
        if record.lost {
            dropped_labels.push(record.label);
        } else {
            delivered.push((record.label, record.message_bytes));
        }
    }
    FaultyRun {
        delivered,
        dropped_labels,
    }
}

/// Result of a multi-event batching run.
#[derive(Debug, Clone)]
pub struct MultiEventRun {
    /// `(dominant label, message size)` per batch.
    pub observations: Vec<(usize, usize)>,
    /// Whether every message had the same size.
    pub fixed_length: bool,
}

impl MultiEventRun {
    /// NMI between the dominant label and the message size.
    pub fn nmi(&self) -> f64 {
        let labels: Vec<usize> = self.observations.iter().map(|&(l, _)| l).collect();
        let sizes: Vec<usize> = self.observations.iter().map(|&(_, s)| s).collect();
        age_attack::nmi(&labels, &sizes)
    }
}

/// Runs the sensor pipeline with batches spanning `events_per_batch`
/// consecutive test sequences (so each message mixes several events). The
/// batch is labelled by its first event — the attacker's best handle.
///
/// # Panics
///
/// Panics if `events_per_batch` is zero or the combined sequence exceeds
/// the 16-bit batching limit.
pub fn run_multi_event(
    runner: &Runner,
    policy: PolicyKind,
    defense: Defense,
    rate: f64,
    cipher: CipherChoice,
    events_per_batch: usize,
) -> MultiEventRun {
    assert!(events_per_batch > 0, "need at least one event per batch");
    let spec = runner.dataset().spec();
    let d = spec.features;
    let long_len = spec.seq_len * events_per_batch;
    let cfg = BatchConfig::new(long_len, d, spec.format)
        .expect("combined batch length must stay within 16 bits");

    let policy = runner.policy(policy, rate);
    let cipher = runner.cipher(cipher);
    let encoder: Box<dyn Encoder> = match defense {
        Defense::Standard => Box::new(StandardEncoder),
        Defense::Age => {
            let m_b = target::target_bytes(&cfg, rate);
            let on_air = target::reduced_target_bytes(m_b);
            let plain = target::plaintext_budget(on_air, cipher.kind(), cipher.overhead(), 16)
                .max(AgeEncoder::min_target_bytes(&cfg));
            Box::new(AgeEncoder::new(plain))
        }
        other => panic!(
            "multi-event runs support Standard and AGE, not {}",
            other.name()
        ),
    };

    let test: Vec<&Sequence> = runner.test_sequences().iter().collect();
    let mut observations = Vec::new();
    let mut sizes = std::collections::HashSet::new();
    for (i, chunk) in test.chunks_exact(events_per_batch).enumerate() {
        let mut values = Vec::with_capacity(long_len * d);
        for seq in chunk {
            values.extend_from_slice(&seq.values);
        }
        let label = chunk[0].label;
        let indices = policy.sample(&values, d);
        let mut collected = Vec::with_capacity(indices.len() * d);
        for &t in &indices {
            collected.extend_from_slice(&values[t * d..(t + 1) * d]);
        }
        let batch = Batch::new(indices, collected).expect("policy output is valid");
        let plaintext = encoder
            .encode(&batch, &cfg)
            .expect("multi-event targets are feasible");
        let message = cipher.seal(i as u64, &plaintext);
        sizes.insert(message.len());
        observations.push((label, message.len()));
    }
    MultiEventRun {
        observations,
        fixed_length: sizes.len() <= 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_datasets::{DatasetKind, Scale};

    fn runner() -> Runner {
        Runner::new(DatasetKind::Epilepsy, Scale::Small, 17)
    }

    #[test]
    fn age_sizes_stay_constant_under_faults() {
        let r = runner();
        let run = run_with_faults(
            &r,
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            FaultPlan::drops(0.3, 1),
            RetryPolicy::none(),
        );
        assert!(!run.delivered.is_empty());
        assert_eq!(run.delivered_nmi(), 0.0);
        assert!(!run.dropped_labels.is_empty());
    }

    #[test]
    fn independent_faults_carry_little_information() {
        let r = runner();
        let run = run_with_faults(
            &r,
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            FaultPlan::drops(0.2, 2),
            RetryPolicy::none(),
        );
        // Small-sample noise only: far below the standard policy's leakage.
        assert!(
            run.drop_indicator_nmi() < 0.15,
            "nmi={}",
            run.drop_indicator_nmi()
        );
    }

    #[test]
    fn standard_still_leaks_under_faults() {
        let r = runner();
        let run = run_with_faults(
            &r,
            PolicyKind::Linear,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            FaultPlan::drops(0.2, 3),
            RetryPolicy::none(),
        );
        assert!(run.delivered_nmi() > 0.1);
    }

    #[test]
    fn retries_recover_most_messages() {
        let r = runner();
        let fire_and_forget = run_with_faults(
            &r,
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20Poly1305,
            FaultPlan::drops(0.4, 9),
            RetryPolicy::none(),
        );
        let with_retries = run_with_faults(
            &r,
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20Poly1305,
            FaultPlan::drops(0.4, 9),
            RetryPolicy::default(),
        );
        assert!(
            with_retries.dropped_labels.len() < fire_and_forget.dropped_labels.len(),
            "retries must recover messages: {} vs {}",
            with_retries.dropped_labels.len(),
            fire_and_forget.dropped_labels.len()
        );
        assert_eq!(with_retries.delivered_nmi(), 0.0);
    }

    #[test]
    fn multi_event_age_is_fixed_length() {
        let r = runner();
        let run = run_multi_event(
            &r,
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            2,
        );
        assert!(run.fixed_length);
        assert_eq!(run.nmi(), 0.0);
        assert!(!run.observations.is_empty());
    }

    #[test]
    fn multi_event_standard_still_leaks() {
        let r = runner();
        let run = run_multi_event(
            &r,
            PolicyKind::Linear,
            Defense::Standard,
            0.5,
            CipherChoice::ChaCha20,
            2,
        );
        assert!(!run.fixed_length);
        assert!(run.nmi() > 0.05, "nmi={}", run.nmi());
    }

    #[test]
    #[should_panic(expected = "multi-event runs support")]
    fn multi_event_rejects_other_defenses() {
        let r = runner();
        let _ = run_multi_event(
            &r,
            PolicyKind::Linear,
            Defense::Padded,
            0.5,
            CipherChoice::ChaCha20,
            2,
        );
    }
}
