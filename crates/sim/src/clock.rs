//! Deterministic virtual time for the simulator.
//!
//! The sim has no wall clock: time is a `u64` microsecond counter advanced
//! by explicit, modeled amounts — one tick budget per sensing window, per
//! encode/seal stage, per flash journal write, per radio byte, and per
//! retry backoff wait. Because every advance is a pure function of the
//! workload (never of host scheduling), a sweep produces byte-identical
//! timestamps at any thread count, which is what makes the timing-channel
//! audit (`age-telemetry`'s gap histograms) and the `--trace` export
//! meaningful as regression artifacts.
//!
//! The default [`ClockModel`] is scaled to the paper's platform class: a
//! 100 Hz sensing loop on an MSP430-class MCU with an 802.15.4-class
//! (250 kbit/s) radio. The absolute values are not calibrated measurements
//! — the audit consumes *relative* structure (does the schedule stretch
//! with the event?), which survives any monotone rescaling — but they keep
//! traces legible in real units.

/// Cost model mapping simulated operations to virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockModel {
    /// Interval between successive sensor samples (100 Hz default).
    pub sample_period_us: u64,
    /// CPU cost of encoding one batch (prune/group/merge/quantize/pack).
    pub encode_us: u64,
    /// CPU cost of sealing one frame (ChaCha20-Poly1305 on an MCU).
    pub seal_us: u64,
    /// Radio serialization cost per frame byte (≈32 µs/byte at 250 kbit/s).
    pub radio_us_per_byte: u64,
    /// Fixed per-transmission radio cost (preamble, SFD, turnaround).
    pub radio_overhead_us: u64,
    /// Cost of one NVM journal write (word-program + verify).
    pub flash_write_us: u64,
    /// Time from end of transmission to a received link-layer ack.
    pub ack_us: u64,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel {
            sample_period_us: 10_000,
            encode_us: 900,
            seal_us: 600,
            radio_us_per_byte: 32,
            radio_overhead_us: 192,
            flash_write_us: 800,
            ack_us: 352,
        }
    }
}

/// A monotone virtual-microsecond counter advanced by [`ClockModel`] costs.
///
/// All arithmetic saturates: a clock pinned at `u64::MAX` stays there
/// rather than wrapping backwards, so downstream gap extraction (which
/// treats non-increasing stamps as stream restarts) degrades safely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    now_us: u64,
    model: ClockModel,
}

impl VirtualClock {
    /// A clock at t = 0 with the given cost model.
    pub fn new(model: ClockModel) -> Self {
        VirtualClock { now_us: 0, model }
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The cost model this clock advances by.
    pub fn model(&self) -> &ClockModel {
        &self.model
    }

    /// Advances by a raw microsecond amount.
    pub fn advance_us(&mut self, us: u64) {
        self.now_us = self.now_us.saturating_add(us);
    }

    /// Advances across `samples` sensor readings (one sensing window).
    pub fn advance_samples(&mut self, samples: u64) {
        self.advance_us(samples.saturating_mul(self.model.sample_period_us));
    }

    /// Advances across one batch encode.
    pub fn advance_encode(&mut self) {
        self.advance_us(self.model.encode_us);
    }

    /// Advances across one frame seal.
    pub fn advance_seal(&mut self) {
        self.advance_us(self.model.seal_us);
    }

    /// Advances across one radio transmission of `frame_bytes` and returns
    /// the completion time — the instant an eavesdropper would stamp.
    pub fn advance_radio(&mut self, frame_bytes: usize) -> u64 {
        let serialize = (frame_bytes as u64).saturating_mul(self.model.radio_us_per_byte);
        self.advance_us(self.model.radio_overhead_us.saturating_add(serialize));
        self.now_us
    }

    /// Advances across `writes` NVM journal writes.
    pub fn advance_flash(&mut self, writes: u64) {
        self.advance_us(writes.saturating_mul(self.model.flash_write_us));
    }

    /// Advances across a retry backoff wait given in (fractional)
    /// milliseconds — the unit `RetryPolicy::timeout_ms` speaks. Rounded
    /// to the nearest microsecond; negative or non-finite inputs advance 0.
    pub fn advance_backoff_ms(&mut self, backoff_ms: f64) {
        if backoff_ms.is_finite() && backoff_ms > 0.0 {
            self.advance_us((backoff_ms * 1_000.0).round() as u64);
        }
    }

    /// Advances across one link-layer ack wait.
    pub fn advance_ack(&mut self) {
        self.advance_us(self.model.ack_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances_by_model_costs() {
        let mut clock = VirtualClock::new(ClockModel::default());
        assert_eq!(clock.now_us(), 0);
        clock.advance_samples(128);
        assert_eq!(clock.now_us(), 1_280_000);
        clock.advance_encode();
        clock.advance_seal();
        assert_eq!(clock.now_us(), 1_281_500);
        clock.advance_flash(2);
        assert_eq!(clock.now_us(), 1_283_100);
        clock.advance_ack();
        assert_eq!(clock.now_us(), 1_283_452);
    }

    #[test]
    fn radio_time_is_affine_in_frame_size() {
        let model = ClockModel::default();
        let mut clock = VirtualClock::new(model);
        let t1 = clock.advance_radio(100);
        assert_eq!(t1, 192 + 100 * 32);
        // A frame 20 bytes longer costs exactly 20 more byte-times: the
        // size channel maps linearly into the timing channel, which is why
        // Std leaks through gaps and constant-size defenses do not.
        let mut other = VirtualClock::new(model);
        let t2 = other.advance_radio(120);
        assert_eq!(t2 - t1, 20 * 32);
    }

    #[test]
    fn backoff_rounds_to_microseconds_and_rejects_junk() {
        let mut clock = VirtualClock::new(ClockModel::default());
        clock.advance_backoff_ms(50.0);
        assert_eq!(clock.now_us(), 50_000);
        clock.advance_backoff_ms(0.0004); // rounds to 0 µs
        assert_eq!(clock.now_us(), 50_000);
        clock.advance_backoff_ms(0.0006); // rounds to 1 µs
        assert_eq!(clock.now_us(), 50_001);
        clock.advance_backoff_ms(-10.0);
        clock.advance_backoff_ms(f64::NAN);
        clock.advance_backoff_ms(f64::INFINITY);
        assert_eq!(clock.now_us(), 50_001);
    }

    #[test]
    fn arithmetic_saturates_instead_of_wrapping() {
        let mut clock = VirtualClock::new(ClockModel::default());
        clock.advance_us(u64::MAX - 10);
        clock.advance_samples(5);
        clock.advance_radio(usize::MAX);
        clock.advance_flash(u64::MAX);
        assert_eq!(clock.now_us(), u64::MAX);
    }

    #[test]
    fn identical_advance_sequences_are_byte_identical() {
        let run = || {
            let mut clock = VirtualClock::new(ClockModel::default());
            for i in 0..50usize {
                clock.advance_samples(128);
                clock.advance_encode();
                clock.advance_seal();
                clock.advance_radio(60 + i % 3 * 20);
                if i % 7 == 0 {
                    clock.advance_backoff_ms(50.0 * 1.5f64.powi((i % 3) as i32));
                }
            }
            clock.now_us()
        };
        assert_eq!(run(), run());
    }
}
