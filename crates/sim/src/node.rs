//! Sensor and server as explicit state machines connected by a lossy link.
//!
//! The paper's artifact runs the sensor and server as two processes talking
//! over an encrypted socket. This module provides the same decomposition as
//! a library: a [`Sensor`] that samples → encodes → encrypts, a [`Server`]
//! that decrypts → decodes → interpolates, and a [`Link`] in between that
//! can drop messages. The [`crate::Runner`] remains the convenient batch
//! driver; these types are for applications that embed the pipeline.
//!
//! # Examples
//!
//! ```
//! use age_core::{AgeEncoder, BatchConfig};
//! use age_crypto::ChaCha20;
//! use age_fixed::Format;
//! use age_sampling::LinearPolicy;
//! use age_sim::node::{Link, Sensor, Server};
//!
//! let cfg = BatchConfig::new(50, 6, Format::new(16, 13)?)?;
//! let mut sensor = Sensor::new(
//!     cfg,
//!     Box::new(LinearPolicy::new(0.3)),
//!     Box::new(AgeEncoder::new(220)),
//!     Box::new(ChaCha20::new([1; 32])),
//! );
//! let server = Server::new(cfg, Box::new(AgeEncoder::new(220)), Box::new(ChaCha20::new([1; 32])));
//! let mut link = Link::reliable();
//!
//! let sequence = vec![0.25; 300];
//! let message = sensor.process(&sequence);
//! if let Some(delivered) = link.transmit(message) {
//!     let reconstructed = server.receive(&delivered)?;
//!     assert_eq!(reconstructed.len(), sequence.len());
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use age_core::{Batch, BatchConfig, DecodeError, Encoder};
use age_crypto::{Cipher, OpenError};
use age_reconstruct::interpolate;
use age_sampling::Policy;
use age_telemetry::DetRng;

/// The sensor side: policy → encoder → cipher, with a running message
/// counter for nonce uniqueness.
pub struct Sensor {
    cfg: BatchConfig,
    policy: Box<dyn Policy>,
    encoder: Box<dyn Encoder>,
    cipher: Box<dyn Cipher>,
    sequence_number: u64,
    label: Option<String>,
}

impl std::fmt::Debug for Sensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sensor")
            .field("policy", &self.policy.name())
            .field("encoder", &self.encoder.name())
            .field("sequence_number", &self.sequence_number)
            .field("label", &self.label)
            .finish()
    }
}

impl Sensor {
    /// Assembles a sensor node.
    pub fn new(
        cfg: BatchConfig,
        policy: Box<dyn Policy>,
        encoder: Box<dyn Encoder>,
        cipher: Box<dyn Cipher>,
    ) -> Self {
        Sensor {
            cfg,
            policy,
            encoder,
            cipher,
            sequence_number: 0,
            label: None,
        }
    }

    /// Names this sensor's telemetry stream: every per-batch record emitted
    /// while [`Sensor::process`] runs is stamped with `label`. Has no effect
    /// unless the `telemetry` feature is on and a sink is installed. Labeled
    /// sensors sharing one thread interleave their stream numbering.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Messages produced so far.
    pub fn messages_sent(&self) -> u64 {
        self.sequence_number
    }

    /// Samples one sequence and produces the encrypted on-air message.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not a whole number of measurements for the
    /// configuration, or if the encoder's target cannot hold its framing
    /// (a configuration error, not a data error).
    pub fn process(&mut self, values: &[f64]) -> Vec<u8> {
        #[cfg(feature = "telemetry")]
        if let Some(label) = &self.label {
            age_telemetry::set_context_label(label);
        }
        let d = self.cfg.features();
        let indices = self.policy.sample(values, d);
        let mut collected = Vec::with_capacity(indices.len() * d);
        for &t in &indices {
            collected.extend_from_slice(&values[t * d..(t + 1) * d]);
        }
        let batch = Batch::new(indices, collected).expect("policy output is a valid batch");
        let plaintext = self
            .encoder
            .encode(&batch, &self.cfg)
            .expect("encoder target must accommodate the configuration");
        let message = self.cipher.seal(self.sequence_number, &plaintext);
        self.sequence_number += 1;
        message
    }
}

/// Errors surfaced by [`Server::receive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiveError {
    /// Decryption or authentication failed.
    Cipher(OpenError),
    /// The decrypted payload was not a valid message.
    Decode(DecodeError),
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiveError::Cipher(e) => write!(f, "cipher rejected message: {e}"),
            ReceiveError::Decode(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for ReceiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReceiveError::Cipher(e) => Some(e),
            ReceiveError::Decode(e) => Some(e),
        }
    }
}

/// The server side: cipher → decoder → interpolation.
pub struct Server {
    cfg: BatchConfig,
    encoder: Box<dyn Encoder>,
    cipher: Box<dyn Cipher>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("encoder", &self.encoder.name())
            .finish()
    }
}

impl Server {
    /// Assembles a server node (must share the sensor's configuration,
    /// encoder kind, and key).
    pub fn new(cfg: BatchConfig, encoder: Box<dyn Encoder>, cipher: Box<dyn Cipher>) -> Self {
        Server {
            cfg,
            encoder,
            cipher,
        }
    }

    /// Decrypts, decodes, and reconstructs the full sequence from one
    /// message.
    ///
    /// # Errors
    ///
    /// Returns [`ReceiveError`] if the message fails authentication,
    /// framing, or structural decoding.
    pub fn receive(&self, message: &[u8]) -> Result<Vec<f64>, ReceiveError> {
        let plaintext = self.cipher.open(message).map_err(ReceiveError::Cipher)?;
        let batch = self
            .encoder
            .decode(&plaintext, &self.cfg)
            .map_err(ReceiveError::Decode)?;
        Ok(interpolate(
            batch.indices(),
            batch.values(),
            self.cfg.max_len(),
            self.cfg.features(),
        ))
    }
}

/// A wireless link with independent message loss.
#[derive(Debug, Clone)]
pub struct Link {
    drop_prob: f64,
    rng: DetRng,
    delivered: u64,
    dropped: u64,
}

impl Link {
    /// A link that never drops.
    pub fn reliable() -> Self {
        Link {
            drop_prob: 0.0,
            rng: DetRng::seed_from_u64(0),
            delivered: 0,
            dropped: 0,
        }
    }

    /// A link dropping each message independently with `drop_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `drop_prob` is outside `[0, 1)`.
    pub fn lossy(drop_prob: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop probability must be in [0, 1)"
        );
        Link {
            drop_prob,
            rng: DetRng::seed_from_u64(seed),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Transmits one message; `None` means the network ate it.
    pub fn transmit(&mut self, message: Vec<u8>) -> Option<Vec<u8>> {
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.dropped += 1;
            None
        } else {
            self.delivered += 1;
            Some(message)
        }
    }

    /// Messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use age_core::{AgeEncoder, StandardEncoder};
    use age_crypto::{ChaCha20, ChaCha20Poly1305};
    use age_fixed::Format;
    use age_sampling::{LinearPolicy, UniformPolicy};

    fn cfg() -> BatchConfig {
        BatchConfig::new(50, 2, Format::new(16, 12).unwrap()).unwrap()
    }

    fn signal(seed: usize) -> Vec<f64> {
        (0..100)
            .map(|i| (((i + seed * 13) as f64) * 0.21).sin() * 3.0)
            .collect()
    }

    #[test]
    fn end_to_end_over_reliable_link() {
        let c = cfg();
        let mut sensor = Sensor::new(
            c,
            Box::new(LinearPolicy::new(0.2)),
            Box::new(AgeEncoder::new(120)),
            Box::new(ChaCha20::new([5; 32])),
        );
        let server = Server::new(
            c,
            Box::new(AgeEncoder::new(120)),
            Box::new(ChaCha20::new([5; 32])),
        );
        let mut link = Link::reliable();
        for s in 0..10 {
            let truth = signal(s);
            let msg = sensor.process(&truth);
            assert_eq!(msg.len(), 120 + 12);
            let delivered = link.transmit(msg).expect("reliable link");
            let recon = server.receive(&delivered).unwrap();
            assert_eq!(recon.len(), truth.len());
            let mae: f64 = recon
                .iter()
                .zip(&truth)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / truth.len() as f64;
            assert!(mae < 2.0, "mae={mae}");
        }
        assert_eq!(sensor.messages_sent(), 10);
        assert_eq!(link.delivered(), 10);
    }

    #[test]
    fn wrong_key_is_rejected_by_aead() {
        let c = cfg();
        let mut sensor = Sensor::new(
            c,
            Box::new(UniformPolicy::new(0.5)),
            Box::new(StandardEncoder),
            Box::new(ChaCha20Poly1305::new([1; 32])),
        );
        let server = Server::new(
            c,
            Box::new(StandardEncoder),
            Box::new(ChaCha20Poly1305::new([2; 32])), // mismatched key
        );
        let msg = sensor.process(&signal(0));
        assert!(matches!(server.receive(&msg), Err(ReceiveError::Cipher(_))));
    }

    #[test]
    fn lossy_link_statistics() {
        let mut link = Link::lossy(0.5, 42);
        let mut got = 0;
        for _ in 0..200 {
            if link.transmit(vec![0u8; 4]).is_some() {
                got += 1;
            }
        }
        assert_eq!(link.delivered(), got);
        assert_eq!(link.delivered() + link.dropped(), 200);
        assert!((60..140).contains(&got), "delivered {got}/200");
    }

    #[test]
    fn mismatched_encoder_configuration_errors_cleanly() {
        let c = cfg();
        let mut sensor = Sensor::new(
            c,
            Box::new(UniformPolicy::new(0.9)),
            Box::new(StandardEncoder),
            Box::new(ChaCha20::new([3; 32])),
        );
        // Server expects AGE messages but the sensor sends standard ones.
        let server = Server::new(
            c,
            Box::new(AgeEncoder::new(400)),
            Box::new(ChaCha20::new([3; 32])),
        );
        let msg = sensor.process(&signal(1));
        // Either a decode error or (unlucky) garbage — never a panic.
        let _ = server.receive(&msg);
    }

    #[test]
    fn sensor_nonces_advance() {
        let c = cfg();
        let mut sensor = Sensor::new(
            c,
            Box::new(UniformPolicy::new(0.5)),
            Box::new(AgeEncoder::new(120)),
            Box::new(ChaCha20::new([9; 32])),
        );
        let truth = signal(2);
        let a = sensor.process(&truth);
        let b = sensor.process(&truth);
        assert_ne!(a, b, "same data must still produce distinct ciphertexts");
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn link_rejects_certain_loss() {
        let _ = Link::lossy(1.0, 0);
    }
}
