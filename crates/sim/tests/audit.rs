//! Integration tests for the leakage-audit layer: the runner's wire-record
//! emission, thread-count determinism of merged audit state, the
//! Standard-leaks/AGE-doesn't fixture, and the sealed-frame cross-check
//! against the transport.

#![cfg(feature = "telemetry")]

use std::sync::Arc;

use age_datasets::{DatasetKind, Scale};
use age_sim::{
    run_cells, CipherChoice, Defense, FaultPlan, FaultSetup, PolicyKind, Runner, SweepCell,
    SweepOptions,
};
use age_telemetry::{install_thread, LeakageSink, RecordingSink};

fn runner() -> Runner {
    Runner::new(DatasetKind::Epilepsy, Scale::Small, 7)
}

/// The grid audited by the determinism tests: both adaptive policies, the
/// leaky baseline plus both headline defenses, two rates, and one
/// fault-injected cell so the transport path is covered too.
fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for policy in [PolicyKind::Linear, PolicyKind::Deviation] {
        for defense in [Defense::Standard, Defense::Padded, Defense::Age] {
            for rate in [0.4, 0.6] {
                let mut cell = SweepCell::new(policy, defense, rate);
                cell.enforce_budget = false;
                cells.push(cell);
            }
        }
    }
    cells.push(
        SweepCell::new(PolicyKind::Linear, Defense::Age, 0.5).with_faults(FaultSetup::new(
            FaultPlan {
                drop_rate: 0.1,
                corrupt_rate: 0.05,
                ..FaultPlan::default()
            },
        )),
    );
    cells
}

fn audit_json(threads: usize) -> String {
    let sink = Arc::new(LeakageSink::new());
    let options = SweepOptions {
        threads,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    run_cells(&runner(), &grid(), &options);
    sink.take().report(50, 7).to_json()
}

#[test]
fn audit_state_is_byte_identical_across_thread_counts() {
    let single = audit_json(1);
    let quad = audit_json(4);
    assert!(!single.is_empty());
    assert_eq!(
        single, quad,
        "merged audit reports must not depend on the thread count"
    );
}

#[test]
fn standard_leaks_and_age_does_not_on_the_same_seeded_data() {
    let sink = Arc::new(LeakageSink::new());
    let options = SweepOptions {
        threads: 2,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    run_cells(&runner(), &grid(), &options);
    let report = sink.take().report(100, 7);

    let std_entries: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.encoder == "Std")
        .collect();
    let defended: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.encoder == "AGE" || e.encoder == "Padded")
        .collect();
    assert!(!std_entries.is_empty() && !defended.is_empty());

    // The undefended baseline leaks well above the gate threshold, and the
    // leak is statistically significant.
    assert!(
        std_entries
            .iter()
            .any(|e| e.nmi > 0.05 && e.p_value <= 0.05),
        "no Std stream leaked: {:?}",
        std_entries
            .iter()
            .map(|e| (e.label.as_str(), e.nmi, e.p_value))
            .collect::<Vec<_>>()
    );
    // Every defended stream is constant-size on the wire, so its NMI is
    // exactly zero — including the fault-injected cell.
    for e in &defended {
        assert_eq!(e.distinct_sizes, 1, "{}/{} varied", e.label, e.encoder);
        assert_eq!(e.nmi, 0.0, "{}/{} leaked", e.label, e.encoder);
    }

    // Timing channel: Std's size variation maps into the gap schedule
    // through the radio serialization time, so the same stream leaks
    // through gaps too — and significantly.
    assert!(
        std_entries
            .iter()
            .any(|e| e.timing_nmi > 0.05 && e.timing_p_value <= 0.05),
        "no Std stream leaked through timing: {:?}",
        std_entries
            .iter()
            .map(|e| (e.label.as_str(), e.timing_nmi, e.timing_p_value))
            .collect::<Vec<_>>()
    );
    // Fault-free defended cells run a metronome: one distinct gap, zero
    // timing NMI. (The fault-injected r0.50 cell legitimately varies its
    // gaps through retry backoff; the gate's significance test — not this
    // invariant — is what keeps that noise from failing the audit.)
    for e in defended.iter().filter(|e| !e.label.contains("r0.50")) {
        assert!(
            e.gap_observations > 0,
            "{}/{} has no gaps",
            e.label,
            e.encoder
        );
        assert_eq!(e.distinct_gaps, 1, "{}/{} gaps varied", e.label, e.encoder);
        assert_eq!(e.timing_nmi, 0.0, "{}/{} leaked timing", e.label, e.encoder);
    }
}

#[test]
fn audited_sizes_are_the_sealed_frames_the_transport_sent() {
    let sink = Arc::new(RecordingSink::new());
    let runner = runner();
    let faults = FaultSetup::new(FaultPlan {
        drop_rate: 0.15,
        corrupt_rate: 0.05,
        ..FaultPlan::default()
    });
    let result = {
        let _guard = install_thread(sink.clone());
        runner.run_with_transport(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
            None,
            Some(faults),
        )
    };
    let wires = sink.wire_records();
    // One wire record per transmitted (non-violated) sequence, in order —
    // including sequences later lost in transit, whose frames the
    // eavesdropper still saw.
    let transmitted: Vec<_> = result.records.iter().filter(|r| !r.violated).collect();
    assert_eq!(wires.len(), transmitted.len());
    assert!(
        transmitted.iter().any(|r| r.lost),
        "fixture should lose frames"
    );
    for (wire, rec) in wires.iter().zip(&transmitted) {
        assert_eq!(wire.encoder, "AGE");
        assert_eq!(wire.label, "Epilepsy/Linear/AGE/r0.50");
        assert_eq!(wire.event, rec.label, "wire event must be ground truth");
        assert_eq!(
            wire.wire_bytes, rec.message_bytes,
            "audited size must be the sealed frame length"
        );
    }
    // And the frames are sealed: larger than the plaintext target because
    // the cipher adds framing, constant across the stream.
    let first = wires[0].wire_bytes;
    assert!(wires.iter().all(|w| w.wire_bytes == first));

    // Every wire record carries the virtual send time of its *first*
    // radiation, and the clock only moves forward within a cell.
    assert!(wires.iter().all(|w| w.virtual_time > 0));
    assert!(
        wires
            .windows(2)
            .all(|w| w[0].virtual_time < w[1].virtual_time),
        "send stamps must be strictly increasing within a run"
    );
    // The stamps agree with the runner's own records.
    for (wire, rec) in wires.iter().zip(&transmitted) {
        assert_eq!(wire.virtual_time, rec.sent_at_us);
    }
}

#[test]
fn batch_records_carry_the_event_label() {
    let sink = Arc::new(RecordingSink::new());
    let runner = runner();
    let result = {
        let _guard = install_thread(sink.clone());
        runner.run(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        )
    };
    let records = sink.records();
    assert_eq!(records.len(), result.records.len());
    for (rec, seq) in records.iter().zip(&result.records) {
        assert_eq!(rec.event, Some(seq.label));
    }
}
