//! Fleet-scale determinism: the gateway's reports must be byte-identical
//! at any shard count and any thread count, and the aggregated fleet
//! traffic must hold the paper's two-channel leakage guarantee.
//!
//! These tests are the contract CI's determinism leg re-checks with
//! `cmp` on real report files; here the same comparisons run in-process
//! across more shard/thread combinations.

use age_gateway::Gateway;
use age_sim::fleet::{generate, provisioned_gateway, FleetConfig};

const SENSORS: u64 = 400;
const SEED: u64 = 2022;

fn run_fleet(config: &FleetConfig, shards: usize, threads: usize) -> Gateway {
    let traffic = generate(config);
    let mut gateway = provisioned_gateway(config, shards);
    gateway.run(&traffic.frames, threads);
    gateway
}

/// The staggered-rekey fleet: long enough that every sensor crosses
/// several epoch boundaries at its own splitmix phase.
fn rekey_config() -> FleetConfig {
    let mut config = FleetConfig::new(SENSORS, SEED);
    config.frames_per_sensor = 10;
    config.rekey_interval = Some(4);
    config
}

#[test]
fn fleet_report_is_byte_identical_across_shards_and_threads() {
    let config = FleetConfig::new(SENSORS, SEED);
    let reference = run_fleet(&config, 1, 1).fleet_report().to_json();
    for (shards, threads) in [(4, 1), (4, 4), (8, 3), (2, 8)] {
        let report = run_fleet(&config, shards, threads).fleet_report().to_json();
        assert_eq!(
            report, reference,
            "fleet report diverged at {shards} shards / {threads} threads"
        );
    }
}

#[test]
fn rekeying_fleet_report_is_byte_identical_across_shards_and_threads() {
    let config = rekey_config();
    let reference_gateway = run_fleet(&config, 1, 1);
    let reference = reference_gateway.fleet_report().to_json();
    let stats = reference_gateway.fleet_stats();
    assert_eq!(
        stats.accepted, stats.frames,
        "rekeying fleet fully accepted"
    );
    assert!(
        stats.rotations >= 2 * SENSORS,
        "interval 4 over 10 frames crosses ≥2 boundaries per sensor, saw {}",
        stats.rotations
    );
    for (shards, threads) in [(4, 1), (4, 4), (8, 3)] {
        let report = run_fleet(&config, shards, threads).fleet_report().to_json();
        assert_eq!(
            report, reference,
            "rekeying fleet report diverged at {shards} shards / {threads} threads"
        );
    }
}

#[test]
fn every_generated_frame_is_accepted() {
    let config = FleetConfig::new(SENSORS, SEED);
    let gateway = run_fleet(&config, 4, 4);
    let report = gateway.fleet_report();
    assert_eq!(report.stats.frames, SENSORS * 4);
    assert_eq!(report.stats.accepted, report.stats.frames);
    assert_eq!(report.stats.rejected(), 0);
    assert_eq!(report.sensors, SENSORS);
    assert_eq!(report.active_sensors, SENSORS);
    // Shard counters and per-receiver counters tell the same story.
    let receivers = gateway.receiver_stats();
    assert_eq!(receivers.accepted, report.stats.accepted);
    assert_eq!(receivers.rejected(), 0);
}

#[test]
fn defended_cohort_is_constant_size_baseline_is_not() {
    let config = FleetConfig::new(SENSORS, SEED);
    let report = run_fleet(&config, 4, 2).fleet_report();
    let age = &report.cohorts[0];
    let std_cohort = &report.cohorts[1];
    assert_eq!(age.name, "AGE");
    assert!(age.stats.wire_constant(), "AGE wire size must be constant");
    assert_eq!(std_cohort.name, "Std");
    assert!(
        !std_cohort.stats.wire_constant(),
        "the Std baseline must vary in size or the gate is vacuous"
    );
}

#[test]
fn shard_occupancy_partitions_the_fleet() {
    let config = FleetConfig::new(SENSORS, SEED);
    let gateway = provisioned_gateway(&config, 8);
    let occupancy = gateway.shard_occupancy();
    assert_eq!(occupancy.len(), 8);
    assert_eq!(occupancy.iter().sum::<usize>() as u64, SENSORS);
    assert!(
        occupancy.iter().all(|&n| n > 0),
        "no shard sits empty at 400 sensors"
    );
}

#[cfg(feature = "telemetry")]
mod telemetry_gated {
    use super::*;
    use age_sim::fleet::fleet_gateway_config;
    use age_telemetry::LeakageGate;

    /// Moderate permutation count: enough resolution for p-values well
    /// under the 0.05 gate, small enough to keep the test quick.
    const PERMUTATIONS: usize = 200;

    fn leakage_json(shards: usize, threads: usize) -> String {
        let config = FleetConfig::new(SENSORS, SEED);
        let gateway = run_fleet(&config, shards, threads);
        gateway.leakage_audit().report(PERMUTATIONS, SEED).to_json()
    }

    #[test]
    fn leakage_report_is_byte_identical_across_shards_and_threads() {
        let reference = leakage_json(1, 1);
        for (shards, threads) in [(4, 1), (4, 4), (6, 2)] {
            assert_eq!(
                leakage_json(shards, threads),
                reference,
                "LEAKAGE json diverged at {shards} shards / {threads} threads"
            );
        }
    }

    #[test]
    fn two_channel_gate_is_green_on_aggregated_fleet_traffic() {
        let config = FleetConfig::new(SENSORS, SEED);
        let gateway = run_fleet(&config, 4, 4);
        let report = gateway.leakage_audit().report(PERMUTATIONS, SEED);
        let gate = LeakageGate {
            nmi_threshold: 0.05,
            p_threshold: 0.05,
            min_observations: 30,
            defended: vec!["AGE".to_string()],
            baseline: vec!["Std".to_string()],
        };
        let outcome = gate.evaluate(&report.entries);
        assert!(outcome.passed, "fleet leakage gate failed:\n{report}",);
        assert!(outcome.defended_checked >= 1);
        assert!(outcome.baseline_checked >= 1);
    }

    #[test]
    fn two_channel_gate_is_green_on_a_rekeying_fleet() {
        // Rotations must be invisible to both leakage channels: same
        // frame sizes, same send cadence, only the key material moves.
        let config = rekey_config();
        let gateway = run_fleet(&config, 4, 4);
        let report = gateway.leakage_audit().report(PERMUTATIONS, SEED);
        let gate = LeakageGate {
            nmi_threshold: 0.05,
            p_threshold: 0.05,
            min_observations: 30,
            defended: vec!["AGE".to_string()],
            baseline: vec!["Std".to_string()],
        };
        let outcome = gate.evaluate(&report.entries);
        assert!(outcome.passed, "rekeying fleet leaked:\n{report}");
    }

    #[test]
    fn rekeying_nonce_audits_are_clean_on_both_sides() {
        let config = rekey_config();
        let traffic = generate(&config);
        assert!(traffic.sealed_nonces.is_clean(), "seal-side audit");
        assert!(
            traffic.sealed_nonces.cells() > SENSORS as usize,
            "sensors must seal under more than one epoch"
        );
        let mut gateway = provisioned_gateway(&config, 4);
        gateway.run(&traffic.frames, 4);
        let accepted_side = gateway.nonce_audit();
        assert!(accepted_side.is_clean(), "gateway-side audit");
        assert_eq!(accepted_side.distinct(), traffic.sealed_nonces.distinct());
        assert_eq!(accepted_side.cells(), traffic.sealed_nonces.cells());
    }

    #[test]
    fn nonce_audits_are_clean_and_account_for_every_frame() {
        let config = FleetConfig::new(SENSORS, SEED);
        let traffic = generate(&config);
        assert!(traffic.sealed_nonces.is_clean(), "seal-side audit");
        assert_eq!(traffic.sealed_nonces.frames(), SENSORS * 4);
        assert_eq!(traffic.sealed_nonces.sensors(), SENSORS as usize);

        let mut gateway = provisioned_gateway(&config, 4);
        gateway.run(&traffic.frames, 4);
        let accepted_side = gateway.nonce_audit();
        assert!(accepted_side.is_clean(), "gateway-side audit");
        assert_eq!(accepted_side.distinct(), traffic.sealed_nonces.distinct());
        assert_eq!(accepted_side.sensors(), SENSORS as usize);
    }

    #[test]
    fn nonce_audit_is_identical_across_shard_counts() {
        let config = FleetConfig::new(SENSORS, SEED);
        let traffic = generate(&config);
        let audits: Vec<_> = [(1usize, 1usize), (4, 4), (8, 2)]
            .into_iter()
            .map(|(shards, threads)| {
                let mut gateway = provisioned_gateway(&config, shards);
                gateway.run(&traffic.frames, threads);
                gateway.nonce_audit()
            })
            .collect();
        assert_eq!(audits[0], audits[1]);
        assert_eq!(audits[1], audits[2]);
    }

    #[test]
    fn gateway_config_shard_count_never_reaches_the_report() {
        // The config admits 0 shards; the gateway normalizes to 1 and
        // the report stays comparable with every other count.
        let config = FleetConfig::new(50, 9);
        let traffic = generate(&config);
        let mut zero = Gateway::new(fleet_gateway_config(&config, 0));
        for id in 0..config.sensors {
            zero.provision(id, config.cohort_of(id))
                .expect("cohort in range");
        }
        zero.run(&traffic.frames, 3);
        let mut one = provisioned_gateway(&config, 1);
        one.run(&traffic.frames, 1);
        assert_eq!(zero.fleet_report().to_json(), one.fleet_report().to_json());
    }
}
