//! The streaming-monitor contract: health snapshots are byte-identical
//! at any shard/thread count, an injected mid-trace regression raises a
//! windowed alarm *while frames are still in flight* (the end-of-run
//! gate structurally cannot), and the postmortem freezes a
//! deterministic flight-recorder dump at the moment of the trigger.
#![cfg(feature = "telemetry")]

use age_sim::fleet::FleetConfig;
use age_sim::monitor::{
    corruption_scenario, regression_scenario, run_monitored, MonitorRunConfig, MonitoredRun,
};
use age_telemetry::AlarmKind;

const SEED: u64 = 2022;

fn healthy(shards: usize, threads: usize) -> MonitoredRun {
    run_monitored(&MonitorRunConfig::new(
        FleetConfig::new(150, SEED),
        shards,
        threads,
    ))
}

#[test]
fn healthy_fleet_raises_no_alarms_and_gate_passes() {
    let run = healthy(4, 4);
    assert!(
        run.alarms.is_empty(),
        "healthy fleet alarmed: {:?}",
        run.alarms
    );
    assert!(run.postmortem.is_none(), "{:?}", run.postmortem_trigger);
    assert!(run.gate.passed, "end-of-run gate failed:\n{}", run.leakage);
    assert_eq!(run.report.stats.frames, 150 * 4);
    assert_eq!(run.report.stats.rejected(), 0);

    // Snapshot accounting: ticks partition the trace exactly.
    let total: u64 = run.snapshots.iter().map(|s| s.delta_frames).sum();
    assert_eq!(total, run.report.stats.frames);
    let last = run.snapshots.last().expect("at least one tick");
    assert_eq!(last.stats.frames, run.report.stats.frames);
    assert_eq!(last.alarms_total, 0);
    assert_eq!(run.health_jsonl.lines().count(), run.snapshots.len());
    assert!(run.prometheus.contains("age_gateway_alarms_total 0"));
    // Latency is off, so the quantile fields must stay 0 — that is what
    // keeps the stream comparable across runs.
    assert!(run.snapshots.iter().all(|s| s.p99_ingest_ns == 0));
}

#[test]
fn health_stream_is_byte_identical_across_shard_and_thread_configs() {
    let reference = healthy(1, 1);
    for (shards, threads) in [(4, 4), (3, 2)] {
        let run = healthy(shards, threads);
        assert_eq!(
            run.health_jsonl, reference.health_jsonl,
            "HEALTH.jsonl diverged at {shards} shards / {threads} threads"
        );
        assert_eq!(
            run.prometheus, reference.prometheus,
            "prometheus exposition diverged at {shards} shards / {threads} threads"
        );
    }
}

#[test]
fn timing_regression_trips_a_windowed_alarm_mid_run() {
    let run = run_monitored(&regression_scenario(100, SEED));

    let first = run
        .alarms
        .first()
        .expect("the injected regression must alarm");
    assert_eq!(first.kind, AlarmKind::TimingLeak, "{first}");
    assert_eq!(first.stream, "AGE");
    assert!(
        first.start_us >= 1_000_000,
        "alarm predates the injected regression: {first}"
    );
    assert!(first.p_value <= 0.05, "{first}");

    // The alarm fired mid-run: frames were still in flight.
    let at = run
        .first_alarm_at_frames
        .expect("alarm must record when it fired");
    assert!(
        at < run.report.stats.frames,
        "alarm only fired once the trace had fully drained ({at} of {})",
        run.report.stats.frames
    );

    // The pre-regression prefix stayed clean.
    let clean_ticks = run
        .snapshots
        .iter()
        .take_while(|s| s.alarms_total == 0)
        .count();
    assert!(clean_ticks >= 2, "no clean warm-up ticks before the alarm");
    assert!(
        clean_ticks < run.snapshots.len(),
        "alarm never reached a snapshot"
    );

    // The postmortem froze at the alarm, not at end of trace.
    assert_eq!(run.postmortem_trigger.as_deref(), Some("windowed-alarm"));
    let postmortem = run.postmortem.as_deref().expect("postmortem rendered");
    assert!(postmortem.contains("\"trigger\": \"windowed-alarm\""));
    assert!(postmortem.contains("\"kind\": \"timing-leak\""));
    assert!(postmortem.contains("\"rung\": \"accepted\""));
}

#[test]
fn regression_artifacts_are_byte_identical_across_shard_counts() {
    let runs: Vec<MonitoredRun> = [(1usize, 1usize), (4, 4), (2, 3)]
        .into_iter()
        .map(|(shards, threads)| {
            let mut scenario = regression_scenario(100, SEED);
            scenario.shards = shards;
            scenario.threads = threads;
            run_monitored(&scenario)
        })
        .collect();
    for run in &runs[1..] {
        assert_eq!(run.health_jsonl, runs[0].health_jsonl);
        // The scenario's ring capacity exceeds the trace length, so no
        // shard ever evicts and the merged dump is partition-free.
        assert_eq!(run.postmortem, runs[0].postmortem);
        assert_eq!(run.alarms, runs[0].alarms);
        assert_eq!(run.first_alarm_at_frames, runs[0].first_alarm_at_frames);
    }
}

#[test]
fn corruption_floods_the_rejection_rate_alarm() {
    let run = run_monitored(&corruption_scenario(120, 7));
    assert!(
        run.report.stats.auth_failed > 0,
        "corruption never reached the gateway"
    );
    let rate = run
        .alarms
        .iter()
        .find(|a| a.kind == AlarmKind::RejectionRate)
        .expect("a third of traffic rejected must trip the rate alarm");
    assert_eq!(rate.stream, "fleet");
    assert!(rate.value > 0.25, "{rate}");
    assert!(
        rate.start_us >= 1_000_000,
        "rate alarm predates the corruption: {rate}"
    );
    let postmortem = run.postmortem.as_deref().expect("postmortem rendered");
    assert!(postmortem.contains("\"kind\": \"rejection-rate\""));
    assert!(
        postmortem.contains("\"rung\": \"auth_failed\""),
        "flight recorder must retain the rejected frames"
    );
    assert!(postmortem.contains("\"seq\": null"));
}
