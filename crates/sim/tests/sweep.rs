//! Determinism of the parallel sweep: identically seeded sweeps must be
//! byte-identical — experiment reports *and* telemetry rollups — no matter
//! how many worker threads ran them.

use std::sync::Arc;

use age_datasets::{DatasetKind, Scale};
use age_sim::{
    run_cells, CipherChoice, Defense, ExperimentResult, PolicyKind, Runner, SweepCell, SweepOptions,
};
use age_telemetry::SummarySink;

fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &rate in &[0.4, 0.7] {
        cells.push(SweepCell::new(PolicyKind::Uniform, Defense::Standard, rate));
        cells.push(SweepCell::new(PolicyKind::Linear, Defense::Age, rate));
        cells.push(SweepCell::new(PolicyKind::Linear, Defense::Standard, rate));
        cells.push(SweepCell::new(PolicyKind::Deviation, Defense::Age, rate));
        cells.push(SweepCell {
            cipher: CipherChoice::Aes128Cbc,
            ..SweepCell::new(PolicyKind::Deviation, Defense::Padded, rate)
        });
    }
    cells
}

fn sweep_at(threads: usize) -> (Vec<ExperimentResult>, String) {
    // A fresh runner per sweep: cold fit caches are part of what must not
    // depend on the thread count.
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let sink = Arc::new(SummarySink::new());
    let opts = SweepOptions {
        threads,
        sink: Some(sink.clone()),
        // Stage timings are wall-clock and appear in the summary table; they
        // are the one legitimately non-deterministic field.
        deterministic_timings: true,
    };
    let results = run_cells(&runner, &grid(), &opts);
    (results, sink.take().to_string())
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let (one, _) = sweep_at(1);
    let (four, _) = sweep_at(4);
    assert_eq!(one.len(), four.len());
    for (i, (a, b)) in one.iter().zip(&four).enumerate() {
        assert_eq!(a, b, "cell #{i} diverged between 1 and 4 threads");
    }
    // Belt and braces: the Debug serialization (every float bit) matches.
    assert_eq!(format!("{one:?}"), format!("{four:?}"));
}

#[test]
fn telemetry_rollups_are_identical_across_thread_counts() {
    let (_, one) = sweep_at(1);
    let (_, four) = sweep_at(4);
    assert!(!one.is_empty(), "sweep produced an empty telemetry summary");
    assert_eq!(one, four, "summary rollups diverged between thread counts");
}
