//! Integration tests tying the experiment runner to the telemetry layer:
//! per-batch record emission, the constant-size (stddev = 0) invariant, and
//! byte-identical JSONL output across identically-seeded runs.

#![cfg(feature = "telemetry")]

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use age_datasets::{DatasetKind, Scale};
use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
use age_telemetry::metrics::global;
use age_telemetry::{
    install_thread, set_context_label, set_timings_enabled, JsonlSink, RecordingSink, Summary,
};

/// A `Write` target whose bytes stay reachable after the sink takes
/// ownership of the writer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn runner_emits_one_record_per_batch_with_the_message_layout() {
    let sink = Arc::new(RecordingSink::new());
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let calls_before = global::ENCODE_CALLS.get();
    let result = {
        let _guard = install_thread(sink.clone());
        runner.run(
            PolicyKind::Uniform,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            false,
        )
    };
    let records = sink.records();
    assert_eq!(records.len(), result.records.len());
    assert!(global::ENCODE_CALLS.get() - calls_before >= records.len() as u64);
    let mut timed_ns = 0u64;
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.encoder, "AGE");
        assert_eq!(rec.label, "Epilepsy/Uniform/AGE/r0.50");
        assert_eq!(rec.batch, i as u64);
        // The record mirrors `inspect_message`'s layout: the four sections
        // account for every bit, and the message hits its target exactly.
        assert_eq!(rec.message_len, rec.target_bytes.unwrap());
        assert_eq!(
            rec.header_bits + rec.directory_bits + rec.data_bits + rec.padding_bits,
            rec.message_len * 8,
            "layout sections must tile the message"
        );
        assert_eq!(rec.groups.len(), rec.groups_final);
        assert_eq!(
            rec.groups.iter().map(|g| g.count).sum::<usize>(),
            rec.kept_len,
            "groups must cover every kept measurement"
        );
        assert!(rec.kept_len <= rec.input_len);
        timed_ns += rec.timings.total_ns();
    }
    assert!(timed_ns > 0, "stage timings should be collected by default");
}

#[test]
fn summary_stddev_is_zero_for_fixed_defenses_and_positive_for_standard() {
    let sink = Arc::new(RecordingSink::new());
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    {
        let _guard = install_thread(sink.clone());
        for defense in [Defense::Age, Defense::Padded, Defense::Standard] {
            runner.run(
                PolicyKind::Linear,
                defense,
                0.5,
                CipherChoice::ChaCha20,
                false,
            );
        }
    }
    let records = sink.records();
    let summary = Summary::from_records(&records);

    let age = summary.stream("Epilepsy/Linear/AGE/r0.50", "AGE").unwrap();
    assert!(age.batches > 0);
    assert_eq!(age.size_stddev(), 0.0, "AGE messages must not vary in size");
    assert!(age.is_constant_size());

    let padded = summary
        .stream("Epilepsy/Linear/Padded/r0.50", "Padded")
        .unwrap();
    assert_eq!(
        padded.size_stddev(),
        0.0,
        "padding must close the size channel"
    );
    assert!(padded.is_constant_size());

    let standard = summary
        .stream("Epilepsy/Linear/Std/r0.50", "Standard")
        .unwrap();
    assert!(
        standard.size_stddev() > 0.0,
        "the undefended baseline must leak through its sizes"
    );
    assert!(!standard.is_constant_size());
}

/// Runs one experiment with JSONL telemetry into an in-memory buffer and
/// returns the bytes written.
fn capture_run(seed: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonlSink::new(buf.clone()).without_timings());
    // Wall-clock laps are the one nondeterministic input; drop them at the
    // source too so the encoders take the identical code path both times.
    set_timings_enabled(false);
    // Start numbering from a fresh stream: re-asserting an unchanged label
    // deliberately does not reset the batch counter.
    set_context_label("");
    // Key epochs count reruns per cell (that is what makes the nonce audit
    // sound), so byte-identical reruns must rewind the counters first.
    age_telemetry::reset_epoch_counters();
    {
        let _guard = install_thread(sink);
        let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, seed);
        runner.run(
            PolicyKind::Linear,
            Defense::Age,
            0.5,
            CipherChoice::ChaCha20,
            true,
        );
    }
    set_timings_enabled(true);
    let bytes = buf.0.lock().unwrap().clone();
    bytes
}

#[test]
fn identically_seeded_runs_write_byte_identical_jsonl() {
    let first = capture_run(2022);
    let second = capture_run(2022);
    assert!(!first.is_empty(), "the run must emit records");
    assert!(first.ends_with(b"\n"));
    assert_eq!(
        first, second,
        "same seed must reproduce the exact telemetry stream"
    );
    let third = capture_run(2023);
    assert_ne!(first, third, "a different seed must change the stream");
}
