//! Reboot-survival acceptance tests: the sequence-reservation journal must
//! keep every (key, nonce) pair unique no matter where power is cut, the
//! receiver must keep accepting the post-reboot stream, wire frames must
//! stay constant-size, and the journal's flash writes must be billed
//! against the same energy ledger as the radio. The run-wide nonce auditor
//! is also proven to *fail* when a sensor reboots without the journal.

#![cfg(feature = "telemetry")]

use std::collections::BTreeSet;
use std::sync::Arc;

use age_crypto::ChaCha20Poly1305;
use age_sim::{
    run_cells, CipherChoice, Defense, FaultPlan, FaultSetup, NvmFaultPlan, PolicyKind, PowerFaults,
    Runner, SweepCell, SweepOptions,
};
use age_telemetry::{reset_epoch_counters, LeakageSink, NonceAudit, NonceAuditSink};
use age_transport::{FaultChannel, Link, NvmStore, RetryPolicy, SequenceJournal};

const KEY: [u8; 32] = [7; 32];

fn journaled_link(nvm: NvmFaultPlan, nvm_seed: u64, block: u64) -> Link {
    Link::with_channel(
        Box::new(ChaCha20Poly1305::new(KEY)),
        Box::new(ChaCha20Poly1305::new(KEY)),
        FaultChannel::with_seed(FaultPlan::NONE, 0),
        RetryPolicy::default(),
    )
    .with_journal(SequenceJournal::new(
        NvmStore::with_seed(nvm, nvm_seed),
        block,
    ))
}

/// The tentpole property: reboot the sensor at *every* possible cut point
/// in a 200-frame window — both before the seal and in the torn window
/// after the journal write — over both reliable and fault-injected NVM,
/// and assert that no sequence number (hence no nonce) is ever used twice,
/// that every frame that radiated was accepted by the receiver, and that
/// the wire-frame size never changes across a reboot.
#[test]
fn every_cut_point_in_a_200_frame_window_is_nonce_safe() {
    const WINDOW: usize = 200;
    let payload = [0x5A_u8; 48];
    let plans = [
        NvmFaultPlan::NONE,
        NvmFaultPlan {
            fail_rate: 0.1,
            torn_rate: 0.25,
            seed: 0,
        },
    ];
    for (p, plan) in plans.iter().enumerate() {
        for cut in 0..WINDOW {
            // torn_window = false cuts power before anything happened;
            // true cuts between the journal write + seal and the radio.
            for torn_window in [false, true] {
                let nvm_seed = (p * WINDOW + cut) as u64;
                let mut link = journaled_link(*plan, nvm_seed, 16);
                let mut sealed = BTreeSet::new();
                for i in 0..WINDOW {
                    if i == cut {
                        if torn_window {
                            // abort_send reserves + seals a frame that
                            // never radiates, then loses power.
                            link.abort_send(&payload);
                        } else {
                            link.reboot_sensor();
                        }
                    }
                    let delivery = link.send(&payload);
                    if delivery.attempts == 0 {
                        // The journal's NVM write was exhausted: the
                        // message is lost *without* radiating, and no
                        // sequence number was consumed on the air.
                        continue;
                    }
                    assert!(
                        sealed.insert(delivery.sequence),
                        "sequence {} sealed twice (cut={cut}, torn={torn_window}, plan={p})",
                        delivery.sequence
                    );
                    assert!(
                        delivery.delivered,
                        "post-reboot frame {} rejected (cut={cut}, torn={torn_window}, plan={p})",
                        delivery.sequence
                    );
                }
                assert!(
                    link.channel_stats().wire_lengths_constant(),
                    "a reboot changed the wire-frame size (cut={cut}, torn={torn_window})"
                );
                assert_eq!(link.stats().sensor_reboots, 1);
            }
        }
    }
}

/// A reboot can land mid-window too: reboot after *every* frame of one run
/// (several times, torn NVM included) and the whole stream still never
/// reuses a sequence and stays accepted.
#[test]
fn repeated_reboots_in_one_window_stay_nonce_safe() {
    let payload = [0x33_u8; 32];
    let plan = NvmFaultPlan {
        fail_rate: 0.2,
        torn_rate: 0.3,
        seed: 0,
    };
    let mut link = journaled_link(plan, 99, 8);
    let mut sealed = BTreeSet::new();
    for round in 0..50 {
        for _ in 0..4 {
            let delivery = link.send(&payload);
            if delivery.attempts == 0 {
                continue;
            }
            assert!(sealed.insert(delivery.sequence), "round {round} reused");
            assert!(delivery.delivered);
        }
        if round % 2 == 0 {
            link.reboot_sensor();
        } else {
            link.abort_send(&payload);
        }
    }
    assert_eq!(link.stats().sensor_reboots, 50);
    assert!(link.stats().journal_flushes > 0);
    assert!(link.channel_stats().wire_lengths_constant());
}

/// The auditor's failure path: a sensor that reboots *without* the journal
/// restarts its counter at zero and re-seals old sequence numbers — the
/// nonce audit must flag the run, and the receiver must reject the replays.
#[test]
fn nonce_auditor_fails_when_the_journal_is_bypassed() {
    let payload = [0x11_u8; 40];
    let mut link = Link::with_channel(
        Box::new(ChaCha20Poly1305::new(KEY)),
        Box::new(ChaCha20Poly1305::new(KEY)),
        FaultChannel::with_seed(FaultPlan::NONE, 0),
        RetryPolicy::default(),
    );
    assert!(!link.has_journal());
    let mut audit = NonceAudit::new();
    for _ in 0..10 {
        let delivery = link.send(&payload);
        audit.observe("no-journal#0", delivery.sequence);
    }
    assert!(audit.is_clean());
    // Power loss with nothing persisted: the counter restarts at zero.
    link.reboot_sensor();
    for _ in 0..10 {
        let delivery = link.send(&payload);
        audit.observe("no-journal#0", delivery.sequence);
    }
    assert!(
        !audit.is_clean(),
        "re-sealing without the journal must be caught"
    );
    assert_eq!(audit.violations().len(), 10);
    // And the receiver saw them as replays: nothing post-reboot delivered.
    assert!(link.stats().replay_rejected >= 10);
}

/// Journal flash writes are billed against the same budget ledger as the
/// radio: an identical cell run with the journal (rate-0 power faults, so
/// nothing else changes) spends exactly `flushes × nvm_write_per_record`
/// more energy.
#[test]
fn journal_writes_are_billed_against_the_same_ledger() {
    let runner = Runner::new(
        age_datasets::DatasetKind::Epilepsy,
        age_datasets::Scale::Small,
        7,
    );
    let base_setup = FaultSetup::new(FaultPlan::NONE);
    let journal_setup = base_setup.with_power(PowerFaults {
        reset_rate: 0.0,
        seed: 7,
        block: 16,
        nvm: NvmFaultPlan::NONE,
    });
    let run = |setup| {
        runner.run_with_transport(
            PolicyKind::Linear,
            Defense::Age,
            0.6,
            CipherChoice::ChaCha20,
            true,
            Some(40),
            Some(setup),
        )
    };
    let without = run(base_setup);
    let with = run(journal_setup);
    let energy =
        |r: &age_sim::ExperimentResult| -> f64 { r.records.iter().map(|rec| rec.energy_mj).sum() };
    let flushes = with.transport.unwrap().link.journal_flushes;
    assert!(flushes > 0, "reservations must hit the NVM");
    let expected = runner.energy_model().journal_write_cost(flushes).0;
    let delta = energy(&with) - energy(&without);
    assert!(
        (delta - expected).abs() < 1e-9,
        "journal energy not billed to the ledger: delta {delta} vs expected {expected}"
    );
    // Same nonces delivered, same reconstruction: only the flash energy
    // moved.
    assert_eq!(without.records.len(), with.records.len());
    for (a, b) in without.records.iter().zip(&with.records) {
        assert_eq!(a.message_bytes, b.message_bytes);
        assert_eq!(a.mae, b.mae);
    }
}

fn power_cells(reset_rate: f64, seed: u64) -> Vec<SweepCell> {
    [Defense::Standard, Defense::Age]
        .iter()
        .map(|&defense| {
            let mut cell = SweepCell::new(PolicyKind::Linear, defense, 0.6);
            cell.cipher = CipherChoice::ChaCha20Poly1305;
            cell.enforce_budget = false;
            cell.limit = Some(60);
            cell.faults = Some(
                FaultSetup::new(FaultPlan {
                    drop_rate: 0.1,
                    corrupt_rate: 0.05,
                    seed,
                    ..FaultPlan::NONE
                })
                .with_power(PowerFaults::at_rate(reset_rate, seed)),
            );
            cell
        })
        .collect()
}

/// Power-fault sweeps are byte-identical at any thread count — results and
/// the merged nonce audit both — exactly like the channel's fault streams.
#[test]
fn power_fault_sweeps_are_byte_identical_across_thread_counts() {
    let runner = Runner::new(
        age_datasets::DatasetKind::Epilepsy,
        age_datasets::Scale::Small,
        11,
    );
    let cells = power_cells(0.08, 11);
    let sweep = |threads: usize| {
        reset_epoch_counters();
        let sink = Arc::new(NonceAuditSink::new());
        let options = SweepOptions {
            threads,
            sink: Some(sink.clone()),
            deterministic_timings: true,
        };
        let results = run_cells(&runner, &cells, &options);
        (results, sink.take())
    };
    let (single, single_audit) = sweep(1);
    let (quad, quad_audit) = sweep(4);
    assert_eq!(single, quad, "results must not depend on the thread count");
    assert_eq!(
        single_audit, quad_audit,
        "the merged nonce audit must not depend on the thread count"
    );
    assert!(single_audit.frames() > 0);
    assert!(single_audit.is_clean(), "{single_audit}");
    let reboots: usize = single
        .iter()
        .map(|r| r.transport.unwrap().link.sensor_reboots)
        .sum();
    assert!(reboots > 0, "the schedule must actually cut power");
}

/// The PR-4 leakage gate stays green under power faults: AGE frames are
/// still constant-size on the wire across reboots, so their NMI is exactly
/// zero.
#[test]
fn leakage_stays_zero_under_power_faults() {
    let runner = Runner::new(
        age_datasets::DatasetKind::Epilepsy,
        age_datasets::Scale::Small,
        13,
    );
    let sink = Arc::new(LeakageSink::new());
    let options = SweepOptions {
        threads: 2,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    run_cells(&runner, &power_cells(0.1, 13), &options);
    let report = sink.take().report(50, 7);
    let defended: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.encoder == "AGE")
        .collect();
    assert!(!defended.is_empty());
    for e in &defended {
        assert_eq!(e.distinct_sizes, 1, "{} varied under power faults", e.label);
        assert_eq!(e.nmi, 0.0, "{} leaked under power faults", e.label);
    }
}
