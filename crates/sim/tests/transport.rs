//! Fault-injected transport, end to end: sweeps stay byte-identical across
//! thread counts with faults enabled, every wire frame keeps the sealed
//! fixed size under drops and corruption, and the receiver degrades
//! gracefully (skipped batches, bumped counters) instead of panicking.

use age_datasets::{DatasetKind, Scale};
use age_sim::{
    run_cells, CipherChoice, Defense, ExperimentResult, FaultPlan, FaultSetup, PolicyKind,
    RetryPolicy, Runner, SweepCell, SweepOptions,
};

fn faulty_grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &rate in &[0.4, 0.7] {
        let lossy = FaultSetup::new(FaultPlan::lossy(0.2, 11));
        let noisy = FaultSetup::new(FaultPlan {
            drop_rate: 0.15,
            corrupt_rate: 0.15,
            seed: 12,
            ..FaultPlan::NONE
        })
        .with_retry(RetryPolicy::none());
        cells.push(SweepCell::new(PolicyKind::Linear, Defense::Age, rate).with_faults(lossy));
        cells.push(SweepCell::new(PolicyKind::Linear, Defense::Standard, rate).with_faults(noisy));
        cells.push(
            SweepCell {
                cipher: CipherChoice::ChaCha20Poly1305,
                ..SweepCell::new(PolicyKind::Uniform, Defense::Age, rate)
            }
            .with_faults(noisy),
        );
    }
    cells
}

fn sweep_at(threads: usize) -> Vec<ExperimentResult> {
    // A fresh runner per sweep: cold fit caches are part of what must not
    // depend on the thread count.
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let opts = SweepOptions {
        threads,
        ..Default::default()
    };
    run_cells(&runner, &faulty_grid(), &opts)
}

#[test]
fn faulty_sweeps_are_identical_across_thread_counts() {
    let one = sweep_at(1);
    let two = sweep_at(2);
    assert_eq!(one.len(), two.len());
    for (i, (a, b)) in one.iter().zip(&two).enumerate() {
        assert_eq!(a, b, "faulty cell #{i} diverged between 1 and 2 threads");
    }
    // Belt and braces: the Debug serialization (every float bit) matches.
    assert_eq!(format!("{one:?}"), format!("{two:?}"));
}

#[test]
fn age_wire_frames_stay_sealed_size_under_faults() {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let setup = FaultSetup::new(FaultPlan {
        drop_rate: 0.2,
        corrupt_rate: 0.2,
        seed: 5,
        ..FaultPlan::NONE
    });
    let result = runner.run_with_transport(
        PolicyKind::Linear,
        Defense::Age,
        0.5,
        CipherChoice::ChaCha20Poly1305,
        false,
        None,
        Some(setup),
    );
    let transport = result.transport.expect("fault runs report transport stats");
    // Every frame the attacker tapped — including retransmissions and
    // corrupted copies — had exactly the sealed fixed size.
    assert!(transport.channel.wire_lengths_constant());
    assert!(transport.channel.wire_min_len.is_some());
    let sizes: Vec<usize> = result
        .records
        .iter()
        .filter(|r| !r.violated)
        .map(|r| r.message_bytes)
        .collect();
    assert!(!sizes.is_empty());
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "AGE frame sizes must not vary under faults"
    );
    // Even counting lost messages at their on-air size, sizes carry nothing.
    let labels: Vec<usize> = result
        .records
        .iter()
        .filter(|r| !r.violated)
        .map(|r| r.label)
        .collect();
    assert_eq!(age_attack::nmi(&labels, &sizes), 0.0);
}

#[test]
fn corrupted_frames_are_skipped_not_fatal() {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let setup = FaultSetup::new(FaultPlan {
        corrupt_rate: 0.5,
        seed: 21,
        ..FaultPlan::NONE
    })
    .with_retry(RetryPolicy::none());
    let result = runner.run_with_transport(
        PolicyKind::Linear,
        Defense::Age,
        0.5,
        CipherChoice::ChaCha20Poly1305,
        false,
        None,
        Some(setup),
    );
    let transport = result.transport.expect("fault runs report transport stats");
    // AEAD rejects the flipped bits; the receiver skips those batches and
    // the run completes with guessed values instead of a panic.
    assert!(transport.link.auth_failed > 0);
    assert!(result.losses() > 0);
    assert!(
        result.losses() < result.records.len(),
        "some messages survive"
    );
    for record in &result.records {
        assert!(record.lost || record.mae.is_finite());
    }
}

#[test]
fn retransmission_energy_is_charged() {
    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let plan = FaultPlan::drops(0.3, 4);
    let clean = runner.run_with_transport(
        PolicyKind::Linear,
        Defense::Age,
        0.5,
        CipherChoice::ChaCha20Poly1305,
        false,
        None,
        Some(FaultSetup::new(FaultPlan::NONE)),
    );
    let faulty = runner.run_with_transport(
        PolicyKind::Linear,
        Defense::Age,
        0.5,
        CipherChoice::ChaCha20Poly1305,
        false,
        None,
        Some(FaultSetup::new(plan)),
    );
    let energy =
        |r: &age_sim::ExperimentResult| -> f64 { r.records.iter().map(|rec| rec.energy_mj).sum() };
    let retried = faulty.transport.unwrap().link.frames_retried;
    assert!(retried > 0, "a 30% drop rate must force retransmissions");
    assert!(
        energy(&faulty) > energy(&clean),
        "retransmissions must cost energy: {} vs {}",
        energy(&faulty),
        energy(&clean)
    );
    let max_attempts: u32 = faulty.records.iter().map(|r| r.attempts).max().unwrap();
    assert!(max_attempts > 1);
}

#[cfg(feature = "telemetry")]
#[test]
fn fault_runs_bump_transport_counters() {
    use age_telemetry::metrics::global;

    let runner = Runner::new(DatasetKind::Epilepsy, Scale::Small, 7);
    let sent_before = global::FRAMES_SENT.get();
    let dropped_before = global::FRAMES_DROPPED.get();
    let auth_before = global::FRAMES_AUTH_FAILED.get();
    let setup = FaultSetup::new(FaultPlan {
        drop_rate: 0.2,
        corrupt_rate: 0.3,
        seed: 8,
        ..FaultPlan::NONE
    });
    let _ = runner.run_with_transport(
        PolicyKind::Linear,
        Defense::Age,
        0.5,
        CipherChoice::ChaCha20Poly1305,
        false,
        None,
        Some(setup),
    );
    // Counters are global and monotone, so concurrent tests can only push
    // them further up — strict increase is still a sound assertion.
    assert!(global::FRAMES_SENT.get() > sent_before);
    assert!(global::FRAMES_DROPPED.get() > dropped_before);
    assert!(global::FRAMES_AUTH_FAILED.get() > auth_before);
}
