//! Rekey-under-fire acceptance tests: the single-link ratchet scenario —
//! forced epoch rotations layered over drops, corruption, and brownout
//! resets — must stay nonce-clean, keep the wire byte-constant through
//! every epoch boundary, and remain byte-identical at any thread count.

#![cfg(feature = "telemetry")]

use std::sync::Arc;

use age_sim::{
    rekey_scenario, run_cells, CipherChoice, Defense, PolicyKind, Runner, SweepCell, SweepOptions,
};
use age_telemetry::{reset_epoch_counters, LeakageSink, NonceAuditSink};

/// Small against the ~34-frame Small-scale test split so the link crosses
/// several epoch boundaries; a journal-block brownout can skip a whole
/// epoch, merging two crossings into one rotation event.
const INTERVAL: u64 = 8;

fn runner(seed: u64) -> Runner {
    Runner::new(
        age_datasets::DatasetKind::Epilepsy,
        age_datasets::Scale::Small,
        seed,
    )
}

fn rekey_cells(reset_rate: f64, seed: u64) -> Vec<SweepCell> {
    [Defense::Standard, Defense::Age]
        .iter()
        .map(|&defense| {
            let mut cell = SweepCell::new(PolicyKind::Linear, defense, 0.6);
            cell.cipher = CipherChoice::ChaCha20Poly1305;
            cell.enforce_budget = false;
            cell.limit = Some(80);
            cell.faults = Some(rekey_scenario(INTERVAL, reset_rate, seed));
            cell
        })
        .collect()
}

/// The headline property: a ratcheting link that rotates every
/// [`INTERVAL`] frames while the channel drops, corrupts, and the sensor
/// browns out still never reuses a (key, nonce) pair, and the receiver
/// follows every epoch step.
#[test]
fn rekey_under_fire_rotates_and_stays_nonce_clean() {
    let runner = runner(19);
    reset_epoch_counters();
    let sink = Arc::new(NonceAuditSink::new());
    let options = SweepOptions {
        threads: 2,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    let results = run_cells(&runner, &rekey_cells(0.1, 19), &options);
    let audit = sink.take();
    assert!(audit.frames() > 0);
    assert!(audit.is_clean(), "{audit}");
    // Context epochs are refined per key epoch (`…|eN`), so a rotating
    // run must key the audit under more epochs than there are cells.
    assert!(
        audit.epochs() > results.len(),
        "rotation refinement missing: {} epochs over {} cells",
        audit.epochs(),
        results.len()
    );
    let mut reboots = 0;
    for result in &results {
        let transport = result.transport.expect("faulted run has a transport");
        assert!(
            transport.link.rotations >= 2,
            "a Small-scale run at interval {INTERVAL} must rotate repeatedly"
        );
        reboots += transport.link.sensor_reboots;
    }
    assert!(reboots > 0, "the schedule must actually cut power");
}

/// Thread-count independence carries over to rekeying sweeps: results and
/// the merged nonce audit are byte-identical at 1 and 4 threads.
#[test]
fn rekey_sweeps_are_byte_identical_across_thread_counts() {
    let runner = runner(23);
    let cells = rekey_cells(0.06, 23);
    let sweep = |threads: usize| {
        reset_epoch_counters();
        let sink = Arc::new(NonceAuditSink::new());
        let options = SweepOptions {
            threads,
            sink: Some(sink.clone()),
            deterministic_timings: true,
        };
        let results = run_cells(&runner, &cells, &options);
        (results, sink.take())
    };
    let (single, single_audit) = sweep(1);
    let (quad, quad_audit) = sweep(4);
    assert_eq!(single, quad, "results must not depend on the thread count");
    assert_eq!(quad_audit, single_audit, "merged audit must match too");
    assert!(single_audit.is_clean(), "{single_audit}");
}

/// The leakage gate stays green while the key material moves: every AGE
/// frame is the same size on the wire regardless of which epoch sealed it,
/// so the size channel's NMI is exactly zero.
#[test]
fn leakage_stays_zero_across_epoch_boundaries() {
    let runner = runner(29);
    let sink = Arc::new(LeakageSink::new());
    let options = SweepOptions {
        threads: 2,
        sink: Some(sink.clone()),
        deterministic_timings: true,
    };
    let cells = rekey_cells(0.04, 29);
    let results = run_cells(&runner, &cells, &options);
    // Index 1 is the AGE cell; the Standard baseline varies by design.
    let age = results[1].transport.expect("faulted run has a transport");
    assert!(
        age.channel.wire_lengths_constant(),
        "an epoch boundary changed the wire-frame size"
    );
    let report = sink.take().report(50, 7);
    let defended: Vec<_> = report
        .entries
        .iter()
        .filter(|e| e.encoder == "AGE")
        .collect();
    assert!(!defended.is_empty());
    for e in &defended {
        assert_eq!(e.distinct_sizes, 1, "{} varied while rekeying", e.label);
        assert_eq!(e.nmi, 0.0, "{} leaked while rekeying", e.label);
    }
}
