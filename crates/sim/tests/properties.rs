//! Randomized tests for the experiment runner: the security invariant
//! must hold for every dataset, cipher, policy, and budget combination.
//! Driven by the workspace's deterministic PRNG (no external test deps).

use age_datasets::{DatasetKind, Scale};
use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
use age_telemetry::DetRng;

const CASES: usize = 12;

fn random_kind(rng: &mut DetRng) -> DatasetKind {
    let all = DatasetKind::all();
    all[rng.gen_range(0usize..all.len())]
}

fn random_cipher(rng: &mut DetRng) -> CipherChoice {
    match rng.gen_range(0u32..4) {
        0 => CipherChoice::ChaCha20,
        1 => CipherChoice::ChaCha20Poly1305,
        2 => CipherChoice::Aes128Ctr,
        _ => CipherChoice::Aes128Cbc,
    }
}

fn random_policy(rng: &mut DetRng) -> PolicyKind {
    // Skip RNN excluded here: training per case is too slow.
    match rng.gen_range(0u32..3) {
        0 => PolicyKind::Uniform,
        1 => PolicyKind::Linear,
        _ => PolicyKind::Deviation,
    }
}

fn random_fixed_defense(rng: &mut DetRng) -> Defense {
    match rng.gen_range(0u32..4) {
        0 => Defense::Age,
        1 => Defense::Single,
        2 => Defense::Unshifted,
        _ => Defense::Pruned,
    }
}

/// THE invariant, over the whole configuration space: fixed-length
/// defenses produce one message size and zero NMI for every dataset,
/// cipher, policy, and budget.
#[test]
fn fixed_defenses_never_leak() {
    let mut rng = DetRng::seed_from_u64(0x51A1);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let cipher = random_cipher(&mut rng);
        let policy = random_policy(&mut rng);
        let defense = random_fixed_defense(&mut rng);
        let rate_pct = rng.gen_range(30u32..=100);
        let runner = Runner::new(kind, Scale::Small, 5);
        let res = runner.run(policy, defense, f64::from(rate_pct) / 100.0, cipher, false);
        let sizes: std::collections::HashSet<usize> =
            res.observations().iter().map(|&(_, s)| s).collect();
        assert!(
            sizes.len() <= 1,
            "{kind} {cipher:?} {policy:?} {defense:?}: {sizes:?}"
        );
        assert_eq!(res.nmi(), 0.0);
    }
}

/// Reconstruction errors are always finite and non-negative, and the
/// records cover the whole test split.
#[test]
fn runs_are_well_formed() {
    let mut rng = DetRng::seed_from_u64(0x51A2);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let policy = random_policy(&mut rng);
        let rate_pct = rng.gen_range(30u32..=100);
        let enforce = rng.gen_bool(0.5);
        let runner = Runner::new(kind, Scale::Small, 6);
        let res = runner.run(
            policy,
            Defense::Standard,
            f64::from(rate_pct) / 100.0,
            CipherChoice::ChaCha20,
            enforce,
        );
        assert_eq!(res.records.len(), runner.test_sequences().len());
        for r in &res.records {
            assert!(r.mae.is_finite() && r.mae >= 0.0);
            assert!(r.energy_mj >= 0.0);
            assert!(r.violated == (r.message_bytes == 0));
        }
    }
}

/// Without budget enforcement nothing is ever lost.
#[test]
fn unenforced_runs_never_violate() {
    let mut rng = DetRng::seed_from_u64(0x51A3);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let policy = random_policy(&mut rng);
        let rate_pct = rng.gen_range(30u32..=100);
        let runner = Runner::new(kind, Scale::Small, 7);
        let res = runner.run(
            policy,
            Defense::Age,
            f64::from(rate_pct) / 100.0,
            CipherChoice::ChaCha20,
            false,
        );
        assert_eq!(res.violations(), 0);
    }
}
