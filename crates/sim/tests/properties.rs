//! Property-based tests for the experiment runner: the security invariant
//! must hold for every dataset, cipher, policy, and budget combination.

use age_datasets::{DatasetKind, Scale};
use age_sim::{CipherChoice, Defense, PolicyKind, Runner};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = DatasetKind> {
    prop::sample::select(DatasetKind::all().to_vec())
}

fn any_cipher() -> impl Strategy<Value = CipherChoice> {
    prop::sample::select(vec![
        CipherChoice::ChaCha20,
        CipherChoice::ChaCha20Poly1305,
        CipherChoice::Aes128Ctr,
        CipherChoice::Aes128Cbc,
    ])
}

fn any_policy() -> impl Strategy<Value = PolicyKind> {
    // Skip RNN excluded here: training per proptest case is too slow.
    prop::sample::select(vec![
        PolicyKind::Uniform,
        PolicyKind::Linear,
        PolicyKind::Deviation,
    ])
}

fn fixed_defense() -> impl Strategy<Value = Defense> {
    prop::sample::select(vec![
        Defense::Age,
        Defense::Single,
        Defense::Unshifted,
        Defense::Pruned,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// THE invariant, over the whole configuration space: fixed-length
    /// defenses produce one message size and zero NMI for every dataset,
    /// cipher, policy, and budget.
    #[test]
    fn fixed_defenses_never_leak(
        kind in any_kind(),
        cipher in any_cipher(),
        policy in any_policy(),
        defense in fixed_defense(),
        rate_pct in 30u32..=100,
    ) {
        let runner = Runner::new(kind, Scale::Small, 5);
        let res = runner.run(policy, defense, f64::from(rate_pct) / 100.0, cipher, false);
        let sizes: std::collections::HashSet<usize> =
            res.observations().iter().map(|&(_, s)| s).collect();
        prop_assert!(sizes.len() <= 1, "{kind} {cipher:?} {policy:?} {defense:?}: {sizes:?}");
        prop_assert_eq!(res.nmi(), 0.0);
    }

    /// Reconstruction errors are always finite and non-negative, and the
    /// records cover the whole test split.
    #[test]
    fn runs_are_well_formed(
        kind in any_kind(),
        policy in any_policy(),
        rate_pct in 30u32..=100,
        enforce in any::<bool>(),
    ) {
        let runner = Runner::new(kind, Scale::Small, 6);
        let res = runner.run(policy, Defense::Standard, f64::from(rate_pct) / 100.0, CipherChoice::ChaCha20, enforce);
        prop_assert_eq!(res.records.len(), runner.test_sequences().len());
        for r in &res.records {
            prop_assert!(r.mae.is_finite() && r.mae >= 0.0);
            prop_assert!(r.energy_mj >= 0.0);
            prop_assert!(r.violated == (r.message_bytes == 0));
        }
    }

    /// Without budget enforcement nothing is ever lost.
    #[test]
    fn unenforced_runs_never_violate(
        kind in any_kind(),
        policy in any_policy(),
        rate_pct in 30u32..=100,
    ) {
        let runner = Runner::new(kind, Scale::Small, 7);
        let res = runner.run(policy, Defense::Age, f64::from(rate_pct) / 100.0, CipherChoice::ChaCha20, false);
        prop_assert_eq!(res.violations(), 0);
    }
}
