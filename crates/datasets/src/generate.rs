//! Dataset assembly: label profiles per dataset, quantization, splits.

use age_telemetry::DetRng;

use crate::signal::LabelProfile;
use crate::spec::{DatasetKind, DatasetSpec, Scale};
use crate::Sequence;

/// A generated dataset: labelled sequences plus the Table 3 spec.
#[derive(Debug, Clone)]
pub struct Dataset {
    kind: DatasetKind,
    spec: DatasetSpec,
    sequences: Vec<Sequence>,
}

impl Dataset {
    /// Generates `kind` at `scale` with a deterministic `seed`.
    ///
    /// Labels are drawn uniformly; values are clamped to the dataset's
    /// fixed-point range and snapped to its format, exactly as a sensor's
    /// ADC + fixed-point pipeline would store them.
    pub fn generate(kind: DatasetKind, scale: Scale, seed: u64) -> Self {
        let spec = kind.spec();
        let count = scale.sequences(&spec);
        let mut rng = DetRng::seed_from_u64(seed ^ kind_salt(kind));
        let profiles = label_profiles(kind);
        debug_assert_eq!(profiles.len(), spec.num_labels);

        let fmt = spec.format;
        let (lo, hi) = value_bounds(&spec);
        let mut sequences = Vec::with_capacity(count);
        for i in 0..count {
            // Round-robin labels with a shuffled phase so every label is
            // represented even at small scales, then jitter via rng.
            let label = if rng.gen_bool(0.2) {
                rng.gen_range(0..spec.num_labels)
            } else {
                i % spec.num_labels
            };
            let raw = profiles[label].generate(spec.seq_len, spec.features, &mut rng);
            let values: Vec<f64> = raw
                .into_iter()
                .map(|v| fmt.round_trip(v.clamp(lo, hi)))
                .collect();
            sequences.push(Sequence { label, values });
        }
        Dataset {
            kind,
            spec,
            sequences,
        }
    }

    /// Builds a dataset from externally supplied sequences (e.g. loaded via
    /// [`crate::read_sequences`]) shaped like `kind` — the path for running
    /// the full experiment suite on *real* recordings. Values are snapped to
    /// the dataset's fixed-point format, as the sensor's ADC would store
    /// them; the spec's sequence count is updated to match the input.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first sequence whose length or label
    /// does not fit the spec.
    pub fn from_sequences(kind: DatasetKind, sequences: Vec<Sequence>) -> Result<Self, String> {
        let mut spec = kind.spec();
        let fmt = spec.format;
        let expected = spec.seq_len * spec.features;
        let mut snapped = Vec::with_capacity(sequences.len());
        for (i, mut seq) in sequences.into_iter().enumerate() {
            if seq.values.len() != expected {
                return Err(format!(
                    "sequence {i} has {} values, {} expects {expected}",
                    seq.values.len(),
                    spec.name
                ));
            }
            if seq.label >= spec.num_labels {
                return Err(format!(
                    "sequence {i} has label {}, {} defines {} labels",
                    seq.label, spec.name, spec.num_labels
                ));
            }
            for v in &mut seq.values {
                *v = fmt.round_trip(*v);
            }
            snapped.push(seq);
        }
        if snapped.is_empty() {
            return Err("no sequences supplied".to_string());
        }
        spec.num_sequences = snapped.len();
        Ok(Dataset {
            kind,
            spec,
            sequences: snapped,
        })
    }

    /// Which dataset this is.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The Table 3 properties.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// All generated sequences.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Splits into (train, test) slices: the first `train_frac` of the
    /// sequences train policy thresholds offline, the rest evaluate.
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is outside `(0, 1)`.
    pub fn split(&self, train_frac: f64) -> (&[Sequence], &[Sequence]) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train_frac must be in (0, 1)"
        );
        let cut = ((self.sequences.len() as f64 * train_frac) as usize)
            .clamp(1, self.sequences.len() - 1);
        self.sequences.split_at(cut)
    }

    /// Labels of all sequences, in order.
    pub fn labels(&self) -> Vec<usize> {
        self.sequences.iter().map(|s| s.label).collect()
    }
}

/// Distinct salt per dataset so the same seed gives unrelated streams.
fn kind_salt(kind: DatasetKind) -> u64 {
    (DatasetKind::all()
        .iter()
        .position(|k| *k == kind)
        .expect("kind is in all()") as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Value bounds: the tighter of the Table 3 range (centred) and the format's
/// representable range, with unsigned-style datasets kept non-negative.
fn value_bounds(spec: &DatasetSpec) -> (f64, f64) {
    let fmt_lo = spec.format.min_value();
    let fmt_hi = spec.format.max_value();
    if fmt_lo >= -0.5 || spec.format.frac() == 0 && spec.range > 200.0 {
        // Integer-style data (MNIST pixels, Tiselac indices): [0, range].
        (0.0f64.max(fmt_lo), spec.range.min(fmt_hi))
    } else {
        let half = (spec.range / 2.0).min(fmt_hi.abs()).min(fmt_lo.abs());
        (-half, half)
    }
}

/// Per-label signal profiles for each dataset. The parameter schedules are
/// hand-tuned so volatility varies strongly across labels (the prerequisite
/// for the paper's leakage result) while values stay within Table 3 ranges.
fn label_profiles(kind: DatasetKind) -> Vec<LabelProfile> {
    let spec = kind.spec();
    let l_count = spec.num_labels;
    let frac = |l: usize| {
        if l_count <= 1 {
            0.0
        } else {
            l as f64 / (l_count - 1) as f64
        }
    };
    match kind {
        // Wearable accelerometry: intensity rises from sitting-like to
        // running-like activities.
        DatasetKind::Activity => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    amp: 0.25 + 2.6 * v,
                    freq: 0.02 + 0.22 * v,
                    noise: 0.02 + 0.30 * v,
                    ar: 0.6,
                    ..Default::default()
                }
            })
            .collect(),
        // Pen strokes: per-character frequency/amplitude signatures with
        // sharp pen-lift transients between strokes.
        DatasetKind::Characters => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    amp: 1.2 + 1.8 * v,
                    freq: 0.03 + 0.012 * l as f64,
                    noise: 0.04 + 0.015 * (l % 5) as f64,
                    ar: 0.65,
                    burst_prob: 0.012 + 0.008 * (l % 3) as f64,
                    burst_amp: 1.0 + 0.5 * (l % 4) as f64,
                    burst_len: (3, 7),
                    ..Default::default()
                }
            })
            .collect(),
        // Eye-writing: saccade-like bursts over a slow baseline.
        DatasetKind::Eog => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    amp: 180.0 + 450.0 * v,
                    freq: 0.003 + 0.004 * v,
                    noise: 4.0 + 22.0 * v,
                    ar: 0.8,
                    burst_prob: 0.002 + 0.01 * v,
                    burst_amp: 250.0 * v,
                    burst_len: (10, 40),
                    ..Default::default()
                }
            })
            .collect(),
        // The paper's four events: seizure (bursty), walking (calm),
        // running (fast), sawing (strong periodic).
        DatasetKind::Epilepsy => vec![
            LabelProfile {
                amp: 1.0,
                freq: 0.11,
                noise: 0.45,
                ar: 0.5,
                burst_prob: 0.04,
                burst_amp: 2.0,
                burst_len: (8, 30),
                ..Default::default()
            },
            LabelProfile {
                amp: 0.55,
                freq: 0.05,
                noise: 0.04,
                ar: 0.7,
                ..Default::default()
            },
            LabelProfile {
                amp: 2.3,
                freq: 0.27,
                noise: 0.22,
                ar: 0.6,
                ..Default::default()
            },
            LabelProfile {
                amp: 1.9,
                freq: 0.16,
                noise: 0.11,
                ar: 0.6,
                ..Default::default()
            },
        ],
        // Digit scans: a quiet background with sharp stroke crossings —
        // scanning a digit row-major yields short high-contrast bursts
        // whose density rises with the digit's ink coverage.
        DatasetKind::Mnist => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    offset: 25.0,
                    amp: 15.0 + 15.0 * v,
                    freq: 0.004 + 0.008 * v,
                    noise: 2.0 + 4.0 * v,
                    ar: 0.6,
                    burst_prob: 0.01 + 0.025 * v,
                    burst_amp: 85.0 + 60.0 * v,
                    burst_len: (4, 14),
                    pause_frac: 0.3 - 0.2 * v,
                    ..Default::default()
                }
            })
            .collect(),
        // Pointer traces: long idle dwells punctuated by quick taps and
        // strokes. Uniform sampling wastes most of its budget on the idle
        // stretches, which is why the paper's adaptive policies dominate
        // here by 3x.
        DatasetKind::Password => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    amp: 1.2 + 1.8 * v,
                    freq: 0.002 + 0.002 * v,
                    noise: 0.015 + 0.05 * v,
                    ar: 0.9,
                    burst_prob: 0.008 + 0.012 * v,
                    burst_amp: 2.5 + 3.0 * v,
                    burst_len: (2, 6),
                    pause_frac: 0.55 - 0.35 * v,
                    ..Default::default()
                }
            })
            .collect(),
        // Road roughness: correlated vibration whose intensity grows with
        // surface damage.
        DatasetKind::Pavement => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    amp: 1.5 + 3.0 * v,
                    freq: 0.04 + 0.08 * v,
                    noise: 0.8 + 7.0 * v,
                    ar: 0.75,
                    ..Default::default()
                }
            })
            .collect(),
        // Spectra: smooth baselines with sharp absorption peaks — the
        // localized features adaptive sampling exploits. Adulterated purees
        // (label 1) show more, stronger peaks.
        DatasetKind::Strawberry => vec![
            LabelProfile {
                amp: 0.9,
                freq: 0.008,
                noise: 0.008,
                ar: 0.9,
                drift: 0.002,
                burst_prob: 0.012,
                burst_amp: 0.8,
                burst_len: (3, 8),
                ..Default::default()
            },
            LabelProfile {
                amp: 1.5,
                freq: 0.014,
                noise: 0.02,
                ar: 0.9,
                drift: -0.002,
                burst_prob: 0.03,
                burst_amp: 1.3,
                burst_len: (3, 10),
                ..Default::default()
            },
        ],
        // Land-cover time series: seasonal curves per class.
        DatasetKind::Tiselac => (0..l_count)
            .map(|l| {
                let v = frac(l);
                LabelProfile {
                    offset: 900.0 + 500.0 * v,
                    amp: 120.0 + 420.0 * v,
                    freq: 0.05 + 0.06 * v,
                    noise: 25.0 + 110.0 * v,
                    ar: 0.55,
                    drift: 6.0 * (v - 0.5),
                    ..Default::default()
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 7);
        let b = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 7);
        assert_eq!(a.sequences(), b.sequences());
        let c = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 8);
        assert_ne!(a.sequences(), c.sequences());
    }

    #[test]
    fn values_respect_format_and_range() {
        for kind in DatasetKind::all() {
            let data = Dataset::generate(kind, Scale::Small, 3);
            let spec = data.spec();
            let fmt = spec.format;
            for seq in data.sequences() {
                assert_eq!(seq.values.len(), spec.seq_len * spec.features);
                for &v in &seq.values {
                    assert!(v >= fmt.min_value() && v <= fmt.max_value(), "{kind}: {v}");
                    assert_eq!(v, fmt.round_trip(v), "{kind}: {v} is not format-exact");
                }
            }
        }
    }

    #[test]
    fn all_labels_appear() {
        for kind in DatasetKind::all() {
            let data = Dataset::generate(kind, Scale::Small, 11);
            let mut seen = vec![false; data.spec().num_labels];
            for seq in data.sequences() {
                seen[seq.label] = true;
            }
            assert!(seen.iter().all(|&s| s), "{kind}: missing labels {seen:?}");
        }
    }

    #[test]
    fn labels_have_distinct_volatility() {
        // The prerequisite for the leakage result: per-label mean absolute
        // steps must differ measurably for at least one label pair.
        for kind in DatasetKind::all() {
            let data = Dataset::generate(kind, Scale::Small, 5);
            let spec = data.spec();
            let mut vol = vec![(0.0f64, 0usize); spec.num_labels];
            for seq in data.sequences() {
                let mut step = 0.0;
                for t in 1..spec.seq_len {
                    for f in 0..spec.features {
                        step += (seq.values[t * spec.features + f]
                            - seq.values[(t - 1) * spec.features + f])
                            .abs();
                    }
                }
                vol[seq.label].0 += step / ((spec.seq_len - 1) * spec.features) as f64;
                vol[seq.label].1 += 1;
            }
            let means: Vec<f64> = vol
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(s, n)| s / *n as f64)
                .collect();
            let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = means.iter().cloned().fold(0.0, f64::max);
            assert!(
                max > 1.5 * min,
                "{kind}: volatility spread too small ({min}..{max})"
            );
        }
    }

    #[test]
    fn split_respects_fraction() {
        let data = Dataset::generate(DatasetKind::Pavement, Scale::Small, 1);
        let (train, test) = data.split(0.25);
        assert_eq!(train.len() + test.len(), data.sequences().len());
        assert!(train.len() >= data.sequences().len() / 5);
        assert!(!test.is_empty());
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn split_rejects_bad_fraction() {
        let data = Dataset::generate(DatasetKind::Pavement, Scale::Small, 1);
        let _ = data.split(1.5);
    }

    #[test]
    fn unsigned_datasets_stay_non_negative() {
        for kind in [DatasetKind::Mnist, DatasetKind::Tiselac] {
            let data = Dataset::generate(kind, Scale::Small, 2);
            for seq in data.sequences() {
                assert!(seq.values.iter().all(|&v| v >= 0.0), "{kind} went negative");
            }
        }
    }
}
