//! CSV import/export for labelled sequences.
//!
//! The synthetic generators stand in for the paper's datasets, but a
//! downstream user will want to run AGE on *their* recordings. The format
//! is one sequence per row: the integer label, then `seq_len · features`
//! values, row-major:
//!
//! ```text
//! label,v(0,0),v(0,1),…,v(T-1,d-1)
//! ```

use std::fmt;
use std::io::{BufRead, Write};

use crate::Sequence;

/// Error returned by [`read_sequences`].
#[derive(Debug)]
pub enum CsvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A row had the wrong number of fields.
    FieldCount {
        /// 1-based row number.
        row: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (`1 + seq_len · features`).
        expected: usize,
    },
    /// A field failed to parse.
    Parse {
        /// 1-based row number.
        row: usize,
        /// 0-based field index within the row.
        field: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "csv i/o error: {e}"),
            CsvError::FieldCount { row, got, expected } => {
                write!(f, "row {row} has {got} fields, expected {expected}")
            }
            CsvError::Parse { row, field } => {
                write!(f, "row {row}, field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes sequences as CSV rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// use age_datasets::{read_sequences, write_sequences, Sequence};
///
/// let seqs = vec![Sequence { label: 2, values: vec![1.0, -0.5, 0.25, 0.0] }];
/// let mut buffer = Vec::new();
/// write_sequences(&seqs, &mut buffer)?;
/// let back = read_sequences(buffer.as_slice(), 2, 2)?;
/// assert_eq!(back, seqs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_sequences<W: Write>(sequences: &[Sequence], mut out: W) -> Result<(), CsvError> {
    for seq in sequences {
        write!(out, "{}", seq.label)?;
        for v in &seq.values {
            // RFC-style shortest roundtrip formatting.
            write!(out, ",{v}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Reads sequences from CSV, validating that every row carries exactly
/// `seq_len · features` values. Empty lines are skipped.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failure, wrong field counts, or unparsable
/// numbers.
pub fn read_sequences<R: BufRead>(
    input: R,
    seq_len: usize,
    features: usize,
) -> Result<Vec<Sequence>, CsvError> {
    let expected = 1 + seq_len * features;
    let mut sequences = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let row = i + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != expected {
            return Err(CsvError::FieldCount {
                row,
                got: fields.len(),
                expected,
            });
        }
        let label: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| CsvError::Parse { row, field: 0 })?;
        let mut values = Vec::with_capacity(seq_len * features);
        for (j, field) in fields[1..].iter().enumerate() {
            let v: f64 = field
                .trim()
                .parse()
                .map_err(|_| CsvError::Parse { row, field: j + 1 })?;
            values.push(v);
        }
        sequences.push(Sequence { label, values });
    }
    Ok(sequences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dataset, DatasetKind, Scale};

    #[test]
    fn roundtrip_preserves_generated_data() {
        let data = Dataset::generate(DatasetKind::Tiselac, Scale::Small, 3);
        let spec = data.spec();
        let mut buffer = Vec::new();
        write_sequences(data.sequences(), &mut buffer).unwrap();
        let back = read_sequences(buffer.as_slice(), spec.seq_len, spec.features).unwrap();
        assert_eq!(back, data.sequences());
    }

    #[test]
    fn rejects_wrong_field_counts() {
        let err = read_sequences("1,2.0,3.0\n".as_bytes(), 3, 1).unwrap_err();
        assert!(matches!(
            err,
            CsvError::FieldCount {
                row: 1,
                got: 3,
                expected: 4
            }
        ));
        assert!(err.to_string().contains("row 1"));
    }

    #[test]
    fn rejects_unparsable_fields() {
        let err = read_sequences("banana,1.0\n".as_bytes(), 1, 1).unwrap_err();
        assert!(matches!(err, CsvError::Parse { row: 1, field: 0 }));
        let err = read_sequences("1,soup\n".as_bytes(), 1, 1).unwrap_err();
        assert!(matches!(err, CsvError::Parse { row: 1, field: 1 }));
    }

    #[test]
    fn skips_blank_lines_and_trims_spaces() {
        let text = "\n 1 , 2.5 \n\n0,-1.25\n";
        let seqs = read_sequences(text.as_bytes(), 1, 1).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(
            seqs[0],
            Sequence {
                label: 1,
                values: vec![2.5]
            }
        );
        assert_eq!(
            seqs[1],
            Sequence {
                label: 0,
                values: vec![-1.25]
            }
        );
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        let seqs = vec![Sequence {
            label: 0,
            values: vec![0.1, -3.25, 1e-12, 12345.6789, f64::MIN_POSITIVE],
        }];
        let mut buffer = Vec::new();
        write_sequences(&seqs, &mut buffer).unwrap();
        let back = read_sequences(buffer.as_slice(), 5, 1).unwrap();
        assert_eq!(back, seqs);
    }
}
