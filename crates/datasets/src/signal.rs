//! The signal engine: parameterized stochastic processes per event label.

use age_telemetry::DetRng;

/// Parameters of one label's signal process.
///
/// A sequence is a sum of a sinusoidal carrier, a linear drift, an AR(1)
/// noise process, and an optional burst regime (short windows of
/// high-amplitude oscillation, modelling seizure-like events). The
/// *volatility* of the process — how much consecutive measurements differ —
/// is what adaptive sampling policies respond to, so labels with different
/// profiles produce different collection rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelProfile {
    /// Constant offset added to every value.
    pub offset: f64,
    /// Carrier amplitude.
    pub amp: f64,
    /// Carrier frequency in cycles per time step.
    pub freq: f64,
    /// AR(1) innovation standard deviation.
    pub noise: f64,
    /// AR(1) coefficient in `[0, 1)`.
    pub ar: f64,
    /// Linear drift per step.
    pub drift: f64,
    /// Probability of entering a burst at each step.
    pub burst_prob: f64,
    /// Burst amplitude (added oscillation).
    pub burst_amp: f64,
    /// Burst length bounds in steps.
    pub burst_len: (usize, usize),
    /// Fraction of steps spent in flat "pause" segments (typing-like data).
    pub pause_frac: f64,
}

impl Default for LabelProfile {
    fn default() -> Self {
        LabelProfile {
            offset: 0.0,
            amp: 1.0,
            freq: 0.05,
            noise: 0.05,
            ar: 0.7,
            drift: 0.0,
            burst_prob: 0.0,
            burst_amp: 0.0,
            burst_len: (5, 15),
            pause_frac: 0.0,
        }
    }
}

impl LabelProfile {
    /// Generates a `len × features` row-major sequence of raw (unquantized)
    /// values. Features are phase-shifted, slightly rescaled copies driven
    /// by independent noise, mimicking multi-axis sensors.
    pub fn generate(&self, len: usize, features: usize, rng: &mut DetRng) -> Vec<f64> {
        let mut values = Vec::with_capacity(len * features);
        let mut ar_state = vec![0.0f64; features];
        let phase: Vec<f64> = (0..features).map(|f| f as f64 * 2.399_963).collect();
        let scale: Vec<f64> = (0..features).map(|f| 1.0 - 0.07 * (f % 4) as f64).collect();
        // Random per-sequence phase so sequences of one label differ.
        let seq_phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);

        let mut burst_left = 0usize;
        let mut pause_left = 0usize;
        let mut held: Vec<f64> = vec![self.offset; features];

        for t in 0..len {
            // Burst regime transitions.
            if burst_left == 0 && self.burst_prob > 0.0 && rng.gen_bool(self.burst_prob.min(1.0)) {
                burst_left =
                    rng.gen_range(self.burst_len.0..=self.burst_len.1.max(self.burst_len.0));
            }
            let bursting = burst_left > 0;
            if bursting {
                burst_left -= 1;
            }
            // Pause regime (hold the last value flat).
            if pause_left == 0
                && self.pause_frac > 0.0
                && rng.gen_bool((self.pause_frac / 8.0).min(1.0))
            {
                pause_left = rng.gen_range(4..20);
            }
            let paused = pause_left > 0;
            if paused {
                pause_left -= 1;
            }

            for f in 0..features {
                if paused && !bursting {
                    values.push(held[f]);
                    continue;
                }
                ar_state[f] = self.ar * ar_state[f] + rng.gen_range(-1.0..1.0) * self.noise;
                let carrier = self.amp
                    * scale[f]
                    * (std::f64::consts::TAU * self.freq * t as f64 + phase[f] + seq_phase).sin();
                let mut v = self.offset + carrier + self.drift * t as f64 + ar_state[f];
                if bursting {
                    v += self.burst_amp
                        * (std::f64::consts::TAU * 0.31 * t as f64 + phase[f]).sin()
                        + rng.gen_range(-1.0..1.0) * self.burst_amp * 0.5;
                }
                values.push(v);
                held[f] = v;
            }
        }
        values
    }

    /// Mean absolute step `E|x_{t+1} − x_t|` of the profile, estimated on a
    /// fresh sequence — a proxy for the volatility adaptive policies see.
    pub fn volatility(&self, len: usize, rng: &mut DetRng) -> f64 {
        let vals = self.generate(len, 1, rng);
        if vals.len() < 2 {
            return 0.0;
        }
        vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (vals.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_has_requested_shape() {
        let mut rng = DetRng::seed_from_u64(1);
        let p = LabelProfile::default();
        assert_eq!(p.generate(50, 6, &mut rng).len(), 300);
        assert_eq!(p.generate(0, 3, &mut rng).len(), 0);
    }

    #[test]
    fn amplitude_scales_the_signal() {
        let mut rng = DetRng::seed_from_u64(2);
        let quiet = LabelProfile {
            amp: 0.1,
            noise: 0.01,
            ..Default::default()
        };
        let loud = LabelProfile {
            amp: 5.0,
            noise: 0.01,
            ..Default::default()
        };
        let q: f64 = quiet
            .generate(200, 1, &mut rng)
            .iter()
            .map(|v| v.abs())
            .sum();
        let l: f64 = loud
            .generate(200, 1, &mut rng)
            .iter()
            .map(|v| v.abs())
            .sum();
        assert!(l > q * 5.0);
    }

    #[test]
    fn volatility_orders_profiles() {
        let mut rng = DetRng::seed_from_u64(3);
        let calm = LabelProfile {
            amp: 0.2,
            freq: 0.01,
            noise: 0.01,
            ..Default::default()
        };
        let wild = LabelProfile {
            amp: 3.0,
            freq: 0.3,
            noise: 0.5,
            ..Default::default()
        };
        let v_calm = calm.volatility(500, &mut rng);
        let v_wild = wild.volatility(500, &mut rng);
        assert!(v_wild > 5.0 * v_calm, "calm={v_calm} wild={v_wild}");
    }

    #[test]
    fn bursts_raise_variance() {
        let mut rng = DetRng::seed_from_u64(4);
        let base = LabelProfile {
            amp: 0.5,
            noise: 0.05,
            ..Default::default()
        };
        let bursty = LabelProfile {
            burst_prob: 0.05,
            burst_amp: 3.0,
            ..base
        };
        let var = |vals: &[f64]| {
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            vals.iter().map(|v| (v - m).powi(2)).sum::<f64>() / vals.len() as f64
        };
        let v_base = var(&base.generate(1000, 1, &mut rng));
        let v_burst = var(&bursty.generate(1000, 1, &mut rng));
        assert!(v_burst > 2.0 * v_base, "base={v_base} bursty={v_burst}");
    }

    #[test]
    fn pauses_create_flat_segments() {
        let mut rng = DetRng::seed_from_u64(5);
        let p = LabelProfile {
            pause_frac: 0.9,
            noise: 0.3,
            ..Default::default()
        };
        let vals = p.generate(1000, 1, &mut rng);
        let flat = vals.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(flat > 100, "expected flat runs, got {flat}");
    }

    #[test]
    fn sequences_differ_across_draws() {
        let mut rng = DetRng::seed_from_u64(6);
        let p = LabelProfile::default();
        let a = p.generate(100, 1, &mut rng);
        let b = p.generate(100, 1, &mut rng);
        assert_ne!(a, b);
    }
}
