//! Synthetic sensor datasets matching the AGE paper's evaluation suite.
//!
//! The paper evaluates on nine real datasets (Table 3). Those recordings are
//! not redistributable here, so this crate generates *seeded synthetic
//! equivalents* that preserve the two properties the evaluation depends on:
//!
//! 1. **Shape**: sequence counts, lengths, feature counts, label counts,
//!    fixed-point formats, and value ranges match Table 3.
//! 2. **Label-dependent dynamics**: each event label has a distinct signal
//!    profile (amplitude, frequency, noise, burstiness), so adaptive
//!    sampling policies exhibit label-dependent collection rates — the
//!    source of the information leak the paper studies.
//!
//! Generation is fully deterministic given a seed, so experiments are
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use age_datasets::{Dataset, DatasetKind, Scale};
//!
//! let data = Dataset::generate(DatasetKind::Epilepsy, Scale::Small, 42);
//! assert_eq!(data.spec().features, 3);
//! let seq = &data.sequences()[0];
//! assert_eq!(seq.values.len(), data.spec().seq_len * data.spec().features);
//! assert!(seq.label < data.spec().num_labels);
//! ```

mod generate;
mod io;
mod signal;
mod spec;

pub use generate::Dataset;
pub use io::{read_sequences, write_sequences, CsvError};
pub use signal::LabelProfile;
pub use spec::{DatasetKind, DatasetSpec, Scale};

/// One labelled measurement sequence: the unit the sensor batches and the
/// attacker tries to classify.
#[derive(Debug, Clone, PartialEq)]
pub struct Sequence {
    /// Event label in `0..spec.num_labels`.
    pub label: usize,
    /// Row-major values: `seq_len · features` entries, quantized to the
    /// dataset's fixed-point format.
    pub values: Vec<f64>,
}

impl Sequence {
    /// The `t`-th measurement as a feature slice.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn measurement(&self, t: usize, features: usize) -> &[f64] {
        &self.values[t * features..(t + 1) * features]
    }
}
