//! Dataset identities and their Table 3 properties.

use age_fixed::Format;

/// The nine evaluation datasets from Table 3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Human activity recognition from smartphone accelerometers \[8\].
    Activity,
    /// Handwriting motion primitives \[116\].
    Characters,
    /// Electrooculography eye-writing signals \[37\].
    Eog,
    /// Epileptic seizure recognition from wrist accelerometers \[112\].
    Epilepsy,
    /// Handwritten digits scanned as pixel sequences \[64\].
    Mnist,
    /// Graphical password traces \[1\].
    Password,
    /// Asphalt pavement classification from accelerometers \[100\].
    Pavement,
    /// Fourier-transform infrared spectra of fruit purees \[53\].
    Strawberry,
    /// Satellite image time series for land-cover classification \[55\].
    Tiselac,
}

impl DatasetKind {
    /// All nine datasets in the paper's table order.
    pub fn all() -> [DatasetKind; 9] {
        [
            DatasetKind::Activity,
            DatasetKind::Characters,
            DatasetKind::Eog,
            DatasetKind::Epilepsy,
            DatasetKind::Mnist,
            DatasetKind::Password,
            DatasetKind::Pavement,
            DatasetKind::Strawberry,
            DatasetKind::Tiselac,
        ]
    }

    /// Table 3 properties for this dataset.
    pub fn spec(&self) -> DatasetSpec {
        let fmt = |w: u8, frac: i16| Format::new(w, frac).expect("table formats are valid");
        match self {
            DatasetKind::Activity => DatasetSpec {
                name: "Activity",
                num_sequences: 11_119,
                seq_len: 50,
                features: 6,
                num_labels: 12,
                format: fmt(16, 13),
                range: 10.6,
            },
            DatasetKind::Characters => DatasetSpec {
                name: "Characters",
                num_sequences: 1_436,
                seq_len: 100,
                features: 3,
                num_labels: 20,
                format: fmt(16, 13),
                range: 7.8,
            },
            DatasetKind::Eog => DatasetSpec {
                name: "EOG",
                num_sequences: 362,
                seq_len: 1_250,
                features: 1,
                num_labels: 12,
                format: fmt(20, 8),
                range: 2_640.4,
            },
            DatasetKind::Epilepsy => DatasetSpec {
                name: "Epilepsy",
                num_sequences: 138,
                seq_len: 206,
                features: 3,
                num_labels: 4,
                format: fmt(16, 13),
                range: 7.2,
            },
            DatasetKind::Mnist => DatasetSpec {
                name: "MNIST",
                num_sequences: 10_000,
                seq_len: 784,
                features: 1,
                num_labels: 10,
                format: fmt(9, 0),
                range: 255.0,
            },
            DatasetKind::Password => DatasetSpec {
                name: "Password",
                num_sequences: 308,
                seq_len: 1_092,
                features: 1,
                num_labels: 5,
                format: fmt(16, 11),
                range: 18.8,
            },
            DatasetKind::Pavement => DatasetSpec {
                name: "Pavement",
                num_sequences: 8_864,
                seq_len: 120,
                features: 1,
                num_labels: 3,
                format: fmt(16, 10),
                range: 68.4,
            },
            DatasetKind::Strawberry => DatasetSpec {
                name: "Strawberry",
                num_sequences: 370,
                seq_len: 235,
                features: 1,
                num_labels: 2,
                format: fmt(16, 13),
                range: 5.9,
            },
            DatasetKind::Tiselac => DatasetSpec {
                name: "Tiselac",
                num_sequences: 17_973,
                seq_len: 23,
                features: 10,
                num_labels: 9,
                format: fmt(16, 0),
                range: 3_379.0,
            },
        }
    }

    /// Human-readable event name for a label. Epilepsy's labels mirror the
    /// paper's four events (seizure, walking, running, sawing); other
    /// datasets use generic names.
    pub fn label_name(&self, label: usize) -> String {
        match self {
            DatasetKind::Epilepsy => match label {
                0 => "seizure".to_string(),
                1 => "walking".to_string(),
                2 => "running".to_string(),
                3 => "sawing".to_string(),
                other => format!("event-{other}"),
            },
            _ => format!("event-{label}"),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// Static dataset properties (the columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Full-scale sequence count (`# Seq`).
    pub num_sequences: usize,
    /// Measurements per sequence (`Seq Len`, the batching `T`).
    pub seq_len: usize,
    /// Features per measurement (`# Feat`, the paper's `d`).
    pub features: usize,
    /// Number of event labels.
    pub num_labels: usize,
    /// Fixed-point storage format (`Bits (Frac)`).
    pub format: Format,
    /// Value range reported in the table (max − min).
    pub range: f64,
}

impl DatasetSpec {
    /// Bytes of a full standard batch (count header + index + values per
    /// measurement) — the scale of the paper's 98–3,138-byte batches.
    pub fn full_batch_bytes(&self) -> usize {
        let index_bits = usize::BITS as usize - (self.seq_len - 1).leading_zeros() as usize;
        let bits = 16
            + self.seq_len * (index_bits.max(1) + self.features * usize::from(self.format.width()));
        bits.div_ceil(8)
    }
}

/// How many sequences to generate: experiments at paper scale take hours,
/// so the harness defaults to a reduced scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Quick runs for tests and Criterion benches (~tens of sequences).
    Small,
    /// The harness default (hundreds of sequences, minutes per table).
    Default,
    /// The paper's full Table 3 sequence counts.
    Full,
}

impl Scale {
    /// Sequence count for a dataset at this scale.
    pub fn sequences(&self, spec: &DatasetSpec) -> usize {
        match self {
            Scale::Small => spec.num_sequences.min(48),
            Scale::Default => {
                // Cap long-sequence datasets harder: cost ~ len · count.
                let budget = 400_000usize;
                let cap = (budget / (spec.seq_len * spec.features)).clamp(120, 600);
                spec.num_sequences.min(cap)
            }
            Scale::Full => spec.num_sequences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes_match_paper() {
        let spec = DatasetKind::Activity.spec();
        assert_eq!(
            (spec.num_sequences, spec.seq_len, spec.features),
            (11_119, 50, 6)
        );
        assert_eq!(spec.format.width(), 16);
        assert_eq!(spec.format.frac(), 13);
        let spec = DatasetKind::Tiselac.spec();
        assert_eq!((spec.seq_len, spec.features, spec.num_labels), (23, 10, 9));
        assert_eq!(spec.format.frac(), 0);
    }

    #[test]
    fn batch_bytes_span_papers_range() {
        // Paper §5.1 reports batches of 98–3,138 bytes across rates; our
        // full standard batches (which also carry indices) span a comparable
        // two-orders spread, from Tiselac's short sequences to EOG's long
        // ones.
        let sizes: Vec<usize> = DatasetKind::all()
            .iter()
            .map(|k| k.spec().full_batch_bytes())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min < 500, "smallest full batch {min}");
        assert!(max > 3_000, "largest full batch {max}");
    }

    #[test]
    fn epilepsy_labels_are_named() {
        assert_eq!(DatasetKind::Epilepsy.label_name(0), "seizure");
        assert_eq!(DatasetKind::Epilepsy.label_name(3), "sawing");
        assert_eq!(DatasetKind::Activity.label_name(5), "event-5");
    }

    #[test]
    fn scales_are_ordered() {
        for kind in DatasetKind::all() {
            let spec = kind.spec();
            let s = Scale::Small.sequences(&spec);
            let d = Scale::Default.sequences(&spec);
            let f = Scale::Full.sequences(&spec);
            assert!(s <= d && d <= f, "{kind}: {s} {d} {f}");
            assert!(s > 0);
        }
    }

    #[test]
    fn display_uses_table_names() {
        assert_eq!(DatasetKind::Eog.to_string(), "EOG");
        assert_eq!(DatasetKind::Mnist.to_string(), "MNIST");
    }
}
