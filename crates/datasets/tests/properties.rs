//! Property-based tests for the synthetic dataset generators.

use age_datasets::{Dataset, DatasetKind, LabelProfile, Scale};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = DatasetKind> {
    prop::sample::select(DatasetKind::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generation is a pure function of (kind, scale, seed).
    #[test]
    fn generation_is_deterministic(kind in any_kind(), seed in any::<u64>()) {
        let a = Dataset::generate(kind, Scale::Small, seed);
        let b = Dataset::generate(kind, Scale::Small, seed);
        prop_assert_eq!(a.sequences(), b.sequences());
    }

    /// Every value is exactly representable in the dataset's fixed-point
    /// format — the generator models an ADC, not a float sensor.
    #[test]
    fn values_are_format_exact(kind in any_kind(), seed in any::<u64>()) {
        let data = Dataset::generate(kind, Scale::Small, seed);
        let fmt = data.spec().format;
        for seq in data.sequences() {
            for &v in &seq.values {
                prop_assert_eq!(v, fmt.round_trip(v));
            }
        }
    }

    /// Shapes always match the Table 3 spec.
    #[test]
    fn shapes_match_spec(kind in any_kind(), seed in any::<u64>()) {
        let data = Dataset::generate(kind, Scale::Small, seed);
        let spec = data.spec();
        for seq in data.sequences() {
            prop_assert_eq!(seq.values.len(), spec.seq_len * spec.features);
            prop_assert!(seq.label < spec.num_labels);
        }
    }

    /// Label profiles produce finite values for arbitrary parameters in
    /// sane ranges.
    #[test]
    fn profiles_generate_finite_signals(
        amp in 0.0f64..1e4,
        freq in 0.0f64..0.5,
        noise in 0.0f64..1e3,
        ar in 0.0f64..0.99,
        burst_prob in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let profile = LabelProfile {
            amp,
            freq,
            noise,
            ar,
            burst_prob,
            burst_amp: amp * 0.5,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let values = profile.generate(200, 3, &mut rng);
        prop_assert_eq!(values.len(), 600);
        prop_assert!(values.iter().all(|v| v.is_finite()));
    }

    /// Different seeds give different datasets (no accidental collapse).
    #[test]
    fn seeds_vary_content(kind in any_kind(), seed in any::<u64>()) {
        let a = Dataset::generate(kind, Scale::Small, seed);
        let b = Dataset::generate(kind, Scale::Small, seed.wrapping_add(1));
        prop_assert_ne!(a.sequences(), b.sequences());
    }
}
