//! Randomized property tests for the synthetic dataset generators, driven
//! by the workspace's deterministic PRNG (no external test deps).

use age_datasets::{Dataset, DatasetKind, LabelProfile, Scale};
use age_telemetry::DetRng;

const CASES: usize = 32;

fn random_kind(rng: &mut DetRng) -> DatasetKind {
    let all = DatasetKind::all();
    all[rng.gen_range(0usize..all.len())]
}

/// Generation is a pure function of (kind, scale, seed).
#[test]
fn generation_is_deterministic() {
    let mut rng = DetRng::seed_from_u64(0xD1);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let seed = rng.next_u64();
        let a = Dataset::generate(kind, Scale::Small, seed);
        let b = Dataset::generate(kind, Scale::Small, seed);
        assert_eq!(a.sequences(), b.sequences());
    }
}

/// Every value is exactly representable in the dataset's fixed-point
/// format — the generator models an ADC, not a float sensor.
#[test]
fn values_are_format_exact() {
    let mut rng = DetRng::seed_from_u64(0xD2);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let data = Dataset::generate(kind, Scale::Small, rng.next_u64());
        let fmt = data.spec().format;
        for seq in data.sequences() {
            for &v in &seq.values {
                assert_eq!(v, fmt.round_trip(v));
            }
        }
    }
}

/// Shapes always match the Table 3 spec.
#[test]
fn shapes_match_spec() {
    let mut rng = DetRng::seed_from_u64(0xD3);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let data = Dataset::generate(kind, Scale::Small, rng.next_u64());
        let spec = data.spec();
        for seq in data.sequences() {
            assert_eq!(seq.values.len(), spec.seq_len * spec.features);
            assert!(seq.label < spec.num_labels);
        }
    }
}

/// Label profiles produce finite values for arbitrary parameters in
/// sane ranges.
#[test]
fn profiles_generate_finite_signals() {
    let mut rng = DetRng::seed_from_u64(0xD4);
    for _ in 0..CASES {
        let amp = rng.gen_range(0.0f64..1e4);
        let profile = LabelProfile {
            amp,
            freq: rng.gen_range(0.0f64..0.5),
            noise: rng.gen_range(0.0f64..1e3),
            ar: rng.gen_range(0.0f64..0.99),
            burst_prob: rng.gen_range(0.0f64..0.3),
            burst_amp: amp * 0.5,
            ..Default::default()
        };
        let mut sig_rng = DetRng::seed_from_u64(rng.next_u64());
        let values = profile.generate(200, 3, &mut sig_rng);
        assert_eq!(values.len(), 600);
        assert!(values.iter().all(|v| v.is_finite()));
    }
}

/// Different seeds give different datasets (no accidental collapse).
#[test]
fn seeds_vary_content() {
    let mut rng = DetRng::seed_from_u64(0xD5);
    for _ in 0..CASES {
        let kind = random_kind(&mut rng);
        let seed = rng.next_u64();
        let a = Dataset::generate(kind, Scale::Small, seed);
        let b = Dataset::generate(kind, Scale::Small, seed.wrapping_add(1));
        assert_ne!(a.sequences(), b.sequences());
    }
}
