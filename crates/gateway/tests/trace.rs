//! Gateway ingest span emission: with a trace sink installed and span
//! collection enabled *before* the gateway is built (shard tracers
//! snapshot the switch at construction), every frame yields a span tree
//! on its shard's track — `ingest → {decode, audit}` when accepted, a
//! short lone `ingest` when rejected — with the schematic virtual
//! durations pinned, and the rendered Chrome trace is byte-identical
//! across runs.
#![cfg(feature = "telemetry")]

use std::sync::{Arc, Mutex};

use age_core::{AgeEncoder, Batch, BatchConfig, Encoder};
use age_crypto::ChaCha20Poly1305;
use age_fixed::Format;
use age_gateway::{derive_key, Cohort, FleetFrame, Gateway, GatewayConfig};
use age_telemetry::{install_thread, render_chrome_json, set_trace_enabled, SpanEvent, TraceSink};
use age_transport::Sensor;

const SEED: u64 = 7;

/// Serializes the tests in this binary: the trace switch is
/// process-global, so two tests toggling it concurrently would leak
/// spans into each other's thread-local sinks.
static TRACE_SERIAL: Mutex<()> = Mutex::new(());

fn batch_cfg() -> BatchConfig {
    BatchConfig::new(25, 2, Format::new(16, 10).unwrap()).unwrap()
}

/// One sealed frame per listed sensor, 260 ms apart, cycling events.
fn frames(sensors: &[u64]) -> Vec<FleetFrame> {
    let cfg = batch_cfg();
    let age = AgeEncoder::new(160);
    sensors
        .iter()
        .enumerate()
        .map(|(i, &sensor_id)| {
            let event = i % 3;
            let kept = 6 + event * 8;
            let batch = Batch::new(
                (0..kept).collect(),
                (0..kept * 2).map(|v| (v as f64) * 0.25 - 3.0).collect(),
            )
            .unwrap();
            let payload = age.encode(&batch, &cfg).unwrap();
            let mut sensor =
                Sensor::new(Box::new(ChaCha20Poly1305::new(derive_key(SEED, sensor_id))));
            let mut sealed = Vec::new();
            sensor.seal_into(&payload, &mut sealed);
            FleetFrame::encode(sensor_id, &sealed, event, (i as u64 + 1) * 260_000)
        })
        .collect()
}

/// Runs one traced gateway pass and returns (spans, rendered JSON).
fn traced_run() -> (Vec<SpanEvent>, String) {
    let sink = Arc::new(TraceSink::new());
    let _guard = install_thread(sink.clone());
    set_trace_enabled(true);
    let config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        4,
    );
    let mut gateway = Gateway::new(config);
    for sensor_id in 0..8u64 {
        gateway.provision(sensor_id, 0).unwrap();
    }
    for frame in frames(&[0, 1, 2, 3, 4, 5, 6, 7]) {
        gateway.ingest(&frame).expect("valid frame accepted");
    }
    // One hostile datagram: its lone truncated-header `ingest` span must
    // still appear, just without decode/audit children.
    let truncated = FleetFrame {
        wire: vec![1, 2, 3],
        event: 0,
        sent_at_us: 9_000_000,
    };
    gateway
        .ingest(&truncated)
        .expect_err("truncated frame rejected");
    set_trace_enabled(false);
    let spans = sink.take();
    let json = render_chrome_json(&spans);
    (spans, json)
}

#[test]
fn ingest_spans_form_a_deterministic_per_shard_tree() {
    let _serial = TRACE_SERIAL.lock().unwrap();
    let (spans, json) = traced_run();

    // Every shard announced its track at construction.
    let mut meta: Vec<&str> = spans
        .iter()
        .filter(|s| s.cat == "meta")
        .map(|s| s.name.as_str())
        .collect();
    meta.sort_unstable();
    assert_eq!(
        meta,
        [
            "gateway/shard-00",
            "gateway/shard-01",
            "gateway/shard-02",
            "gateway/shard-03"
        ]
    );
    // Frames really spread over more than one shard track.
    let mut tracks: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "ingest")
        .map(|s| s.track)
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    assert!(tracks.len() >= 2, "all frames landed on one shard");

    // 8 accepted + 1 rejected: 9 ingest roots, 8 decode/audit children.
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("ingest"), 9);
    assert_eq!(count("decode"), 8);
    assert_eq!(count("audit"), 8);

    // The schematic durations: decode 60 µs then audit 40 µs under a
    // 100 µs accepted ingest; a rejection closes after 20 µs.
    for span in &spans {
        match (span.name.as_str(), span.dur_us) {
            ("decode", 60) | ("audit", 40) => assert_eq!(span.depth, 1),
            ("ingest", 100) | ("ingest", 20) => assert_eq!(span.depth, 0),
            ("ingest", dur) => panic!("unexpected ingest duration {dur}"),
            _ => {}
        }
    }
    let rejected = spans
        .iter()
        .filter(|s| s.name == "ingest" && s.dur_us == 20)
        .count();
    assert_eq!(rejected, 1);

    // Rendered bytes are stable across complete re-runs.
    let (_, again) = traced_run();
    assert_eq!(json, again, "Chrome-trace render is not byte-deterministic");
    assert!(json.contains("\"thread_name\""));
    assert!(json.contains("gateway/shard-00"));
}

/// A gateway built while tracing is disabled emits nothing, even if the
/// switch is flipped on afterwards — enablement is snapshotted at
/// construction, which is what keeps the hot path at two branches.
#[test]
fn tracer_snapshot_means_late_enable_is_silent() {
    let _serial = TRACE_SERIAL.lock().unwrap();
    let sink = Arc::new(TraceSink::new());
    let _guard = install_thread(sink.clone());
    let config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        1,
    );
    let mut gateway = Gateway::new(config);
    gateway.provision(0, 0).unwrap();
    set_trace_enabled(true);
    for frame in frames(&[0]) {
        gateway.ingest(&frame).expect("valid frame accepted");
    }
    set_trace_enabled(false);
    assert!(sink.take().is_empty(), "late enable must not emit spans");
}
