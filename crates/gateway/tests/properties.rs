//! Property tests for the gateway's pure routing layer.
//!
//! Shard assignment must be (1) a pure function of the sensor id and
//! shard count, (2) stable across restarts — pinned here as literal
//! expected values, so any change to the hash is a deliberate,
//! test-breaking act — and (3) balanced: over any large id population,
//! random or adversarially sequential, no shard carries more than 1.3×
//! the occupancy of the lightest shard.

use std::collections::BTreeSet;

use age_core::{AgeEncoder, BatchConfig};
use age_fixed::Format;
use age_gateway::{derive_key, shard_of, Cohort, Gateway, GatewayConfig};
use age_telemetry::DetRng;

/// Max/min shard-occupancy ratio the router must stay under at 10k ids.
const BALANCE_RATIO: f64 = 1.3;
const POPULATION: u64 = 10_000;

#[test]
fn shard_assignment_is_pinned_across_restarts() {
    // (sensor id, shard at 2, at 4, at 8). These literals are the
    // restart-stability contract: a provisioned sensor must land on the
    // same shard in every future process.
    let pins: [(u64, usize, usize, usize); 8] = [
        (0, 1, 3, 7),
        (1, 1, 1, 1),
        (2, 0, 2, 6),
        (7, 1, 3, 7),
        (42, 1, 1, 5),
        (1000, 0, 0, 0),
        (123_456_789, 1, 1, 1),
        (u64::MAX, 0, 0, 0),
    ];
    for (id, at2, at4, at8) in pins {
        assert_eq!(shard_of(id, 2), at2, "sensor {id} at 2 shards");
        assert_eq!(shard_of(id, 4), at4, "sensor {id} at 4 shards");
        assert_eq!(shard_of(id, 8), at8, "sensor {id} at 8 shards");
    }
    // Wider pin: a weighted checksum over the first 1024 ids at 8
    // shards, so a hash change cannot hide in the sampled ids above.
    let checksum: u64 = (0..1024u64)
        .map(|id| shard_of(id, 8) as u64 * (id + 1))
        .sum();
    assert_eq!(checksum, 1_883_153);
}

#[test]
fn shard_assignment_is_pure() {
    let mut rng = DetRng::seed_from_u64(99);
    let ids: Vec<u64> = (0..1000).map(|_| rng.next_u64()).collect();
    for shards in [1usize, 2, 3, 8, 64] {
        let forward: Vec<usize> = ids.iter().map(|&id| shard_of(id, shards)).collect();
        let backward: Vec<usize> = ids.iter().rev().map(|&id| shard_of(id, shards)).collect();
        // Same answers regardless of evaluation order or repetition.
        assert!(forward
            .iter()
            .zip(backward.iter().rev())
            .all(|(a, b)| a == b));
        assert!(forward.iter().all(|&s| s < shards));
    }
}

fn occupancy_of(ids: impl Iterator<Item = u64>, shards: usize) -> Vec<u64> {
    let mut counts = vec![0u64; shards];
    for id in ids {
        counts[shard_of(id, shards)] += 1;
    }
    counts
}

fn assert_balanced(counts: &[u64], what: &str) {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    assert!(min > 0, "{what}: a shard got zero sensors: {counts:?}");
    let ratio = max as f64 / min as f64;
    assert!(
        ratio <= BALANCE_RATIO,
        "{what}: occupancy ratio {ratio:.3} exceeds {BALANCE_RATIO} ({counts:?})"
    );
}

#[test]
fn random_ids_balance_across_shards() {
    let mut rng = DetRng::seed_from_u64(2022);
    let ids: Vec<u64> = (0..POPULATION).map(|_| rng.next_u64()).collect();
    for shards in [2usize, 4, 8] {
        assert_balanced(
            &occupancy_of(ids.iter().copied(), shards),
            &format!("{POPULATION} random ids at {shards} shards"),
        );
    }
}

#[test]
fn sequential_ids_balance_across_shards() {
    // Fleets provision ids 0..N in a loop; the mixer must spread the
    // arithmetic structure as well as it spreads random ids.
    for shards in [2usize, 4, 8] {
        assert_balanced(
            &occupancy_of(0..POPULATION, shards),
            &format!("{POPULATION} sequential ids at {shards} shards"),
        );
    }
    // Strided ids (e.g. even-only deployments) must balance too.
    for shards in [2usize, 4, 8] {
        assert_balanced(
            &occupancy_of((0..POPULATION).map(|i| i * 2), shards),
            &format!("{POPULATION} even ids at {shards} shards"),
        );
    }
}

#[test]
fn provisioning_follows_the_pure_router() {
    let batch = BatchConfig::new(25, 2, Format::new(16, 10).unwrap()).unwrap();
    let config = GatewayConfig::new(
        batch,
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        7,
        8,
    );
    let mut gateway = Gateway::new(config);
    for id in 0..2000u64 {
        gateway.provision(id, 0).unwrap();
    }
    let expected: Vec<usize> = occupancy_of(0..2000, 8)
        .iter()
        .map(|&n| n as usize)
        .collect();
    assert_eq!(gateway.shard_occupancy(), expected);
    assert_eq!(gateway.sessions(), 2000);
}

#[test]
fn derived_keys_are_deterministic_and_collision_free() {
    let mut keys = BTreeSet::new();
    for id in 0..2000u64 {
        assert!(
            keys.insert(derive_key(2022, id)),
            "key collision at sensor {id}"
        );
        assert_eq!(derive_key(2022, id), derive_key(2022, id));
    }
    // Different fleet seeds produce disjoint key material.
    for id in 0..200u64 {
        assert!(
            keys.insert(derive_key(2023, id)),
            "cross-seed collision at {id}"
        );
    }
}
