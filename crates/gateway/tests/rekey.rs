//! Fleet-wide staggered rekey, end to end: ratcheting sensors rotate on
//! their own staggered watermarks, the gateway's trial-open follows
//! every boundary without any epoch byte on the wire, and the report
//! artifacts stay byte-identical at any shard or thread count.

use age_core::{AgeEncoder, Batch, BatchConfig, Encoder};
use age_fixed::Format;
use age_gateway::{derive_root, stagger_phase, Cohort, FleetFrame, Gateway, GatewayConfig};
use age_transport::{chacha20poly1305_factory, Sensor};

const SEED: u64 = 2022;
const SENSORS: u64 = 12;
const FRAMES_PER_SENSOR: usize = 40;
const INTERVAL: u64 = 9;

fn batch_cfg() -> BatchConfig {
    BatchConfig::new(25, 2, Format::new(16, 10).unwrap()).unwrap()
}

fn rekey_config(shards: usize) -> GatewayConfig {
    let mut config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        shards,
    );
    config.rekey_interval = Some(INTERVAL);
    config
}

/// The whole fleet's traffic in arrival order: sensors interleaved
/// round-robin, each sealing with its own ratchet and rotating at its
/// staggered watermark. Every sensor crosses several epoch boundaries.
fn rekey_traffic() -> Vec<FleetFrame> {
    let cfg = batch_cfg();
    let age = AgeEncoder::new(160);
    let mut sensors: Vec<Sensor> = (0..SENSORS)
        .map(|id| {
            Sensor::with_rekey(
                derive_root(SEED, id),
                INTERVAL,
                stagger_phase(SEED, id, INTERVAL),
                chacha20poly1305_factory,
            )
        })
        .collect();
    let mut traffic = Vec::with_capacity(SENSORS as usize * FRAMES_PER_SENSOR);
    for round in 0..FRAMES_PER_SENSOR {
        for (id, sensor) in sensors.iter_mut().enumerate() {
            let event = (round + id) % 3;
            let kept = 6 + event * 8;
            let batch = Batch::new(
                (0..kept).collect(),
                (0..kept * 2).map(|v| (v as f64) * 0.25 - 3.0).collect(),
            )
            .unwrap();
            let payload = age.encode(&batch, &cfg).unwrap();
            let mut sealed = Vec::new();
            sensor.seal_into(&payload, &mut sealed);
            let stamp = (round as u64 * SENSORS + id as u64 + 1) * 20_000;
            traffic.push(FleetFrame::encode(id as u64, &sealed, event, stamp));
        }
    }
    // Every sensor ends well past epoch 0 — the run really exercises
    // rotation, not just the static path with a ratchet bolted on.
    for sensor in &sensors {
        assert!(
            sensor.epoch() >= 3,
            "sensor ended at epoch {} — traffic too short to rekey",
            sensor.epoch()
        );
    }
    traffic
}

fn run_gateway(shards: usize, threads: usize, traffic: &[FleetFrame]) -> Gateway {
    let mut gateway = Gateway::new(rekey_config(shards));
    for id in 0..SENSORS {
        gateway.provision(id, 0).unwrap();
    }
    gateway.run(traffic, threads);
    gateway
}

#[test]
fn rekeying_fleet_is_fully_accepted_and_nonce_clean() {
    let traffic = rekey_traffic();
    let gateway = run_gateway(4, 1, &traffic);
    let stats = gateway.fleet_stats();
    assert_eq!(stats.frames, traffic.len() as u64);
    assert_eq!(stats.accepted, traffic.len() as u64, "{stats:?}");
    // Interval 9 over 40 frames: each sensor crosses at least 3
    // boundaries, and every crossing is counted exactly once.
    assert!(
        stats.rotations >= 3 * SENSORS,
        "only {} rotations followed",
        stats.rotations
    );
    let audit = gateway.nonce_audit();
    assert!(audit.is_clean(), "{audit}");
    // Global sequence numbers: epochs partition the same per-sensor
    // sequence stream, so the audit sees every sensor across multiple
    // epochs with zero overlap.
    assert!(audit.cells() > SENSORS as usize);
}

#[test]
fn epoch_boundaries_leave_no_wire_size_signature() {
    // The AGE encoder pads every event to the same payload size, and a
    // rotation swaps the key without touching the frame layout — so all
    // frames in a rekeying run are byte-constant on the wire and the
    // rotation schedule is invisible to a size channel.
    let lens: Vec<usize> = rekey_traffic().iter().map(|f| f.wire.len()).collect();
    assert!(
        lens.windows(2).all(|w| w[0] == w[1]),
        "wire sizes vary: min {:?} max {:?}",
        lens.iter().min(),
        lens.iter().max()
    );
}

#[test]
fn report_is_byte_identical_across_shard_and_thread_counts() {
    let traffic = rekey_traffic();
    let baseline = run_gateway(1, 1, &traffic);
    let reference = baseline.fleet_report().to_json();
    assert!(reference.contains("\"rotations\":"));
    for (shards, threads) in [(4usize, 1usize), (4, 4), (8, 3)] {
        let gateway = run_gateway(shards, threads, &traffic);
        assert_eq!(
            gateway.fleet_report().to_json(),
            reference,
            "report diverged at {shards} shards / {threads} threads"
        );
        assert!(gateway.nonce_audit().is_clean());
    }
}

#[test]
fn static_fleet_report_still_renders_zero_rotations() {
    // The legacy path: no rekey interval, same key list and a literal
    // rotations counter of 0 — downstream parsers see one schema.
    let mut gateway = Gateway::new(GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        2,
    ));
    gateway.provision(1, 0).unwrap();
    let json = gateway.fleet_report().to_json();
    assert!(json.contains("\"rotations\": 0"), "{json}");
}
