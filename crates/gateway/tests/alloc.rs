//! Allocation regression for the per-shard steady-state ingest path.
//!
//! A gateway holding 100k+ sessions processes millions of frames; any
//! per-frame allocation is a throughput cliff and a fragmentation
//! hazard. After a warm-up pass has grown the shard's payload buffer,
//! decode scratch, and created every histogram bin the traffic will
//! touch (one size and one gap key per event class, the session's
//! nonce run, the per-sensor BTree nodes), the full frame → open →
//! decode → rollup path must not allocate at all.
//!
//! This test binary owns its `#[global_allocator]`; the counting
//! allocator's counters are thread-local, so measurement runs on the
//! single-frame `ingest` path (the multi-threaded `run` would spread
//! counts across worker threads).

use age_core::{AgeEncoder, Batch, BatchConfig, Encoder};
use age_crypto::ChaCha20Poly1305;
use age_fixed::Format;
use age_gateway::{derive_key, Cohort, FleetFrame, Gateway, GatewayConfig};
use age_telemetry::alloc::{self, CountingAllocator};
use age_transport::Sensor;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

const SEED: u64 = 7;
const SENSOR: u64 = 5;

fn batch_cfg() -> BatchConfig {
    BatchConfig::new(25, 2, Format::new(16, 10).unwrap()).unwrap()
}

/// Valid frames from one AGE sensor on a constant cadence, cycling the
/// three event classes. Constant frame size (AGE) + constant cadence
/// means the session's histograms see exactly one (event, size) and one
/// (event, gap) key per class — all created during warm-up.
fn frames(count: usize) -> Vec<FleetFrame> {
    let cfg = batch_cfg();
    let age = AgeEncoder::new(160);
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new(derive_key(SEED, SENSOR))));
    (0..count)
        .map(|i| {
            let event = i % 3;
            let kept = 6 + event * 8;
            let batch = Batch::new(
                (0..kept).collect(),
                (0..kept * 2).map(|v| (v as f64) * 0.25 - 3.0).collect(),
            )
            .unwrap();
            let payload = age.encode(&batch, &cfg).unwrap();
            let mut sealed = Vec::new();
            sensor.seal_into(&payload, &mut sealed);
            FleetFrame::encode(SENSOR, &sealed, event, (i as u64 + 1) * 260_000)
        })
        .collect()
}

#[test]
fn steady_state_ingest_is_allocation_free() {
    let config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        1,
    );
    let mut gateway = Gateway::new(config);
    gateway.provision(SENSOR, 0).unwrap();

    let all = frames(4 + 30);
    // Warm-up: first frame of each event class plus one wrap-around, so
    // every histogram key — (event, size) and (event, gap) for events
    // 0, 1, 2 — and the session's nonce run exist before measurement.
    let (warmup, steady) = all.split_at(4);
    for frame in warmup {
        gateway.ingest(frame).expect("warm-up frame accepted");
    }

    let before = alloc::snapshot();
    for frame in steady {
        gateway.ingest(frame).expect("steady-state frame accepted");
    }
    let delta = alloc::snapshot().since(before);
    assert_eq!(
        delta.allocations,
        0,
        "steady-state ingest allocated {} times ({} bytes) over {} frames",
        delta.allocations,
        delta.bytes,
        steady.len(),
    );

    let report = gateway.fleet_report();
    assert_eq!(report.stats.accepted, all.len() as u64);
    assert_eq!(report.stats.rejected(), 0);
}

/// The streaming monitor and flight recorder ride the same hot path,
/// so arming them must not reintroduce heap traffic: the recorder ring
/// is preallocated and the monitor's histogram keys are all created by
/// the same warm-up that grows the session's. One giant window keeps
/// the monitor from rolling (a roll allocates fresh window state, which
/// is fine once per window but must not happen per frame).
#[cfg(feature = "telemetry")]
#[test]
fn monitored_steady_state_ingest_is_allocation_free() {
    use age_telemetry::MonitorConfig;

    let mut config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        1,
    );
    config.monitor = Some(MonitorConfig {
        // One window spans the whole trace: no mid-steady rolls.
        window_us: 1 << 40,
        ..MonitorConfig::default()
    });
    config.recorder_capacity = 256;
    let mut gateway = Gateway::new(config);
    gateway.provision(SENSOR, 0).unwrap();

    let all = frames(4 + 30);
    let (warmup, steady) = all.split_at(4);
    for frame in warmup {
        gateway.ingest(frame).expect("warm-up frame accepted");
    }

    let before = alloc::snapshot();
    for frame in steady {
        gateway.ingest(frame).expect("steady-state frame accepted");
    }
    let delta = alloc::snapshot().since(before);
    assert_eq!(
        delta.allocations,
        0,
        "monitored steady-state ingest allocated {} times ({} bytes) over {} frames",
        delta.allocations,
        delta.bytes,
        steady.len(),
    );

    // The monitor and recorder really were live the whole time.
    let monitor = gateway.monitor().expect("monitor armed");
    let score = monitor.score(0, 0).expect("window 0 scored");
    assert_eq!(score.observations, all.len() as u64);
    let (records, dropped) = gateway.flight_records();
    assert_eq!(records.len(), all.len());
    assert_eq!(dropped, 0);
}

/// Rejections on the hot path must not allocate either: a flood of
/// garbage datagrams is exactly when the gateway can least afford heap
/// traffic.
#[test]
fn steady_state_rejections_are_allocation_free() {
    let config = GatewayConfig::new(
        batch_cfg(),
        vec![Cohort::new("AGE", Box::new(AgeEncoder::new(160)))],
        SEED,
        1,
    );
    let mut gateway = Gateway::new(config);
    gateway.provision(SENSOR, 0).unwrap();

    let valid = frames(8);
    // Warm the accept path (grows payload/scratch buffers).
    for frame in &valid[..4] {
        gateway.ingest(frame).expect("warm-up frame accepted");
    }
    // Pre-built hostile datagrams: truncated, unknown sensor, corrupted.
    let truncated = FleetFrame {
        wire: vec![1, 2, 3],
        event: 0,
        sent_at_us: 0,
    };
    let mut unknown = valid[4].clone();
    unknown.wire[..8].copy_from_slice(&999u64.to_le_bytes());
    let mut corrupt = valid[5].clone();
    corrupt.wire[20] ^= 0xFF;
    // Warm-up pass over each rejection class (counters are plain
    // fields, but the first corrupt open may grow the payload buffer).
    for frame in [&truncated, &unknown, &corrupt] {
        gateway.ingest(frame).expect_err("hostile frame rejected");
    }

    let before = alloc::snapshot();
    for _ in 0..10 {
        for frame in [&truncated, &unknown, &corrupt] {
            gateway.ingest(frame).expect_err("hostile frame rejected");
        }
    }
    let delta = alloc::snapshot().since(before);
    assert_eq!(
        delta.allocations, 0,
        "steady-state rejection allocated {} times ({} bytes)",
        delta.allocations, delta.bytes,
    );
}
