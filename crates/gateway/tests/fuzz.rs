//! Cross-sensor confusion fuzzing for the gateway ingest boundary.
//!
//! The addressing header is outside the AEAD envelope, so an attacker
//! can write anything into it; everything else on the wire is theirs to
//! mangle too. This battery replays frames across sensor ids, truncates
//! and oversizes datagrams, corrupts bytes, duplicates, and interleaves
//! sequences out of order — and asserts three things throughout:
//!
//! 1. every rejection is a *structured* [`GatewayError`], never a panic;
//! 2. the counters account for every arrival (`frames == accepted +
//!    rejected`), with each scenario landing in its designated counter;
//! 3. the fleet report stays byte-identical across shard counts even on
//!    hostile traffic.
//!
//! The seeded soak at the bottom is the cargo-test soak leg: thousands
//! of randomized mutations per run, deterministic per seed.

use age_core::{AgeEncoder, Batch, BatchConfig, Encoder, StandardEncoder};
use age_crypto::ChaCha20Poly1305;
use age_fixed::Format;
use age_gateway::{
    derive_key, Cohort, FleetFrame, Gateway, GatewayConfig, GatewayError, HeaderError, HEADER_LEN,
};
use age_telemetry::DetRng;
use age_transport::{ReceiveError, Sensor};

const SEED: u64 = 2022;
const MAX_DATAGRAM: usize = 4096;

fn batch_cfg() -> BatchConfig {
    BatchConfig::new(25, 2, Format::new(16, 10).unwrap()).unwrap()
}

fn gateway(sensors: u64, shards: usize) -> Gateway {
    let config = GatewayConfig::new(
        batch_cfg(),
        vec![
            Cohort::new("AGE", Box::new(AgeEncoder::new(160))),
            Cohort::new("Std", Box::new(StandardEncoder)),
        ],
        SEED,
        shards,
    );
    let mut gateway = Gateway::new(config);
    for id in 0..sensors {
        gateway.provision(id, (id % 5 == 4) as usize).unwrap();
    }
    gateway
}

/// Seals `frames_per_sensor` valid frames for each of `sensors` sensors,
/// interleaved round-robin (sensor 0, 1, .., n-1, 0, 1, ..).
fn valid_traffic(sensors: u64, frames_per_sensor: usize) -> Vec<FleetFrame> {
    let cfg = batch_cfg();
    let age = AgeEncoder::new(160);
    let std_enc = StandardEncoder;
    let mut senders: Vec<Sensor> = (0..sensors)
        .map(|id| Sensor::new(Box::new(ChaCha20Poly1305::new(derive_key(SEED, id)))))
        .collect();
    let mut rng = DetRng::seed_from_u64(SEED ^ 0xf1ee);
    let mut frames = Vec::new();
    for round in 0..frames_per_sensor {
        for id in 0..sensors {
            let event = rng.gen_range(0..3usize);
            let kept = 6 + event * 8;
            let batch = Batch::new(
                (0..kept).collect(),
                (0..kept * 2).map(|_| rng.gen_range(-8.0..8.0)).collect(),
            )
            .unwrap();
            let payload = if id % 5 == 4 {
                std_enc.encode(&batch, &cfg).unwrap()
            } else {
                age.encode(&batch, &cfg).unwrap()
            };
            let mut sealed = Vec::new();
            senders[id as usize].seal_into(&payload, &mut sealed);
            let sent_at = (round as u64 * sensors + id + 1) * 10_000;
            frames.push(FleetFrame::encode(id, &sealed, event, sent_at));
        }
    }
    frames
}

#[test]
fn cross_sensor_header_rewrite_is_rejected_as_auth_failure() {
    let mut gw = gateway(10, 4);
    let frames = valid_traffic(10, 2);
    // Replay sensor 0's frame under every other sensor's id: routing
    // honors the forged header, but the target session's key refuses
    // the frame.
    for victim in 1..10u64 {
        let mut forged = frames[0].clone();
        forged.wire[..HEADER_LEN].copy_from_slice(&victim.to_le_bytes());
        let err = gw.ingest(&forged).unwrap_err();
        assert!(
            matches!(err, GatewayError::Receive(ReceiveError::Cipher(_))),
            "forged header for sensor {victim} produced {err:?}"
        );
    }
    let report = gw.fleet_report();
    assert_eq!(report.stats.auth_failed, 9);
    assert_eq!(report.stats.accepted, 0);
    assert_eq!(report.stats.frames, 9);
}

#[test]
fn truncated_and_oversized_datagrams_are_counted_and_rejected() {
    let mut gw = gateway(4, 2);
    for len in 0..HEADER_LEN {
        let runt = FleetFrame {
            wire: vec![0xAB; len],
            event: 0,
            sent_at_us: 0,
        };
        let err = gw.ingest(&runt).unwrap_err();
        assert_eq!(err, GatewayError::Header(HeaderError::Truncated { len }));
    }
    let oversized = FleetFrame {
        wire: vec![0u8; MAX_DATAGRAM + 1],
        event: 0,
        sent_at_us: 0,
    };
    let err = gw.ingest(&oversized).unwrap_err();
    assert_eq!(
        err,
        GatewayError::Header(HeaderError::Oversized {
            len: MAX_DATAGRAM + 1,
            max: MAX_DATAGRAM
        })
    );
    let report = gw.fleet_report();
    assert_eq!(report.stats.header_truncated, HEADER_LEN as u64);
    assert_eq!(report.stats.header_oversized, 1);
    assert_eq!(report.stats.rejected(), report.stats.frames);
}

#[test]
fn unknown_sensors_and_corrupted_frames_are_structured_errors() {
    let mut gw = gateway(10, 4);
    let frames = valid_traffic(10, 1);

    // Unknown sensor id: valid header shape, no session.
    let mut unknown = frames[0].clone();
    unknown.wire[..HEADER_LEN].copy_from_slice(&999u64.to_le_bytes());
    assert_eq!(
        gw.ingest(&unknown).unwrap_err(),
        GatewayError::UnknownSensor { sensor_id: 999 }
    );

    // Every single-byte corruption of the sealed region must fail
    // authentication (AEAD covers the whole frame).
    let mut corrupted_count = 0u64;
    for position in HEADER_LEN..frames[1].wire.len() {
        let mut corrupt = frames[1].clone();
        corrupt.wire[position] ^= 0x40;
        let err = gw.ingest(&corrupt).unwrap_err();
        assert!(
            matches!(
                err,
                GatewayError::Receive(ReceiveError::Cipher(_))
                    | GatewayError::Receive(ReceiveError::FarFuture { .. })
            ),
            "corrupt byte at {position} produced {err:?}"
        );
        corrupted_count += 1;
    }
    let report = gw.fleet_report();
    assert_eq!(report.stats.unknown_sensor, 1);
    assert_eq!(
        report.stats.auth_failed + report.stats.far_future,
        corrupted_count
    );
    assert_eq!(report.stats.accepted, 0);
}

#[test]
fn duplicates_are_replay_rejected_and_sealed_garbage_fails_decode() {
    let mut gw = gateway(10, 4);
    let frames = valid_traffic(10, 1);

    // First arrival accepted, exact duplicate replay-rejected.
    gw.ingest(&frames[0]).unwrap();
    assert!(matches!(
        gw.ingest(&frames[0]).unwrap_err(),
        GatewayError::Receive(ReceiveError::Replay(_))
    ));

    // A frame sealed under the *correct* key whose payload is not a
    // valid encoding authenticates but fails decode.
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new(derive_key(SEED, 3))));
    let mut sealed = Vec::new();
    sensor.seal_into(&[0u8; 10], &mut sealed);
    let garbage = FleetFrame::encode(3, &sealed, 0, 50);
    assert!(matches!(
        gw.ingest(&garbage).unwrap_err(),
        GatewayError::Decode(_)
    ));

    let report = gw.fleet_report();
    assert_eq!(report.stats.accepted, 1);
    assert_eq!(report.stats.replay_rejected, 1);
    assert_eq!(report.stats.decode_failed, 1);
}

#[test]
fn out_of_order_interleaving_is_absorbed_by_the_replay_window() {
    let frames = valid_traffic(20, 4);
    let mut in_order = gateway(20, 4);
    in_order.run(&frames, 2);

    // Reverse each sensor's sequence order and interleave adversarially
    // (whole trace reversed): the 64-entry replay window accepts every
    // frame, and the deterministic report matches the in-order run.
    let reversed: Vec<FleetFrame> = frames.iter().rev().cloned().collect();
    let mut shuffled = gateway(20, 4);
    shuffled.run(&reversed, 2);

    assert_eq!(in_order.fleet_report().stats.accepted, 20 * 4);
    assert_eq!(
        shuffled.fleet_report().stats.accepted,
        20 * 4,
        "out-of-order arrival within the window must not drop frames"
    );
    assert_eq!(
        in_order.fleet_report().to_json(),
        shuffled.fleet_report().to_json(),
        "arrival order must not reach the deterministic report"
    );
}

/// One randomized mutation of a valid frame; returns whether the result
/// can still be accepted (i.e. the mutation was the identity).
fn mutate(rng: &mut DetRng, frame: &mut FleetFrame, sensors: u64) -> bool {
    match rng.gen_range(0..6u32) {
        0 => {
            // Cross-sensor rewrite.
            let target = rng.gen_range(0..sensors);
            frame.wire[..HEADER_LEN].copy_from_slice(&target.to_le_bytes());
            false
        }
        1 => {
            // Truncate somewhere, possibly below the header.
            let keep = rng.gen_range(0..frame.wire.len());
            frame.wire.truncate(keep);
            false
        }
        2 => {
            // Oversize with trailing garbage.
            let extra = rng.gen_range(1..64usize);
            frame
                .wire
                .extend(std::iter::repeat_n(0xEE, MAX_DATAGRAM + extra));
            false
        }
        3 => {
            // Flip one byte anywhere.
            let position = rng.gen_range(0..frame.wire.len());
            frame.wire[position] ^= 1 << rng.gen_range(0..8u32);
            false
        }
        4 => {
            // Address an unprovisioned sensor.
            let ghost = sensors + rng.gen_range(1..1000u64);
            frame.wire[..HEADER_LEN].copy_from_slice(&ghost.to_le_bytes());
            false
        }
        _ => true, // leave valid
    }
}

#[test]
fn fuzz_soak_structured_errors_full_accounting_any_shard_count() {
    for seed in 0..8u64 {
        let mut rng = DetRng::seed_from_u64(seed);
        let sensors = 30u64;
        let mut frames = valid_traffic(sensors, 4);
        let mut duplicates = Vec::new();
        for frame in frames.iter_mut() {
            if rng.gen_bool(0.1) {
                duplicates.push(frame.clone());
            }
            if rng.gen_bool(0.4) {
                mutate(&mut rng, frame, sensors);
            }
        }
        frames.extend(duplicates);
        let total = frames.len() as u64;

        // Single-frame path: every outcome is a structured error.
        let mut single = gateway(sensors, 1);
        let mut accepted = 0u64;
        for frame in &frames {
            match single.ingest(frame) {
                Ok(_) => accepted += 1,
                Err(
                    GatewayError::Header(_)
                    | GatewayError::UnknownSensor { .. }
                    | GatewayError::UnknownCohort { .. }
                    | GatewayError::Receive(_)
                    | GatewayError::Decode(_),
                ) => {}
            }
        }
        let report = single.fleet_report();
        assert_eq!(
            report.stats.frames, total,
            "seed {seed}: every arrival counted"
        );
        assert_eq!(report.stats.accepted, accepted);
        assert_eq!(
            report.stats.accepted + report.stats.rejected(),
            total,
            "seed {seed}: counters must partition arrivals"
        );
        assert!(accepted > 0, "seed {seed}: soak kept no valid traffic");

        // The same hostile trace through 4 shards / 4 threads folds to
        // the same bytes.
        let mut sharded = gateway(sensors, 4);
        sharded.run(&frames, 4);
        assert_eq!(
            sharded.fleet_report().to_json(),
            report.to_json(),
            "seed {seed}: hostile traffic broke shard determinism"
        );
    }
}
