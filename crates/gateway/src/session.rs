//! One sensor's server-side session state.
//!
//! The session table maps sensor id → (receive keys, replay window,
//! epoch, per-sensor leakage histograms). Everything a shard rolls up
//! at report time is either kept here per sensor or merged
//! commutatively, which is what lets the fleet report come out
//! byte-identical at any shard or thread count.

use age_crypto::ChaCha20Poly1305;
#[cfg(feature = "telemetry")]
use age_telemetry::LeakageStream;
use age_transport::{chacha20poly1305_factory, epoch_skip_budget, Receiver};

/// The far-future skip tolerance, shared with every single-link receiver:
/// one definition in `age-transport` ([`age_transport::MAX_SKIP`]) so the
/// gateway and the link sims cannot drift apart.
pub(crate) use age_transport::MAX_SKIP;

/// Server-side state for one provisioned sensor.
pub(crate) struct Session {
    /// Authenticates and replay-checks this sensor's frames.
    pub(crate) receiver: Receiver,
    /// Index into the gateway's cohort table (selects the decoder and
    /// the leakage stream name).
    pub(crate) cohort: usize,
    /// Latest key epoch the receiver has followed; rekeying sessions
    /// refresh it after every accept, static sessions keep the
    /// provisioned value (0). The nonce audit keys on the epoch each
    /// frame actually *opened* under, so reuse across a rekey is
    /// distinguishable from reuse within one.
    pub(crate) epoch: u64,
    /// Virtual send stamp of the last *accepted* frame; the anchor for
    /// per-sensor inter-transmission gaps. Kept per session because the
    /// fleet interleaves sensors arbitrarily — a shared gap clock would
    /// measure the interleaving, not any sensor's cadence.
    pub(crate) last_send_us: Option<u64>,
    /// Size histogram of this sensor's accepted frames.
    #[cfg(feature = "telemetry")]
    pub(crate) sizes: LeakageStream,
    /// Gap histogram of this sensor's accepted frames.
    #[cfg(feature = "telemetry")]
    pub(crate) gaps: LeakageStream,
}

impl Session {
    /// A fresh session over `key` in `cohort`.
    pub(crate) fn new(key: [u8; 32], cohort: usize, epoch: u64) -> Session {
        Session {
            receiver: Receiver::with_max_skip(Box::new(ChaCha20Poly1305::new(key)), MAX_SKIP),
            cohort,
            epoch,
            last_send_us: None,
            #[cfg(feature = "telemetry")]
            sizes: LeakageStream::default(),
            #[cfg(feature = "telemetry")]
            gaps: LeakageStream::default(),
        }
    }

    /// A rekey-capable session: keys ratchet from `root`, and the
    /// receiver tolerates the epoch skew a sensor rotating every
    /// `interval` sequence numbers can produce across brownouts.
    pub(crate) fn with_rekey(root: [u8; 32], interval: u64, cohort: usize) -> Session {
        Session {
            receiver: Receiver::with_ratchet(
                root,
                MAX_SKIP,
                epoch_skip_budget(MAX_SKIP, interval),
                chacha20poly1305_factory,
            ),
            cohort,
            epoch: 0,
            last_send_us: None,
            #[cfg(feature = "telemetry")]
            sizes: LeakageStream::default(),
            #[cfg(feature = "telemetry")]
            gaps: LeakageStream::default(),
        }
    }

    /// Feeds one accepted frame into the session's leakage histograms:
    /// the wire size always, and — when this is not the session's first
    /// frame and the stamp advanced — the gap since the previous accept,
    /// labeled with the arriving frame's event (matching
    /// `LeakageAudit::observe_timed` semantics exactly).
    ///
    /// Returns the gap that was recorded, if any, so the shard can feed
    /// the same observation into its windowed monitor without
    /// re-deriving the session's gap-anchor rules.
    pub(crate) fn observe_accepted(
        &mut self,
        event: usize,
        wire_len: usize,
        sent_at_us: u64,
    ) -> Option<u64> {
        let gap_us = match self.last_send_us {
            Some(prev) if sent_at_us > prev => Some(sent_at_us - prev),
            _ => None,
        };
        #[cfg(feature = "telemetry")]
        {
            self.sizes.observe(event, wire_len);
            if let Some(gap) = gap_us {
                self.gaps.observe(event, gap as usize);
            }
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = (event, wire_len);
        // A non-advancing stamp is a sensor clock restart; no gap is
        // recorded across the seam, same as `LeakageAudit::observe_timed`.
        self.last_send_us = Some(sent_at_us);
        gap_us
    }
}
