//! Fleet-scale sharded ingest for AGE sensor traffic.
//!
//! One sensor per link is the paper's setting; real deployments
//! aggregate. This crate scales the receive side to a fleet: a
//! *gateway* holds a session table mapping sensor id → (session key,
//! replay window, key epoch, per-sensor leakage histograms), sharded by
//! a pure hash of the sensor id so every shard owns a disjoint slice of
//! the fleet and steady-state ingest is lock-free and allocation-free.
//!
//! The design invariant everything else hangs off of: **reports are a
//! commutative fold.** Shard routing is a pure function of the sensor
//! id ([`shard_of`]), each sensor's frames are processed in trace order
//! by exactly one shard, and every rollup — datagram counters, cohort
//! wire-size envelopes, nonce sets, leakage histograms — merges
//! commutatively and associatively. Therefore [`Gateway::fleet_report`],
//! the [`LeakageAudit`](age_telemetry::LeakageAudit) assembled by
//! [`Gateway::leakage_audit`], and the
//! [`FleetNonceAudit`](age_telemetry::FleetNonceAudit) are
//! *byte-identical* at any shard count and any thread count — pinned by
//! the determinism tests in `age-sim` and compared with `cmp` in CI.
//!
//! Security posture at the ingest boundary:
//!
//! - The 8-byte addressing header is outside the AEAD envelope, so the
//!   gateway treats it as attacker-controlled: it selects a session,
//!   and the session's own key then authenticates the frame. A frame
//!   replayed under another sensor's id fails that sensor's AEAD tag.
//! - Truncated, oversized, unknown-sensor, replayed, far-future, and
//!   undecodable datagrams each land in a dedicated counter and return
//!   a structured [`GatewayError`] — never a panic (fuzzed in
//!   `tests/fuzz.rs`).
//! - Accepted frames feed a gateway-side
//!   [nonce audit](Gateway::nonce_audit) keyed `(sensor, epoch,
//!   sequence)`: any double-accept — cross-shard confusion, a replay
//!   window failure — is a recorded violation.
//!
//! See `docs/architecture.md` for the session-table and merge-semantics
//! write-up.
//!
//! # Examples
//!
//! ```
//! use age_core::{AgeEncoder, Batch, BatchConfig, Encoder, StandardEncoder};
//! use age_crypto::{ChaCha20Poly1305, Cipher};
//! use age_fixed::Format;
//! use age_gateway::{derive_key, Cohort, FleetFrame, Gateway, GatewayConfig};
//!
//! let batch = BatchConfig::new(25, 2, Format::new(16, 10)?)?;
//! let config = GatewayConfig::new(
//!     batch,
//!     vec![
//!         Cohort::new("AGE", Box::new(AgeEncoder::new(160))),
//!         Cohort::new("Std", Box::new(StandardEncoder)),
//!     ],
//!     2022,
//!     4,
//! );
//! let mut gateway = Gateway::new(config);
//! gateway.provision(7, 0)?;
//!
//! // A sensor seals a batch with its derived key and ships it.
//! let cipher = ChaCha20Poly1305::new(derive_key(2022, 7));
//! let batch_data = Batch::new(vec![0, 9], vec![0.5; 4])?;
//! let payload = AgeEncoder::new(160).encode(&batch_data, &batch)?;
//! let sealed = cipher.seal(0, &payload);
//! let frame = FleetFrame::encode(7, &sealed, 0, 10_000);
//!
//! assert_eq!(gateway.ingest(&frame), Ok(0));
//! assert_eq!(gateway.fleet_report().stats.accepted, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod frame;
mod gateway;
mod health;
mod latency;
mod route;
mod session;
mod shard;

pub use frame::{sensor_id_of, FleetFrame, GatewayError, HeaderError, HEADER_LEN};
pub use gateway::{Cohort, CohortReport, FleetReport, Gateway, GatewayConfig};
#[cfg(feature = "telemetry")]
pub use health::{render_postmortem, HealthSnapshot, StreamHealth};
pub use health::{shard_table, ShardReport};
pub use latency::LatencyHistogram;
pub use route::{derive_key, derive_root, shard_of, stagger_phase};
pub use shard::{CohortStats, ShardStats};
