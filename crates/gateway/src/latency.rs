//! A fixed-bucket log2 latency histogram for ingest timing.
//!
//! Wall-clock ingest latency is a *diagnostic*, not part of the
//! deterministic fleet report (it varies run to run by nature), so it
//! lives in its own type that [`FleetReport`](crate::FleetReport) never
//! embeds. Buckets are powers of two in nanoseconds: recording is two
//! instructions, merging is elementwise addition (commutative and
//! associative, like every other gateway rollup), and the quantile
//! error is bounded by one octave — plenty for a p99 regression gate.

/// Power-of-two nanosecond buckets; bucket `i` covers `[2^(i-1), 2^i)`
/// with bucket 0 holding sub-nanosecond (i.e. clamped zero) samples.
const BUCKETS: usize = 64;

/// Histogram of per-frame ingest latencies in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample. Counters saturate rather than wrap:
    /// a histogram that has absorbed `u64::MAX` samples (or a merged
    /// `sum_ns` past `u128::MAX`) pins at the ceiling instead of
    /// silently restarting from zero mid-run.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] = self.buckets[bucket].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum_ns = self.sum_ns.saturating_add(u128::from(ns));
    }

    /// Folds another histogram into this one (saturating, commutative).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        (self.sum_ns / u128::from(self.count)) as u64
    }

    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// holding that rank (so the estimate never understates latency).
    /// `q` is clamped to `[0, 1]`; returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// The p99 ingest latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// The median ingest latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
    }

    #[test]
    fn quantiles_bound_the_samples_from_above() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        // p50 falls in the bucket holding 200–256 ns.
        assert!(h.p50_ns() >= 200 && h.p50_ns() <= 512);
        // p99 lands on the outlier's bucket.
        assert!(h.p99_ns() >= 100_000 && h.p99_ns() <= 262_144);
    }

    #[test]
    fn merge_matches_single_recording() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            let ns = i * 37 + 1;
            all.record(ns);
            if i % 2 == 0 {
                a.record(ns)
            } else {
                b.record(ns)
            }
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, all);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_rank() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 0, "q={q}");
        }
        assert_eq!(h.p50_ns(), 0);
    }

    #[test]
    fn single_bucket_histogram_answers_every_quantile_identically() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(300); // bucket [256, 512) → upper bound 512
        }
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 512, "q={q}");
        }
        assert_eq!(h.mean_ns(), 300);
    }

    #[test]
    fn quantile_extremes_hit_first_and_last_occupied_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(10); // bucket upper bound 16
        h.record(1_000_000); // bucket upper bound 2^20 = 1_048_576
                             // q=0.0 clamps to rank 1 — the smallest sample's bucket.
        assert_eq!(h.quantile_ns(0.0), 16);
        assert_eq!(h.quantile_ns(1.0), 1 << 20);
        // Out-of-range q clamps rather than panicking or overflowing.
        assert_eq!(h.quantile_ns(-3.0), 16);
        assert_eq!(h.quantile_ns(7.5), 1 << 20);
    }

    #[test]
    fn merge_then_quantile_equals_quantile_of_the_union() {
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 977) % 90_000 + 1).collect();
        let mut union = LatencyHistogram::new();
        let mut parts = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        for (i, &ns) in samples.iter().enumerate() {
            union.record(ns);
            parts[i % 3].record(ns);
        }
        let mut merged = LatencyHistogram::new();
        for part in &parts {
            merged.merge(part);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile_ns(q), union.quantile_ns(q), "q={q}");
        }
        assert_eq!(merged.mean_ns(), union.mean_ns());
    }

    #[test]
    fn saturated_counters_pin_instead_of_wrapping() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        let mut pinned = a.clone();
        // Force the counters to the ceiling, then keep going.
        pinned.count = u64::MAX;
        pinned.buckets[7] = u64::MAX;
        pinned.sum_ns = u128::MAX;
        pinned.record(100);
        assert_eq!(pinned.count, u64::MAX);
        assert_eq!(pinned.buckets[7], u64::MAX);
        assert_eq!(pinned.sum_ns, u128::MAX);
        let mut merged = pinned.clone();
        merged.merge(&a);
        assert_eq!(merged.count, u64::MAX, "merge must saturate too");
    }
}
