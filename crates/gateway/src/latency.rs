//! A fixed-bucket log2 latency histogram for ingest timing.
//!
//! Wall-clock ingest latency is a *diagnostic*, not part of the
//! deterministic fleet report (it varies run to run by nature), so it
//! lives in its own type that [`FleetReport`](crate::FleetReport) never
//! embeds. Buckets are powers of two in nanoseconds: recording is two
//! instructions, merging is elementwise addition (commutative and
//! associative, like every other gateway rollup), and the quantile
//! error is bounded by one octave — plenty for a p99 regression gate.

/// Power-of-two nanosecond buckets; bucket `i` covers `[2^(i-1), 2^i)`
/// with bucket 0 holding sub-nanosecond (i.e. clamped zero) samples.
const BUCKETS: usize = 64;

/// Histogram of per-frame ingest latencies in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        (self.sum_ns / u128::from(self.count)) as u64
    }

    /// Nearest-rank quantile, reported as the upper bound of the bucket
    /// holding that rank (so the estimate never understates latency).
    /// `q` is clamped to `[0, 1]`; returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// The p99 ingest latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// The median ingest latency in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
    }

    #[test]
    fn quantiles_bound_the_samples_from_above() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        // p50 falls in the bucket holding 200–256 ns.
        assert!(h.p50_ns() >= 200 && h.p50_ns() <= 512);
        // p99 lands on the outlier's bucket.
        assert!(h.p99_ns() >= 100_000 && h.p99_ns() <= 262_144);
    }

    #[test]
    fn merge_matches_single_recording() {
        let mut all = LatencyHistogram::new();
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..1000u64 {
            let ns = i * 37 + 1;
            all.record(ns);
            if i % 2 == 0 {
                a.record(ns)
            } else {
                b.record(ns)
            }
        }
        let mut merged = LatencyHistogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, all);
    }

    #[test]
    fn extreme_samples_stay_in_range() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_ns(1.0), u64::MAX);
    }
}
