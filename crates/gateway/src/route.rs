//! Pure routing and provisioning functions.
//!
//! Shard assignment must be a pure function of the sensor id alone —
//! never of arrival order, shard load, or any other runtime state —
//! because the determinism guarantee ("byte-identical reports at any
//! shard/thread count") and restart stability ("a sensor lands on the
//! same shard after every gateway restart") both reduce to routing
//! purity. The property tests in `tests/properties.rs` pin these
//! invariants and the balance of the hash.

use age_telemetry::DetRng;

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`, the same
/// mixer `DetRng` seeds itself with. Sensor ids are often sequential
/// (provisioned in a loop), so the router must not use the raw id
/// modulo the shard count — that maps contiguous ranges to contiguous
/// shards and any id-assignment pattern straight into load imbalance.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The shard a sensor's frames are always routed to.
///
/// Pure in `sensor_id` and `shards`; `shards == 0` is treated as a
/// single shard so the router cannot divide by zero.
pub fn shard_of(sensor_id: u64, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (mix(sensor_id) % shards as u64) as usize
}

/// Derives the per-sensor session key from the fleet provisioning seed.
///
/// This is the *simulation's* stand-in for a real provisioning-time KDF
/// (HKDF over a fleet master secret): it is deterministic, collision-free
/// in practice across a fleet (distinct `sensor_id`s land in distinct
/// `DetRng` streams), and lets a seeded fleet driver and the gateway
/// agree on every key without shipping key material around.
pub fn derive_key(fleet_seed: u64, sensor_id: u64) -> [u8; 32] {
    // Bind both inputs before expansion so (seed, id) and (id, seed)
    // collisions cannot happen by accident.
    let mut rng = DetRng::seed_from_u64(mix(fleet_seed) ^ mix(sensor_id ^ 0xa5a5_a5a5_a5a5_a5a5));
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    key
}

/// Derives the per-sensor *root* key for rekeying fleets: the real
/// HKDF-style extract/expand chain (`age_crypto::kdf`) over the fleet
/// secret, from which each sensor's per-epoch keys ratchet forward.
/// Static fleets keep using [`derive_key`] so their artifacts are
/// byte-for-byte unchanged.
pub fn derive_root(fleet_seed: u64, sensor_id: u64) -> [u8; 32] {
    age_crypto::kdf::sensor_root(&age_crypto::kdf::fleet_secret(fleet_seed), sensor_id)
}

/// The per-sensor rotation phase for a staggered fleet rekey.
///
/// If every sensor rotated at the same sequence watermark, a fleet-wide
/// rekey would be one synchronized burst — a thundering herd on the
/// gateway's forward-probe path and a glaring fleet-level timing
/// artifact. Staggering spreads the boundaries uniformly across
/// `0..interval`, purely as a function of `(fleet_seed, sensor_id)`, so
/// the schedule survives restarts on both ends without coordination.
pub fn stagger_phase(fleet_seed: u64, sensor_id: u64, interval: u64) -> u64 {
    if interval == 0 {
        return 0;
    }
    mix(mix(fleet_seed) ^ sensor_id ^ 0x5742_6001_c3a5_9d21) % interval
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one_shard_route_everything_to_zero() {
        for id in [0u64, 1, 7, u64::MAX] {
            assert_eq!(shard_of(id, 0), 0);
            assert_eq!(shard_of(id, 1), 0);
        }
    }

    #[test]
    fn routing_is_total_and_in_range() {
        for shards in [2usize, 3, 8, 17] {
            for id in 0..1000u64 {
                assert!(shard_of(id, shards) < shards);
            }
        }
    }

    #[test]
    fn derived_keys_differ_by_sensor_and_seed() {
        let a = derive_key(1, 100);
        let b = derive_key(1, 101);
        let c = derive_key(2, 100);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_key(1, 100), "derivation is deterministic");
    }

    #[test]
    fn root_keys_come_from_the_kdf_and_differ_from_legacy_keys() {
        let root = derive_root(1, 100);
        assert_eq!(root, derive_root(1, 100), "derivation is deterministic");
        assert_ne!(root, derive_root(1, 101));
        assert_ne!(root, derive_root(2, 100));
        assert_ne!(root, derive_key(1, 100), "rekey fleets get fresh roots");
    }

    #[test]
    fn stagger_phases_spread_across_the_interval() {
        let interval = 64u64;
        let mut seen = [0u32; 64];
        for id in 0..640u64 {
            let phase = stagger_phase(7, id, interval);
            assert!(phase < interval);
            seen[phase as usize] += 1;
        }
        let hit = seen.iter().filter(|&&n| n > 0).count();
        assert!(hit > 48, "only {hit}/64 phases used — rekeys would herd");
        assert_eq!(stagger_phase(7, 11, 0), 0, "explicit-only fleets");
        assert_eq!(
            stagger_phase(7, 11, interval),
            stagger_phase(7, 11, interval),
            "phase is a pure function of (seed, id)"
        );
    }
}
