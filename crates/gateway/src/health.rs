//! Health snapshots, the per-shard table, and postmortem dumps.
//!
//! Three observability surfaces live here, each with a different
//! determinism contract:
//!
//! - [`HealthSnapshot`] — one `HEALTH.jsonl` line per virtual tick.
//!   Every field is a commutative fold over shards (counters, window
//!   scores, alarm states) or a pure function of virtual time, so the
//!   JSONL stream is **byte-identical at any shard or thread count** —
//!   CI `cmp`s it at 1 vs 4 shards. The latency quantiles are 0 in
//!   those runs (latency recording is off wherever bytes are compared).
//! - [`ShardReport`] / [`shard_table`] — the per-shard ingest view.
//!   *Intentionally* shard-count-dependent: its whole point is making
//!   load imbalance visible without parsing `GATEWAY.json`.
//! - [`render_postmortem`] — the `POSTMORTEM.json` dump assembled when
//!   a windowed alarm fires, a nonce audit goes dirty, or the end-of-run
//!   gate fails. Deterministic for a given configuration; additionally
//!   shard-count-independent whenever no flight-recorder ring has
//!   evicted (the merged record list is a total sort).

use crate::shard::ShardStats;

#[cfg(feature = "telemetry")]
use age_telemetry::{Alarm, FlightRecord};

/// The per-rung rejection counters in report order, shared by the
/// health JSONL schema, the Prometheus exposition, and the postmortem.
#[cfg(feature = "telemetry")]
pub(crate) fn rung_counters(stats: &ShardStats) -> [(&'static str, u64); 8] {
    [
        ("header_truncated", stats.header_truncated),
        ("header_oversized", stats.header_oversized),
        ("unknown_sensor", stats.unknown_sensor),
        ("auth_failed", stats.auth_failed),
        ("replay_rejected", stats.replay_rejected),
        ("far_future", stats.far_future),
        ("missing_sequence", stats.missing_sequence),
        ("decode_failed", stats.decode_failed),
    ]
}

/// One shard's ingest accounting, as returned by
/// [`Gateway::shard_reports`](crate::Gateway::shard_reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Sessions provisioned into the shard.
    pub sessions: usize,
    /// The shard's datagram counters.
    pub stats: ShardStats,
    /// Median wall-clock ingest latency (0 unless latency recording).
    pub p50_ingest_ns: u64,
    /// p99 wall-clock ingest latency (0 unless latency recording).
    pub p99_ingest_ns: u64,
}

/// Renders the per-shard table `repro --gateway` prints: one row per
/// shard with frames, accepts, every rejection rung, and the latency
/// quantiles.
pub fn shard_table(reports: &[ShardReport]) -> String {
    let mut out = String::with_capacity(128 * (reports.len() + 1));
    out.push_str(
        "shard sessions   frames accepted  trunc oversz unknown   auth replay future  noseq nodec   p50ns   p99ns\n",
    );
    for report in reports {
        let s = &report.stats;
        out.push_str(&format!(
            "{:>5} {:>8} {:>8} {:>8} {:>6} {:>6} {:>7} {:>6} {:>6} {:>6} {:>6} {:>5} {:>7} {:>7}\n",
            report.shard,
            report.sessions,
            s.frames,
            s.accepted,
            s.header_truncated,
            s.header_oversized,
            s.unknown_sensor,
            s.auth_failed,
            s.replay_rejected,
            s.far_future,
            s.missing_sequence,
            s.decode_failed,
            report.p50_ingest_ns,
            report.p99_ingest_ns,
        ));
    }
    out
}

/// One stream's latest-closed-window scores inside a health snapshot.
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone, PartialEq)]
pub struct StreamHealth {
    /// Stream (cohort) name.
    pub name: String,
    /// The scored window index.
    pub window: u64,
    /// Size-channel observations in that window.
    pub observations: u64,
    /// Size-channel NMI.
    pub nmi: f64,
    /// Gap-channel observations.
    pub gap_observations: u64,
    /// Gap-channel NMI.
    pub timing_nmi: f64,
}

/// One periodic health record — a single `HEALTH.jsonl` line.
#[cfg(feature = "telemetry")]
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// 1-based tick counter.
    pub tick: u64,
    /// Virtual time at the tick boundary, microseconds.
    pub virtual_us: u64,
    /// Cumulative fleet counters at the boundary.
    pub stats: ShardStats,
    /// Arrivals during this tick alone.
    pub delta_frames: u64,
    /// Arrivals per *virtual* second over this tick — the deterministic
    /// throughput figure (wall-clock frames/s lives in the bench).
    pub frames_per_vsec: f64,
    /// Median ingest latency (0 unless latency recording is on).
    pub p50_ingest_ns: u64,
    /// p99 ingest latency (0 unless latency recording is on).
    pub p99_ingest_ns: u64,
    /// Latest fully-closed window's scores per stream, cohort order.
    pub streams: Vec<StreamHealth>,
    /// Alarms raised so far, this tick's included.
    pub alarms_total: u64,
    /// Alarms first raised at this tick.
    pub new_alarms: u64,
    /// Distinct alarming stream names so far, sorted (leak alarms carry
    /// the cohort name; rate alarms contribute `"fleet"`).
    pub alarming: Vec<String>,
}

#[cfg(feature = "telemetry")]
impl HealthSnapshot {
    /// One stable JSONL line (trailing newline included): fixed field
    /// order, integers except the two fixed-precision floats, no
    /// wall-clock anything.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"tick\":{},\"virtual_us\":{},\"frames\":{},\"accepted\":{},\"rejected\":{}",
            self.tick,
            self.virtual_us,
            self.stats.frames,
            self.stats.accepted,
            self.stats.rejected(),
        ));
        for (key, value) in rung_counters(&self.stats) {
            out.push_str(&format!(",\"{key}\":{value}"));
        }
        // Epoch rotations are not a rejection rung (rotated frames are
        // counted in `accepted` too), so they render outside the rung
        // block. Sum-merged like every other counter, the field is
        // byte-identical at any shard count.
        out.push_str(&format!(",\"rotations\":{}", self.stats.rotations));
        out.push_str(&format!(
            ",\"delta_frames\":{},\"frames_per_vsec\":{:.3},\"p50_ingest_ns\":{},\"p99_ingest_ns\":{}",
            self.delta_frames, self.frames_per_vsec, self.p50_ingest_ns, self.p99_ingest_ns,
        ));
        out.push_str(",\"windows\":[");
        for (i, stream) in self.streams.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stream\":\"{}\",\"window\":{},\"observations\":{},\"nmi\":{:.6},\"gap_observations\":{},\"timing_nmi\":{:.6}}}",
                json_escape(&stream.name),
                stream.window,
                stream.observations,
                stream.nmi,
                stream.gap_observations,
                stream.timing_nmi,
            ));
        }
        out.push_str(&format!(
            "],\"alarms_total\":{},\"new_alarms\":{},\"alarming\":[",
            self.alarms_total, self.new_alarms,
        ));
        for (i, name) in self.alarming.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(name)));
        }
        out.push_str("]}\n");
        out
    }

    /// Prometheus-style text exposition of this snapshot — the final
    /// tick's is what `repro --gateway --health` writes next to the
    /// JSONL stream.
    pub fn prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE age_gateway_virtual_seconds gauge\n");
        out.push_str(&format!(
            "age_gateway_virtual_seconds {:.3}\n",
            self.virtual_us as f64 / 1e6
        ));
        out.push_str("# TYPE age_gateway_frames_total counter\n");
        out.push_str(&format!("age_gateway_frames_total {}\n", self.stats.frames));
        out.push_str("# TYPE age_gateway_accepted_total counter\n");
        out.push_str(&format!(
            "age_gateway_accepted_total {}\n",
            self.stats.accepted
        ));
        out.push_str("# TYPE age_gateway_rejected_total counter\n");
        for (rung, value) in rung_counters(&self.stats) {
            out.push_str(&format!(
                "age_gateway_rejected_total{{rung=\"{rung}\"}} {value}\n"
            ));
        }
        out.push_str("# TYPE age_gateway_rotations_total counter\n");
        out.push_str(&format!(
            "age_gateway_rotations_total {}\n",
            self.stats.rotations
        ));
        out.push_str("# TYPE age_gateway_frames_per_virtual_second gauge\n");
        out.push_str(&format!(
            "age_gateway_frames_per_virtual_second {:.3}\n",
            self.frames_per_vsec
        ));
        out.push_str("# TYPE age_gateway_ingest_latency_ns gauge\n");
        out.push_str(&format!(
            "age_gateway_ingest_latency_ns{{quantile=\"0.5\"}} {}\n",
            self.p50_ingest_ns
        ));
        out.push_str(&format!(
            "age_gateway_ingest_latency_ns{{quantile=\"0.99\"}} {}\n",
            self.p99_ingest_ns
        ));
        out.push_str("# TYPE age_gateway_window_nmi gauge\n");
        for stream in &self.streams {
            out.push_str(&format!(
                "age_gateway_window_nmi{{stream=\"{}\",channel=\"size\"}} {:.6}\n",
                stream.name, stream.nmi
            ));
            out.push_str(&format!(
                "age_gateway_window_nmi{{stream=\"{}\",channel=\"timing\"}} {:.6}\n",
                stream.name, stream.timing_nmi
            ));
        }
        out.push_str("# TYPE age_gateway_alarms_total counter\n");
        out.push_str(&format!("age_gateway_alarms_total {}\n", self.alarms_total));
        out.push_str("# TYPE age_gateway_alarming_streams gauge\n");
        out.push_str(&format!(
            "age_gateway_alarming_streams {}\n",
            self.alarming.len()
        ));
        out
    }
}

/// Renders `POSTMORTEM.json`: the trigger, every alarm so far, the
/// cumulative fleet counters, and the merged flight-recorder contents
/// in arrival order. Stable field order, fixed-precision floats, no
/// wall-clock anything — byte-deterministic for a given configuration.
#[cfg(feature = "telemetry")]
pub fn render_postmortem(
    trigger: &str,
    triggered_at_us: u64,
    tick: u64,
    stats: &ShardStats,
    alarms: &[Alarm],
    records: &[FlightRecord],
    dropped_records: u64,
) -> String {
    let mut out = String::with_capacity(256 + 96 * records.len());
    out.push_str("{\n  \"version\": 1,\n  \"trigger\": \"");
    out.push_str(&json_escape(trigger));
    out.push_str(&format!(
        "\",\n  \"triggered_at_us\": {triggered_at_us},\n  \"tick\": {tick},\n  \"fleet\": {{ \"frames\": {}, \"accepted\": {}, \"rejected\": {}",
        stats.frames,
        stats.accepted,
        stats.rejected(),
    ));
    for (key, value) in rung_counters(stats) {
        out.push_str(&format!(", \"{key}\": {value}"));
    }
    out.push_str(" },\n  \"alarms\": [");
    for (i, alarm) in alarms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"kind\": \"{}\", \"window\": {}, \"start_us\": {}, \"end_us\": {}, \"stream\": \"{}\", \"value\": {:.6}, \"p_value\": {:.6}, \"observations\": {} }}",
            alarm.kind.as_str(),
            alarm.window,
            alarm.start_us,
            alarm.end_us,
            json_escape(&alarm.stream),
            alarm.value,
            alarm.p_value,
            alarm.observations,
        ));
    }
    if alarms.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!(
        "  \"retained_records\": {},\n  \"dropped_records\": {dropped_records},\n  \"records\": [",
        records.len(),
    ));
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"t_us\": {}, \"sensor\": {}, \"seq\": {}, \"event\": {}, \"bytes\": {}, \"rung\": \"{}\" }}",
            record.sent_at_us,
            record.sensor_id,
            if record.sequence == u64::MAX {
                "null".to_string()
            } else {
                record.sequence.to_string()
            },
            record.event,
            record.wire_bytes,
            record.rung.as_str(),
        ));
    }
    if records.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Minimal JSON string escaping, matching the fleet report's rules.
#[cfg(feature = "telemetry")]
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ShardStats {
        ShardStats {
            frames: 100,
            wire_bytes: 16_800,
            accepted: 97,
            payload_bytes: 15_000,
            decoded_values: 4_000,
            auth_failed: 2,
            replay_rejected: 1,
            ..ShardStats::default()
        }
    }

    #[test]
    fn shard_table_has_one_row_per_shard_plus_header() {
        let reports = vec![
            ShardReport {
                shard: 0,
                sessions: 50,
                stats: stats(),
                p50_ingest_ns: 1024,
                p99_ingest_ns: 8192,
            },
            ShardReport {
                shard: 1,
                sessions: 49,
                stats: ShardStats::default(),
                p50_ingest_ns: 0,
                p99_ingest_ns: 0,
            },
        ];
        let table = shard_table(&reports);
        assert_eq!(table.lines().count(), 3);
        let row = table.lines().nth(1).expect("row 0");
        assert!(row.contains("100"), "frames column: {row}");
        assert!(row.contains("97"), "accepted column: {row}");
        assert!(row.contains("8192"), "p99 column: {row}");
    }

    #[cfg(feature = "telemetry")]
    mod telemetry_gated {
        use super::*;
        use age_telemetry::AlarmKind;

        fn snapshot() -> HealthSnapshot {
            HealthSnapshot {
                tick: 2,
                virtual_us: 1_000_000,
                stats: stats(),
                delta_frames: 40,
                frames_per_vsec: 80.0,
                p50_ingest_ns: 0,
                p99_ingest_ns: 0,
                streams: vec![StreamHealth {
                    name: "AGE".to_string(),
                    window: 1,
                    observations: 38,
                    nmi: 0.0,
                    gap_observations: 30,
                    timing_nmi: 0.0123456,
                }],
                alarms_total: 1,
                new_alarms: 1,
                alarming: vec!["AGE".to_string()],
            }
        }

        #[test]
        fn json_line_is_single_line_and_stable() {
            let line = snapshot().to_json_line();
            assert!(line.ends_with("]}\n"));
            assert_eq!(line.matches('\n').count(), 1, "one line per snapshot");
            assert!(line.contains("\"tick\":2"));
            assert!(line.contains("\"auth_failed\":2"));
            assert!(line.contains("\"timing_nmi\":0.012346"), "{line}");
            assert!(line.contains("\"alarming\":[\"AGE\"]"));
            // Byte-stable under repetition.
            assert_eq!(line, snapshot().to_json_line());
        }

        #[test]
        fn prometheus_exposition_names_every_rung() {
            let text = snapshot().prometheus();
            for (rung, _) in rung_counters(&stats()) {
                assert!(
                    text.contains(&format!("rung=\"{rung}\"")),
                    "missing {rung} in:\n{text}"
                );
            }
            assert!(text.contains("age_gateway_frames_total 100"));
            assert!(text.contains("age_gateway_alarms_total 1"));
            assert!(
                text.contains("channel=\"timing\"}} 0.012346")
                    || text.contains("channel=\"timing\"} 0.012346")
            );
        }

        #[test]
        fn postmortem_renders_alarms_and_records() {
            let alarm = Alarm {
                kind: AlarmKind::TimingLeak,
                window: 3,
                start_us: 1_500_000,
                end_us: 2_000_000,
                stream: "AGE".to_string(),
                value: 0.42,
                p_value: 0.0099,
                observations: 64,
            };
            let record = FlightRecord {
                sent_at_us: 1_600_000,
                sensor_id: 17,
                sequence: u64::MAX,
                event: 2,
                wire_bytes: 168,
                rung: age_telemetry::IngestRung::AuthFailed,
            };
            let json = render_postmortem(
                "windowed-alarm",
                2_000_000,
                4,
                &stats(),
                &[alarm],
                &[record],
                3,
            );
            assert!(json.contains("\"trigger\": \"windowed-alarm\""));
            assert!(json.contains("\"kind\": \"timing-leak\""));
            assert!(
                json.contains("\"seq\": null"),
                "rejected frames have no sequence"
            );
            assert!(json.contains("\"rung\": \"auth_failed\""));
            assert!(json.contains("\"dropped_records\": 3"));
            // Deterministic under repetition.
            let again = render_postmortem("windowed-alarm", 2_000_000, 4, &stats(), &[], &[], 0);
            assert!(again.contains("\"alarms\": [],"));
            assert!(again.ends_with("\"records\": []\n}\n"));
        }
    }
}
