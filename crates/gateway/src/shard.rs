//! One shard of the session table plus its ingest hot path.
//!
//! A shard owns a disjoint slice of the fleet's sessions (selected by
//! [`shard_of`](crate::shard_of)) and all the scratch buffers the
//! open→decode path needs, so steady-state ingest touches no heap and
//! takes no locks. Every rollup a shard accumulates — counters, cohort
//! stats, nonce sets, leakage histograms held by its sessions — merges
//! commutatively, which is the whole determinism story: any partition
//! of the fleet into shards, processed by any number of threads, folds
//! to the same bytes.

use std::collections::BTreeMap;

use age_core::{Batch, EncodeScratch};
#[cfg(feature = "telemetry")]
use age_telemetry::{
    FleetNonceAudit, FlightRecord, FlightRecorder, IngestRung, Tracer, WindowedMonitor,
};
use age_transport::{ReceiveError, ReceiverStats};

#[cfg(feature = "telemetry")]
use crate::frame::sensor_id_of;
use crate::frame::{FleetFrame, GatewayError, HeaderError, HEADER_LEN};
use crate::gateway::GatewayConfig;
use crate::latency::LatencyHistogram;
use crate::session::Session;

/// Schematic virtual durations for the gateway-side trace spans. The
/// gateway has no virtual CPU model of its own (frames are stamped by
/// the *sensor's* clock), so ingest spans anchor at the frame's send
/// stamp with nominal stage widths — enough to see per-shard ordering
/// and rejection mix on a Chrome-trace timeline, deterministic by
/// construction.
#[cfg(feature = "telemetry")]
const DECODE_SPAN_US: u64 = 60;
#[cfg(feature = "telemetry")]
const AUDIT_SPAN_US: u64 = 40;
#[cfg(feature = "telemetry")]
const REJECT_SPAN_US: u64 = 20;

/// Maps a rejection to the flight-recorder rung that counted it.
#[cfg(feature = "telemetry")]
fn rung_of(error: &GatewayError) -> IngestRung {
    match error {
        GatewayError::Header(HeaderError::Truncated { .. }) => IngestRung::HeaderTruncated,
        GatewayError::Header(HeaderError::Oversized { .. }) => IngestRung::HeaderOversized,
        GatewayError::UnknownSensor { .. } => IngestRung::UnknownSensor,
        GatewayError::UnknownCohort { .. } => IngestRung::DecodeFailed,
        GatewayError::Receive(ReceiveError::Cipher(_)) => IngestRung::AuthFailed,
        GatewayError::Receive(ReceiveError::Replay(_)) => IngestRung::ReplayRejected,
        GatewayError::Receive(ReceiveError::FarFuture { .. }) => IngestRung::FarFuture,
        GatewayError::Receive(ReceiveError::MissingSequence) => IngestRung::MissingSequence,
        GatewayError::Decode(_) => IngestRung::DecodeFailed,
    }
}

/// Datagram-level counters for one shard (or, after merging, the
/// fleet). Every arrival lands in exactly one of `accepted` or a
/// rejection counter, so `frames` always equals their sum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Datagrams that arrived at the shard.
    pub frames: u64,
    /// Attacker-visible bytes across all arrivals, accepted or not.
    pub wire_bytes: u64,
    /// Frames that authenticated, passed replay checks, and decoded.
    pub accepted: u64,
    /// Plaintext payload bytes recovered from accepted frames.
    pub payload_bytes: u64,
    /// Measurements recovered from accepted frames.
    pub decoded_values: u64,
    /// Datagrams shorter than the addressing header.
    pub header_truncated: u64,
    /// Datagrams over the configured size ceiling.
    pub header_oversized: u64,
    /// Datagrams addressed to sensors with no session.
    pub unknown_sensor: u64,
    /// Frames whose AEAD tag failed (includes cross-sensor replays).
    pub auth_failed: u64,
    /// Frames rejected by a session's replay window.
    pub replay_rejected: u64,
    /// Frames whose sequence jumped past the far-future guard.
    pub far_future: u64,
    /// Frames too short to carry a sequence number.
    pub missing_sequence: u64,
    /// Frames that authenticated but whose payload failed to decode.
    pub decode_failed: u64,
    /// Key-epoch rotations receivers followed while accepting frames
    /// (each may cross several epochs at once after a sensor brownout).
    /// Informational, not a rejection rung: rotated frames are also
    /// counted in `accepted`.
    pub rotations: u64,
}

impl ShardStats {
    /// Total rejected datagrams.
    pub fn rejected(&self) -> u64 {
        self.header_truncated
            + self.header_oversized
            + self.unknown_sensor
            + self.auth_failed
            + self.replay_rejected
            + self.far_future
            + self.missing_sequence
            + self.decode_failed
    }

    /// Folds another shard's counters into this one (commutative).
    pub fn merge(&mut self, other: &ShardStats) {
        self.frames += other.frames;
        self.wire_bytes += other.wire_bytes;
        self.accepted += other.accepted;
        self.payload_bytes += other.payload_bytes;
        self.decoded_values += other.decoded_values;
        self.header_truncated += other.header_truncated;
        self.header_oversized += other.header_oversized;
        self.unknown_sensor += other.unknown_sensor;
        self.auth_failed += other.auth_failed;
        self.replay_rejected += other.replay_rejected;
        self.far_future += other.far_future;
        self.missing_sequence += other.missing_sequence;
        self.decode_failed += other.decode_failed;
        self.rotations += other.rotations;
    }
}

/// Per-cohort accepted-traffic rollup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CohortStats {
    /// Sensors provisioned into the cohort.
    pub sensors: u64,
    /// Frames accepted from the cohort's sensors.
    pub frames: u64,
    /// Wire bytes of those frames (header included).
    pub wire_bytes: u64,
    /// Smallest accepted wire frame (`usize::MAX` until one arrives).
    pub min_wire_bytes: usize,
    /// Largest accepted wire frame.
    pub max_wire_bytes: usize,
    /// Measurements decoded from the cohort's frames.
    pub decoded_values: u64,
}

impl Default for CohortStats {
    fn default() -> Self {
        CohortStats {
            sensors: 0,
            frames: 0,
            wire_bytes: 0,
            min_wire_bytes: usize::MAX,
            max_wire_bytes: 0,
            decoded_values: 0,
        }
    }
}

impl CohortStats {
    fn note(&mut self, wire_len: usize, decoded: usize) {
        self.frames += 1;
        self.wire_bytes += wire_len as u64;
        self.min_wire_bytes = self.min_wire_bytes.min(wire_len);
        self.max_wire_bytes = self.max_wire_bytes.max(wire_len);
        self.decoded_values += decoded as u64;
    }

    /// Folds another shard's view of the same cohort into this one.
    pub fn merge(&mut self, other: &CohortStats) {
        self.sensors += other.sensors;
        self.frames += other.frames;
        self.wire_bytes += other.wire_bytes;
        self.min_wire_bytes = self.min_wire_bytes.min(other.min_wire_bytes);
        self.max_wire_bytes = self.max_wire_bytes.max(other.max_wire_bytes);
        self.decoded_values += other.decoded_values;
    }

    /// `true` when every accepted frame had the same wire length — the
    /// fleet-level constant-size invariant for a defended cohort.
    pub fn wire_constant(&self) -> bool {
        self.frames == 0 || self.min_wire_bytes == self.max_wire_bytes
    }
}

/// One shard: a disjoint slice of the session table plus scratch.
pub(crate) struct Shard {
    sessions: BTreeMap<u64, Session>,
    pub(crate) stats: ShardStats,
    pub(crate) cohorts: Vec<CohortStats>,
    #[cfg(feature = "telemetry")]
    pub(crate) nonces: FleetNonceAudit,
    pub(crate) latency: LatencyHistogram,
    /// Windowed leakage monitor (present when the config enables it).
    #[cfg(feature = "telemetry")]
    pub(crate) monitor: Option<WindowedMonitor>,
    /// Ring of recent ingest events for postmortem dumps.
    #[cfg(feature = "telemetry")]
    pub(crate) recorder: FlightRecorder,
    /// Virtual-time span tracer (inert unless `repro --trace` enabled
    /// collection before the gateway was built).
    #[cfg(feature = "telemetry")]
    tracer: Tracer,
    /// The epoch a rotation during the current ingest landed on, handed
    /// from the hot path to the flight recorder (`None` steady-state).
    #[cfg(feature = "telemetry")]
    rotated_to: Option<u64>,
    payload: Vec<u8>,
    decoded: Batch,
    scratch: EncodeScratch,
}

impl Shard {
    pub(crate) fn new(config: &GatewayConfig, index: usize) -> Shard {
        #[cfg(not(feature = "telemetry"))]
        let _ = index;
        Shard {
            sessions: BTreeMap::new(),
            stats: ShardStats::default(),
            cohorts: vec![CohortStats::default(); config.cohorts.len()],
            #[cfg(feature = "telemetry")]
            nonces: FleetNonceAudit::default(),
            latency: LatencyHistogram::new(),
            #[cfg(feature = "telemetry")]
            monitor: config
                .monitor
                .map(|m| WindowedMonitor::new(m.window_us, config.cohorts.len())),
            #[cfg(feature = "telemetry")]
            recorder: FlightRecorder::with_capacity(config.recorder_capacity),
            #[cfg(feature = "telemetry")]
            tracer: Tracer::new(&format!("gateway/shard-{index:02}")),
            #[cfg(feature = "telemetry")]
            rotated_to: None,
            payload: Vec::new(),
            decoded: Batch::empty(),
            scratch: EncodeScratch::new(),
        }
    }

    pub(crate) fn sessions(&self) -> &BTreeMap<u64, Session> {
        &self.sessions
    }

    pub(crate) fn occupancy(&self) -> usize {
        self.sessions.len()
    }

    pub(crate) fn insert_session(&mut self, sensor_id: u64, session: Session) {
        let cohort = session.cohort;
        // Re-provisioning replaces the session; keep cohort headcounts
        // exact either way.
        if let Some(old) = self.sessions.insert(sensor_id, session) {
            if let Some(stats) = self.cohorts.get_mut(old.cohort) {
                stats.sensors = stats.sensors.saturating_sub(1);
            }
        }
        if let Some(stats) = self.cohorts.get_mut(cohort) {
            stats.sensors += 1;
        }
    }

    /// Summed per-receiver stats across the shard's sessions — the
    /// cross-check that session-level and shard-level accounting agree.
    pub(crate) fn receiver_stats(&self) -> ReceiverStats {
        let mut total = ReceiverStats::default();
        for session in self.sessions.values() {
            total.merge(session.receiver.stats());
        }
        total
    }

    /// Ingests one datagram: header checks, session lookup,
    /// authenticate/replay-check, decode, rollups. Returns the accepted
    /// frame's sequence number. Steady-state (all event classes seen
    /// once) this allocates nothing: the payload buffer, decode batch,
    /// and scratch are shard-owned, and every histogram bin already
    /// exists.
    pub(crate) fn ingest(
        &mut self,
        frame: &FleetFrame,
        config: &GatewayConfig,
    ) -> Result<u64, GatewayError> {
        let started = config.record_latency.then(std::time::Instant::now);
        let result = self.ingest_inner(frame, config);
        if let Some(t0) = started {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.latency.record(ns);
        }
        #[cfg(feature = "telemetry")]
        self.observe_ingest(frame, &result);
        result
    }

    /// Post-ingest observability: window traffic counters, the flight
    /// recorder, and (when tracing) the ingest span tree. Allocation-free
    /// in steady state — the recorder overwrites in place and the
    /// monitor's current-window bins already exist.
    #[cfg(feature = "telemetry")]
    fn observe_ingest(&mut self, frame: &FleetFrame, result: &Result<u64, GatewayError>) {
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.observe_frame(frame.sent_at_us, result.is_ok());
        }
        if self.recorder.capacity() > 0 {
            self.recorder.record(FlightRecord {
                sent_at_us: frame.sent_at_us,
                sensor_id: sensor_id_of(&frame.wire).unwrap_or(0),
                sequence: match result {
                    Ok(sequence) => *sequence,
                    Err(_) => u64::MAX,
                },
                event: u32::try_from(frame.event).unwrap_or(u32::MAX),
                wire_bytes: u32::try_from(frame.wire.len()).unwrap_or(u32::MAX),
                rung: match result {
                    Ok(_) => IngestRung::Accepted,
                    Err(error) => rung_of(error),
                },
            });
            // A followed rotation leaves a second record at the same
            // stamp, carrying the *new epoch* in the sequence field (see
            // `IngestRung::EpochRotated`) — the postmortem's view of when
            // each sensor's keys turned over.
            if let Some(epoch) = self.rotated_to {
                self.recorder.record(FlightRecord {
                    sent_at_us: frame.sent_at_us,
                    sensor_id: sensor_id_of(&frame.wire).unwrap_or(0),
                    sequence: epoch,
                    event: u32::try_from(frame.event).unwrap_or(u32::MAX),
                    wire_bytes: u32::try_from(frame.wire.len()).unwrap_or(u32::MAX),
                    rung: IngestRung::EpochRotated,
                });
            }
        }
        self.rotated_to = None;
        if self.tracer.is_enabled() {
            let t0 = frame.sent_at_us;
            self.tracer.begin("ingest", "gateway", t0);
            if result.is_ok() {
                self.tracer.begin("decode", "encode", t0);
                self.tracer.end(t0 + DECODE_SPAN_US);
                self.tracer.begin("audit", "audit", t0 + DECODE_SPAN_US);
                self.tracer.end(t0 + DECODE_SPAN_US + AUDIT_SPAN_US);
                self.tracer.end(t0 + DECODE_SPAN_US + AUDIT_SPAN_US);
            } else {
                self.tracer.end(t0 + REJECT_SPAN_US);
            }
        }
    }

    fn ingest_inner(
        &mut self,
        frame: &FleetFrame,
        config: &GatewayConfig,
    ) -> Result<u64, GatewayError> {
        let wire = frame.wire.as_slice();
        self.stats.frames += 1;
        self.stats.wire_bytes += wire.len() as u64;
        if wire.len() < HEADER_LEN {
            self.stats.header_truncated += 1;
            return Err(GatewayError::Header(HeaderError::Truncated {
                len: wire.len(),
            }));
        }
        if wire.len() > config.max_datagram_len {
            self.stats.header_oversized += 1;
            return Err(GatewayError::Header(HeaderError::Oversized {
                len: wire.len(),
                max: config.max_datagram_len,
            }));
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&wire[..HEADER_LEN]);
        let sensor_id = u64::from_le_bytes(header);
        let Some(session) = self.sessions.get_mut(&sensor_id) else {
            self.stats.unknown_sensor += 1;
            return Err(GatewayError::UnknownSensor { sensor_id });
        };
        let epoch_before = session.receiver.epoch();
        let sequence = session
            .receiver
            .receive_into(&wire[HEADER_LEN..], &mut self.payload)
            .map_err(|e| {
                match e {
                    ReceiveError::Cipher(_) => self.stats.auth_failed += 1,
                    ReceiveError::Replay(_) => self.stats.replay_rejected += 1,
                    ReceiveError::FarFuture { .. } => self.stats.far_future += 1,
                    ReceiveError::MissingSequence => self.stats.missing_sequence += 1,
                }
                GatewayError::Receive(e)
            })?;
        let Some(cohort) = config.cohorts.get(session.cohort) else {
            self.stats.decode_failed += 1;
            return Err(GatewayError::UnknownCohort {
                cohort: session.cohort,
            });
        };
        cohort
            .encoder
            .decode_into(
                &self.payload,
                &config.batch,
                &mut self.scratch,
                &mut self.decoded,
            )
            .map_err(|e| {
                self.stats.decode_failed += 1;
                GatewayError::Decode(e)
            })?;
        self.stats.accepted += 1;
        self.stats.payload_bytes += self.payload.len() as u64;
        self.stats.decoded_values += self.decoded.len() as u64;
        if let Some(stats) = self.cohorts.get_mut(session.cohort) {
            stats.note(wire.len(), self.decoded.len());
        }
        let epoch_now = session.receiver.epoch();
        if epoch_now > epoch_before {
            self.stats.rotations += 1;
            session.epoch = epoch_now;
            #[cfg(feature = "telemetry")]
            {
                self.rotated_to = Some(epoch_now);
            }
        }
        let gap_us = session.observe_accepted(frame.event, wire.len(), frame.sent_at_us);
        #[cfg(not(feature = "telemetry"))]
        let _ = gap_us;
        #[cfg(feature = "telemetry")]
        {
            // Keyed on the epoch the frame actually *opened* under (a
            // straggler opens one epoch behind the receiver's current) —
            // on static sessions `last_epoch` is always 0, matching the
            // provisioned epoch exactly.
            self.nonces
                .observe(sensor_id, session.receiver.last_epoch(), sequence);
            if let Some(monitor) = self.monitor.as_mut() {
                monitor.observe_accepted(
                    session.cohort,
                    frame.event,
                    wire.len(),
                    gap_us,
                    frame.sent_at_us,
                );
            }
        }
        Ok(sequence)
    }
}
