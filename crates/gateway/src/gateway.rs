//! The gateway itself: configuration, the sharded session table, the
//! parallel drain loop, and the deterministic fleet report.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use age_core::{BatchConfig, Encoder};
#[cfg(feature = "telemetry")]
use age_telemetry::{FleetNonceAudit, FlightRecord, LeakageAudit, MonitorConfig, WindowedMonitor};
use age_transport::ReceiverStats;

use crate::frame::{sensor_id_of, FleetFrame, GatewayError};
use crate::health::ShardReport;
use crate::latency::LatencyHistogram;
use crate::route::{derive_key, shard_of};
use crate::session::Session;
use crate::shard::{CohortStats, Shard, ShardStats};

/// One encoder cohort: a fleet runs a mix of encoders (the defended
/// population plus a leaky baseline for gate calibration), and the
/// leakage report keys streams by this name.
///
/// The name is explicit rather than taken from
/// [`Encoder::name`] because the audit gate's cohort lists use the
/// sweep's short labels (`"Std"`), not the encoder's display name
/// (`"Standard"`) — a silently mismatched name would make the baseline
/// clause of the gate vacuous.
pub struct Cohort {
    /// Stream name in the leakage report (e.g. `"AGE"`, `"Std"`).
    pub name: String,
    /// Decoder for the cohort's payloads.
    pub encoder: Box<dyn Encoder + Send + Sync>,
}

impl Cohort {
    /// A named cohort over `encoder`.
    pub fn new(name: &str, encoder: Box<dyn Encoder + Send + Sync>) -> Cohort {
        Cohort {
            name: name.to_string(),
            encoder,
        }
    }
}

/// Everything a gateway needs to be rebuilt identically: the batch
/// shape, the cohorts, the provisioning seed, and the shard count.
pub struct GatewayConfig {
    /// Stream label in the leakage report (the sweep uses cell labels
    /// here; the fleet uses one label for all aggregated traffic).
    pub label: String,
    /// Batch configuration shared by every cohort.
    pub batch: BatchConfig,
    /// Encoder cohorts; sessions reference these by index.
    pub cohorts: Vec<Cohort>,
    /// Seed for [`derive_key`]; the fleet driver must use the same one.
    pub fleet_seed: u64,
    /// Session-table shards (0 is treated as 1).
    pub shards: usize,
    /// Fleet-wide staggered rekey: `Some(interval)` provisions every
    /// session with an epoch ratchet rooted in the fleet secret, each
    /// sensor rotating every `interval` sequence numbers at its own
    /// [`stagger_phase`](crate::route::stagger_phase) (interval 0 =
    /// ratchets with explicit rotation only). `None` (the default) keeps
    /// the legacy static keys and byte-identical artifacts.
    pub rekey_interval: Option<u64>,
    /// Datagrams longer than this are dropped before the cipher runs.
    pub max_datagram_len: usize,
    /// Record wall-clock ingest latency per frame. Off by default:
    /// latency is a diagnostic, never part of the deterministic report.
    pub record_latency: bool,
    /// Windowed streaming leakage monitor; `None` (the default) scores
    /// nothing mid-run and adds nothing to the ingest path.
    #[cfg(feature = "telemetry")]
    pub monitor: Option<MonitorConfig>,
    /// Flight-recorder ring capacity *per shard* (0 disables). The ring
    /// is preallocated at shard construction, so steady-state recording
    /// never allocates.
    #[cfg(feature = "telemetry")]
    pub recorder_capacity: usize,
}

impl GatewayConfig {
    /// A config with the fleet defaults: label `"fleet"`, a 4 KiB
    /// datagram ceiling, latency recording off, no streaming monitor,
    /// and a 256-record flight recorder per shard.
    pub fn new(batch: BatchConfig, cohorts: Vec<Cohort>, fleet_seed: u64, shards: usize) -> Self {
        GatewayConfig {
            label: "fleet".to_string(),
            batch,
            cohorts,
            fleet_seed,
            shards,
            rekey_interval: None,
            max_datagram_len: 4096,
            record_latency: false,
            #[cfg(feature = "telemetry")]
            monitor: None,
            #[cfg(feature = "telemetry")]
            recorder_capacity: 256,
        }
    }
}

/// Locks a mutex, riding through poisoning: a panicking worker must not
/// let a later report read torn state silently, but shard state is only
/// ever mutated between the take/replace pair, so the inner value is
/// always structurally whole.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The sharded fleet ingest gateway.
///
/// Frames route to shards by [`shard_of`] (a pure function of the
/// sensor id), shards hold disjoint session slices, and every rollup
/// merges commutatively — so [`Gateway::fleet_report`], the leakage
/// audit, and the nonce audit are byte-identical at any shard count and
/// any thread count.
pub struct Gateway {
    config: GatewayConfig,
    shards: Vec<Shard>,
}

impl Gateway {
    /// A gateway with empty session tables.
    pub fn new(config: GatewayConfig) -> Gateway {
        let nshards = config.shards.max(1);
        let shards = (0..nshards).map(|i| Shard::new(&config, i)).collect();
        Gateway { config, shards }
    }

    /// The configuration the gateway was built with.
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// Provisions (or re-provisions) one sensor into `cohort`, deriving
    /// its session key from the fleet seed.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownCohort`] if `cohort` is out of range.
    pub fn provision(&mut self, sensor_id: u64, cohort: usize) -> Result<(), GatewayError> {
        if cohort >= self.config.cohorts.len() {
            return Err(GatewayError::UnknownCohort { cohort });
        }
        let shard = shard_of(sensor_id, self.shards.len());
        let session = match self.config.rekey_interval {
            Some(interval) => {
                let root = crate::route::derive_root(self.config.fleet_seed, sensor_id);
                Session::with_rekey(root, interval, cohort)
            }
            None => {
                let key = derive_key(self.config.fleet_seed, sensor_id);
                Session::new(key, cohort, 0)
            }
        };
        if let Some(slot) = self.shards.get_mut(shard) {
            slot.insert_session(sensor_id, session);
        }
        Ok(())
    }

    /// Provisioned sessions across all shards.
    pub fn sessions(&self) -> u64 {
        self.shards.iter().map(|s| s.occupancy() as u64).sum()
    }

    /// Sessions per shard, in shard order — the load-balance view.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::occupancy).collect()
    }

    /// Ingests one datagram on the caller's thread (the single-threaded
    /// path; [`Gateway::run`] drains whole traces in parallel).
    ///
    /// # Errors
    ///
    /// [`GatewayError`] describing exactly which pipeline stage dropped
    /// the datagram.
    pub fn ingest(&mut self, frame: &FleetFrame) -> Result<u64, GatewayError> {
        let shard = match sensor_id_of(&frame.wire) {
            Some(id) => shard_of(id, self.shards.len()),
            // Headerless garbage deterministically lands on shard 0,
            // which counts and rejects it.
            None => 0,
        };
        match self.shards.get_mut(shard) {
            Some(slot) => slot.ingest(frame, &self.config),
            None => Err(GatewayError::UnknownSensor { sensor_id: 0 }),
        }
    }

    /// Drains a whole trace through the shards on up to `threads`
    /// worker threads (clamped to the shard count; 0 means 1).
    ///
    /// Frames are first routed to per-shard queues in trace order, then
    /// workers claim whole shards off an atomic cursor — so each
    /// sensor's frames are processed in trace order by exactly one
    /// worker regardless of thread count, and the merged reports cannot
    /// observe the parallelism.
    pub fn run(&mut self, traffic: &[FleetFrame], threads: usize) {
        let nshards = self.shards.len();
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        for (index, frame) in traffic.iter().enumerate() {
            let shard = match sensor_id_of(&frame.wire) {
                Some(id) => shard_of(id, nshards),
                None => 0,
            };
            if let Some(queue) = queues.get_mut(shard) {
                queue.push(index);
            }
        }
        let workers = threads.max(1).min(nshards);
        if workers <= 1 {
            for (shard, queue) in self.shards.iter_mut().zip(queues.iter()) {
                for &index in queue {
                    let _ = shard.ingest(&traffic[index], &self.config);
                }
            }
            return;
        }

        let config = &self.config;
        let slots: Vec<Mutex<Option<Shard>>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(|shard| Mutex::new(Some(shard)))
            .collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(index) else { break };
                    let Some(mut shard) = lock(slot).take() else {
                        continue;
                    };
                    if let Some(queue) = queues.get(index) {
                        for &frame in queue {
                            let _ = shard.ingest(&traffic[frame], config);
                        }
                    }
                    *lock(slot) = Some(shard);
                });
            }
        });
        let rebuilt = slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or_else(|| Shard::new(config, index))
            })
            .collect();
        self.shards = rebuilt;
    }

    /// The deterministic fleet rollup. Contains nothing that depends on
    /// the shard count or thread count — commutative merges only — so
    /// its JSON is byte-identical across partitions of the same
    /// traffic.
    pub fn fleet_report(&self) -> FleetReport {
        let mut stats = ShardStats::default();
        let mut cohorts: Vec<CohortStats> = vec![CohortStats::default(); self.config.cohorts.len()];
        let mut active_sensors = 0u64;
        for shard in &self.shards {
            stats.merge(&shard.stats);
            for (mine, theirs) in cohorts.iter_mut().zip(shard.cohorts.iter()) {
                mine.merge(theirs);
            }
            active_sensors += shard
                .sessions()
                .values()
                .filter(|s| s.receiver.stats().accepted > 0)
                .count() as u64;
        }
        FleetReport {
            label: self.config.label.clone(),
            sensors: self.sessions(),
            active_sensors,
            stats,
            cohorts: self
                .config
                .cohorts
                .iter()
                .zip(cohorts)
                .map(|(cohort, stats)| CohortReport {
                    name: cohort.name.clone(),
                    stats,
                })
                .collect(),
        }
    }

    /// Per-receiver stats summed across every session — must agree with
    /// the shard counters for the stages receivers see (the determinism
    /// tests assert it).
    pub fn receiver_stats(&self) -> ReceiverStats {
        let mut total = ReceiverStats::default();
        for shard in &self.shards {
            total.merge(&shard.receiver_stats());
        }
        total
    }

    /// Merged wall-clock ingest latency across shards (empty unless
    /// [`GatewayConfig::record_latency`] was set).
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.merge(&shard.latency);
        }
        merged
    }

    /// Fleet-wide datagram counters — the commutative shard-stats fold
    /// without the session scan [`Gateway::fleet_report`] performs, so
    /// periodic health snapshots stay cheap at large fleets.
    pub fn fleet_stats(&self) -> ShardStats {
        let mut stats = ShardStats::default();
        for shard in &self.shards {
            stats.merge(&shard.stats);
        }
        stats
    }

    /// Per-shard ingest accounting, in shard order — the load-imbalance
    /// view `repro --gateway` prints. Unlike every merged report this is
    /// *intentionally* shard-count-dependent.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, slot)| ShardReport {
                shard,
                sessions: slot.occupancy(),
                stats: slot.stats,
                p50_ingest_ns: slot.latency.p50_ns(),
                p99_ingest_ns: slot.latency.p99_ns(),
            })
            .collect()
    }

    /// The fleet-level windowed monitor: the commutative fold of every
    /// shard's monitor (`None` when [`GatewayConfig::monitor`] is off).
    /// Window counts are sums and the watermark is a max, so the result
    /// — and every alarm scored from it — is byte-identical at any
    /// shard or thread count.
    #[cfg(feature = "telemetry")]
    pub fn monitor(&self) -> Option<WindowedMonitor> {
        let config = self.config.monitor?;
        let mut merged = WindowedMonitor::new(config.window_us, self.config.cohorts.len());
        for shard in &self.shards {
            if let Some(monitor) = &shard.monitor {
                merged.absorb(monitor);
            }
        }
        Some(merged)
    }

    /// All retained flight records merged across shards and sorted into
    /// arrival order, plus the count of records evicted by ring
    /// wrap-around. With per-shard capacity large enough that nothing
    /// was evicted, the merged list is byte-identical at any shard
    /// count; once rings wrap, retention (but not ordering) depends on
    /// how sensors were sharded.
    #[cfg(feature = "telemetry")]
    pub fn flight_records(&self) -> (Vec<FlightRecord>, u64) {
        let mut records = Vec::new();
        let mut dropped = 0u64;
        for shard in &self.shards {
            records.extend(shard.recorder.iter().copied());
            dropped += shard.recorder.dropped();
        }
        records.sort_unstable();
        (records, dropped)
    }

    /// Assembles the fleet leakage audit from every session's size and
    /// gap histograms, keyed `(label, cohort name)`. Pre-binned counts
    /// merge commutatively, so the audit — and the report scored from
    /// it — is byte-identical at any shard/thread count.
    #[cfg(feature = "telemetry")]
    pub fn leakage_audit(&self) -> LeakageAudit {
        let mut audit = LeakageAudit::new();
        for shard in &self.shards {
            for session in shard.sessions().values() {
                if let Some(cohort) = self.config.cohorts.get(session.cohort) {
                    audit.absorb(
                        &self.config.label,
                        &cohort.name,
                        &session.sizes,
                        &session.gaps,
                    );
                }
            }
        }
        audit
    }

    /// The gateway-side nonce audit: `(sensor, epoch, sequence)` triples
    /// of every *accepted* frame, merged across shards. A violation here
    /// means a frame was accepted twice — cross-shard confusion or a
    /// replay-window failure — independent of the seal-side audit the
    /// fleet driver keeps.
    #[cfg(feature = "telemetry")]
    pub fn nonce_audit(&self) -> FleetNonceAudit {
        let mut merged = FleetNonceAudit::default();
        for shard in &self.shards {
            merged.merge(&shard.nonces);
        }
        merged
    }
}

/// One cohort's row in the fleet report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CohortReport {
    /// The cohort's stream name.
    pub name: String,
    /// Accepted-traffic rollup.
    pub stats: CohortStats,
}

/// The deterministic fleet rollup: datagram accounting plus per-cohort
/// wire-size envelopes. Serializes to stable JSON (sorted construction,
/// no floats, no timestamps) so CI can `cmp` reports from different
/// shard/thread configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// The gateway's stream label.
    pub label: String,
    /// Provisioned sensors.
    pub sensors: u64,
    /// Sensors with at least one accepted frame.
    pub active_sensors: u64,
    /// Fleet-wide datagram counters.
    pub stats: ShardStats,
    /// Per-cohort rollups, in cohort order.
    pub cohorts: Vec<CohortReport>,
}

impl FleetReport {
    /// Stable JSON: field order fixed, integers only.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"version\": 1,\n  \"label\": \"");
        out.push_str(&escape(&self.label));
        out.push_str("\",\n  \"sensors\": ");
        out.push_str(&self.sensors.to_string());
        out.push_str(",\n  \"active_sensors\": ");
        out.push_str(&self.active_sensors.to_string());
        let s = &self.stats;
        for (key, value) in [
            ("frames", s.frames),
            ("wire_bytes", s.wire_bytes),
            ("accepted", s.accepted),
            ("payload_bytes", s.payload_bytes),
            ("decoded_values", s.decoded_values),
            ("rejected", s.rejected()),
            ("header_truncated", s.header_truncated),
            ("header_oversized", s.header_oversized),
            ("unknown_sensor", s.unknown_sensor),
            ("auth_failed", s.auth_failed),
            ("replay_rejected", s.replay_rejected),
            ("far_future", s.far_future),
            ("missing_sequence", s.missing_sequence),
            ("decode_failed", s.decode_failed),
            ("rotations", s.rotations),
        ] {
            out.push_str(",\n  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push_str(",\n  \"cohorts\": [");
        for (i, cohort) in self.cohorts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = &cohort.stats;
            out.push_str("\n    { \"name\": \"");
            out.push_str(&escape(&cohort.name));
            out.push_str("\", \"sensors\": ");
            out.push_str(&c.sensors.to_string());
            out.push_str(", \"frames\": ");
            out.push_str(&c.frames.to_string());
            out.push_str(", \"wire_bytes\": ");
            out.push_str(&c.wire_bytes.to_string());
            out.push_str(", \"min_wire_bytes\": ");
            let min = if c.frames == 0 { 0 } else { c.min_wire_bytes };
            out.push_str(&min.to_string());
            out.push_str(", \"max_wire_bytes\": ");
            out.push_str(&c.max_wire_bytes.to_string());
            out.push_str(", \"decoded_values\": ");
            out.push_str(&c.decoded_values.to_string());
            out.push_str(", \"wire_constant\": ");
            out.push_str(if c.wire_constant() { "true" } else { "false" });
            out.push_str(" }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet '{}': {} sensors ({} active), {} frames in, {} accepted, {} rejected",
            self.label,
            self.sensors,
            self.active_sensors,
            self.stats.frames,
            self.stats.accepted,
            self.stats.rejected(),
        )?;
        if self.stats.rotations > 0 {
            writeln!(
                f,
                "  rekey: {} epoch rotations followed",
                self.stats.rotations
            )?;
        }
        for cohort in &self.cohorts {
            let c = &cohort.stats;
            let min = if c.frames == 0 { 0 } else { c.min_wire_bytes };
            writeln!(
                f,
                "  {:<10} {:>8} sensors {:>10} frames  wire {}..={} bytes{}",
                cohort.name,
                c.sensors,
                c.frames,
                min,
                c.max_wire_bytes,
                if c.wire_constant() { " (constant)" } else { "" },
            )?;
        }
        Ok(())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
