//! The fleet wire format and the gateway's structured error type.
//!
//! A fleet datagram is the sensor's sealed frame prefixed with an
//! 8-byte little-endian sensor id — the minimal addressing header a
//! shared ingest point needs to route a frame to the right session.
//! The header is *outside* the AEAD envelope (the gateway must read it
//! before it can look up the key), so everything it influences —
//! routing, session lookup — is re-checked after authentication by the
//! per-session cipher: a frame copied under another sensor's id fails
//! that sensor's key and is counted as an auth failure, never accepted.

use age_core::DecodeError;
use age_transport::ReceiveError;

/// Bytes of addressing header prepended to every sealed frame.
pub const HEADER_LEN: usize = 8;

/// One datagram as it arrives at the gateway, stamped with the virtual
/// send time assigned by the fleet driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetFrame {
    /// Header + sealed frame bytes, exactly as sent.
    pub wire: Vec<u8>,
    /// Ground-truth event label driving the sensor when the frame was
    /// produced. Never used to process the frame — only to label the
    /// leakage histograms, exactly as the single-link audits do.
    pub event: usize,
    /// Virtual send stamp in microseconds (the timing channel input).
    pub sent_at_us: u64,
}

impl FleetFrame {
    /// Prefixes `sealed` with the sensor-id header.
    pub fn encode(sensor_id: u64, sealed: &[u8], event: usize, sent_at_us: u64) -> FleetFrame {
        let mut wire = Vec::with_capacity(HEADER_LEN + sealed.len());
        wire.extend_from_slice(&sensor_id.to_le_bytes());
        wire.extend_from_slice(sealed);
        FleetFrame {
            wire,
            event,
            sent_at_us,
        }
    }

    /// The addressed sensor id, if the datagram is long enough to have
    /// one.
    pub fn sensor_id(&self) -> Option<u64> {
        sensor_id_of(&self.wire)
    }
}

/// Reads the sensor-id header off raw datagram bytes.
pub fn sensor_id_of(wire: &[u8]) -> Option<u64> {
    let header: [u8; HEADER_LEN] = wire.get(..HEADER_LEN)?.try_into().ok()?;
    Some(u64::from_le_bytes(header))
}

/// Why a datagram's header was rejected before any session work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Shorter than the addressing header itself.
    Truncated {
        /// Bytes actually received.
        len: usize,
    },
    /// Longer than the configured datagram ceiling — dropped before the
    /// cipher sees it so oversized garbage can't buy CPU time.
    Oversized {
        /// Bytes actually received.
        len: usize,
        /// The configured ceiling.
        max: usize,
    },
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated { len } => {
                write!(
                    f,
                    "datagram of {len} bytes is shorter than the {HEADER_LEN}-byte header"
                )
            }
            HeaderError::Oversized { len, max } => {
                write!(f, "datagram of {len} bytes exceeds the {max}-byte ceiling")
            }
        }
    }
}

impl std::error::Error for HeaderError {}

/// Every way the gateway rejects a datagram. One variant per pipeline
/// stage, so fuzzing can assert that each malformed input maps to a
/// structured error — never a panic — and the counters account for
/// every arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayError {
    /// The datagram failed header validation.
    Header(HeaderError),
    /// The addressed sensor has no provisioned session.
    UnknownSensor {
        /// The id the header claimed.
        sensor_id: u64,
    },
    /// A session was configured with a cohort index the gateway does
    /// not have (provisioning rejects this; the variant keeps the
    /// lookup panic-free regardless).
    UnknownCohort {
        /// The out-of-range cohort index.
        cohort: usize,
    },
    /// The session's receiver rejected the frame (authentication,
    /// replay, far-future, or missing sequence).
    Receive(ReceiveError),
    /// The frame authenticated but its payload did not decode.
    Decode(DecodeError),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::Header(e) => write!(f, "header rejected: {e}"),
            GatewayError::UnknownSensor { sensor_id } => {
                write!(f, "no session provisioned for sensor {sensor_id}")
            }
            GatewayError::UnknownCohort { cohort } => {
                write!(f, "session references unknown cohort {cohort}")
            }
            GatewayError::Receive(e) => write!(f, "receiver rejected frame: {e}"),
            GatewayError::Decode(e) => write!(f, "payload failed to decode: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GatewayError::Header(e) => Some(e),
            GatewayError::Receive(e) => Some(e),
            GatewayError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let frame = FleetFrame::encode(0xdead_beef_cafe_f00d, &[1, 2, 3], 2, 777);
        assert_eq!(frame.wire.len(), HEADER_LEN + 3);
        assert_eq!(frame.sensor_id(), Some(0xdead_beef_cafe_f00d));
        assert_eq!(&frame.wire[HEADER_LEN..], &[1, 2, 3]);
    }

    #[test]
    fn short_datagrams_have_no_sensor_id() {
        assert_eq!(sensor_id_of(&[]), None);
        assert_eq!(sensor_id_of(&[0u8; HEADER_LEN - 1]), None);
        assert_eq!(sensor_id_of(&[0u8; HEADER_LEN]), Some(0));
    }

    #[test]
    fn errors_render_without_panicking() {
        let errors = [
            GatewayError::Header(HeaderError::Truncated { len: 3 }),
            GatewayError::Header(HeaderError::Oversized {
                len: 9000,
                max: 4096,
            }),
            GatewayError::UnknownSensor { sensor_id: 42 },
            GatewayError::UnknownCohort { cohort: 7 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
