//! Simulated non-volatile memory and the write-ahead sequence reservation
//! journal that lets a sensor survive power loss without ever reusing a
//! nonce.
//!
//! The threat: every cipher in the workspace derives its nonce/IV
//! deterministically from the frame's sequence number, so a sensor that
//! keeps its counter only in RAM restarts at 0 after a brownout and reseals
//! under already-used (key, nonce) pairs — a catastrophic confidentiality
//! break. Persisting the counter once per frame would fix that but costs
//! one flash write per message on a device whose whole point is an energy
//! budget.
//!
//! The scheme here is the standard write-ahead reservation: before handing
//! out any sequence number of a new block of `K`, the journal persists the
//! block's *end* mark. RAM then serves `K` numbers for free; after a reboot
//! the sensor resumes past everything it may have reserved, conservatively
//! treating every reserved number as consumed. Sequence numbers are
//! plentiful and nonces must be unique, so skipping forward is always the
//! safe direction.
//!
//! [`NvmStore`] models the flash itself, with two deterministic fault modes
//! drawn from the workspace's [`DetRng`] (mirroring `FaultChannel`: a
//! store's misbehavior is a pure function of its seed):
//!
//! - a **failed** write is detected immediately — the read-back verify does
//!   not match — and the journal retries a bounded number of times; every
//!   attempt is billable energy.
//! - a **torn** write is one interrupted by the power loss itself. It can
//!   therefore only ever be the *last* record written before a reboot: if
//!   the device lived long enough to write again, the earlier record
//!   demonstrably completed. At recovery a torn record fails its checksum
//!   and its mark is unreadable, so recovery must treat it as "block fully
//!   consumed" and skip one full block past it.

use age_telemetry::DetRng;

/// Deterministic fault rates for simulated NVM writes, drawn from a
/// [`DetRng`] stream seeded by `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvmFaultPlan {
    /// Probability that a write fails its read-back verify (detected at
    /// write time; the journal retries).
    pub fail_rate: f64,
    /// Probability that a write is torn — it will fail its checksum at
    /// recovery if power is lost before the next write completes.
    pub torn_rate: f64,
    /// Seed of the fault stream.
    pub seed: u64,
}

impl NvmFaultPlan {
    /// Perfectly reliable NVM.
    pub const NONE: NvmFaultPlan = NvmFaultPlan {
        fail_rate: 0.0,
        torn_rate: 0.0,
        seed: 0,
    };

    /// Whether this plan can never inject a fault.
    pub fn is_noop(&self) -> bool {
        self.fail_rate <= 0.0 && self.torn_rate <= 0.0
    }
}

/// One journal slot as recovery would read it back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Never written (erased flash).
    Blank,
    /// A record whose checksum verifies, carrying a reservation end mark.
    Valid(u64),
    /// A record that fails its checksum — a write interrupted by power
    /// loss. The mark it tried to carry is unreadable.
    Torn,
}

/// Write/fault counters for one [`NvmStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NvmStats {
    /// Write attempts, failed ones included. Each attempt programs the
    /// flash and is billable energy.
    pub writes_attempted: usize,
    /// Attempts that failed their read-back verify (detected immediately).
    pub writes_failed: usize,
    /// Records torn by a power loss (discovered only at recovery).
    pub writes_torn: usize,
}

/// What [`NvmStore::recover`] read back from the slot ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveredState {
    /// The highest reservation end mark among records that checksum.
    pub highest_valid_mark: Option<u64>,
    /// Torn records in the ring. Each one's mark is unreadable, so recovery
    /// must presume each reserved (and consumed) one full block.
    pub torn_records: usize,
    /// The highest key epoch among records that checksum. A torn epoch
    /// record leaves this untouched: the rotation never committed, so the
    /// sensor resumes on the previous epoch and re-rotates from its
    /// watermark (safe, because sequence numbers are global across epochs
    /// and never reused).
    pub highest_valid_epoch: Option<u64>,
}

/// Tag bit distinguishing an epoch-rotation record from a sequence
/// reservation mark in the shared slot ring.
const EPOCH_TAG: u64 = 1 << 63;
/// Bits of the packed record carrying the sequence reservation end.
const EPOCH_SEQ_BITS: u32 = 40;
const EPOCH_SEQ_MASK: u64 = (1 << EPOCH_SEQ_BITS) - 1;
/// Bits carrying the epoch number (the remaining 23 below the tag).
const EPOCH_MASK: u64 = (1 << 23) - 1;

/// Packs an epoch-rotation record. The record carries *both* the epoch and
/// the journal's current reservation end: rotation records walk the same
/// ring as sequence marks, so each must re-anchor the sequence high-water
/// mark — otherwise a burst of rotations could evict every reservation
/// record and recovery would resume at 0, the exact nonce-reuse disaster
/// the journal exists to prevent. 40 bits of sequence and 23 bits of epoch
/// are far beyond anything a deployment reaches before re-provisioning.
fn pack_epoch_record(epoch: u64, reserved_end: u64) -> u64 {
    debug_assert!(epoch <= EPOCH_MASK, "epoch {epoch} overflows the record");
    debug_assert!(
        reserved_end <= EPOCH_SEQ_MASK,
        "reservation end {reserved_end} overflows the record"
    );
    EPOCH_TAG | (epoch.min(EPOCH_MASK) << EPOCH_SEQ_BITS) | (reserved_end & EPOCH_SEQ_MASK)
}

/// A small simulated flash region organised as a ring of journal slots.
///
/// Writes walk the ring so recovery still sees older records when the
/// newest one is torn. A write that draws "torn" is held *pending*: it
/// materialises as a torn record only if power is lost before the next
/// write begins — a later write proves the earlier one completed, so the
/// pending tear is promoted to a valid record.
pub struct NvmStore {
    slots: Vec<Slot>,
    cursor: usize,
    /// Slot index and mark of the most recent write, which would read back
    /// torn if power were lost right now.
    pending_tear: Option<usize>,
    plan: NvmFaultPlan,
    rng: DetRng,
    stats: NvmStats,
}

impl NvmStore {
    /// Slots in the ring. Recovery only needs the highest valid mark plus
    /// any torn records, so a handful suffices; the size also bounds how
    /// many stale torn records can linger (see [`SequenceJournal`]).
    pub const DEFAULT_SLOTS: usize = 8;

    /// A store misbehaving per `plan`, seeded from `plan.seed`.
    pub fn new(plan: NvmFaultPlan) -> Self {
        Self::with_seed(plan, plan.seed)
    }

    /// Like [`NvmStore::new`] but with an explicit fault-stream seed
    /// (overriding `plan.seed`), so sweeps can derive per-cell streams from
    /// one shared plan.
    pub fn with_seed(plan: NvmFaultPlan, seed: u64) -> Self {
        NvmStore {
            slots: vec![Slot::Blank; Self::DEFAULT_SLOTS],
            cursor: 0,
            pending_tear: None,
            plan,
            rng: DetRng::seed_from_u64(seed),
            stats: NvmStats::default(),
        }
    }

    /// Perfectly reliable NVM.
    pub fn reliable() -> Self {
        Self::new(NvmFaultPlan::NONE)
    }

    /// Write/fault counters so far.
    pub fn stats(&self) -> &NvmStats {
        &self.stats
    }

    /// Attempts to program `mark` into the next ring slot. Returns `true`
    /// if the write passed its read-back verify; a torn-pending write also
    /// returns `true` — tears are invisible until a power loss exposes
    /// them.
    fn write_mark(&mut self, mark: u64) -> bool {
        self.stats.writes_attempted += 1;
        // Fixed draw order (fail, then torn) keeps the fault stream stable
        // regardless of outcomes.
        let failed = self.rng.gen_bool(self.plan.fail_rate);
        let torn = self.rng.gen_bool(self.plan.torn_rate);
        if failed {
            self.stats.writes_failed += 1;
            return false;
        }
        // Reaching the next write proves the previous one completed.
        self.pending_tear = None;
        self.slots[self.cursor] = Slot::Valid(mark);
        if torn {
            self.pending_tear = Some(self.cursor);
        }
        self.cursor = (self.cursor + 1) % self.slots.len();
        true
    }

    /// The power loss itself: a pending tear, if any, materialises as a
    /// torn record.
    fn power_loss(&mut self) {
        if let Some(index) = self.pending_tear.take() {
            self.slots[index] = Slot::Torn;
            self.stats.writes_torn += 1;
        }
    }

    /// Reads the whole ring back, as recovery after a reboot would.
    pub fn recover(&self) -> RecoveredState {
        let mut state = RecoveredState::default();
        for slot in &self.slots {
            match slot {
                Slot::Blank => {}
                Slot::Torn => state.torn_records += 1,
                Slot::Valid(record) if record & EPOCH_TAG != 0 => {
                    let epoch = (record >> EPOCH_SEQ_BITS) & EPOCH_MASK;
                    let mark = record & EPOCH_SEQ_MASK;
                    state.highest_valid_epoch =
                        Some(state.highest_valid_epoch.map_or(epoch, |e| e.max(epoch)));
                    state.highest_valid_mark =
                        Some(state.highest_valid_mark.map_or(mark, |m| m.max(mark)));
                }
                Slot::Valid(mark) => {
                    state.highest_valid_mark =
                        Some(state.highest_valid_mark.map_or(*mark, |m| m.max(*mark)));
                }
            }
        }
        state
    }
}

/// The journal could not hand out a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// Every write attempt for a reservation record failed its verify. No
    /// sequence number may be handed out — sealing under an unreserved
    /// number is exactly the nonce-reuse hazard the journal prevents.
    NvmWriteFailed {
        /// Write attempts consumed (all billable).
        attempts: u32,
    },
    /// The 64-bit sequence space is exhausted (unreachable in practice; it
    /// exists so the journal can refuse instead of wrapping a nonce).
    SequenceSpaceExhausted,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::NvmWriteFailed { attempts } => write!(
                f,
                "NVM rejected the reservation record {attempts} times; refusing to seal"
            ),
            JournalError::SequenceSpaceExhausted => {
                f.write_str("64-bit sequence space exhausted; refusing to wrap a nonce")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Counters for one [`SequenceJournal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Journal records successfully persisted: one reservation per `K`
    /// frames in steady state, plus one checkpoint per recovery.
    pub flushes: usize,
    /// Reboots recovered from.
    pub reboots: usize,
    /// Sequence numbers retired unused by conservative recovery.
    pub sequences_skipped: u64,
    /// Epoch-rotation records successfully persisted (a subset of
    /// `flushes`).
    pub epoch_records: usize,
}

/// Write-ahead sequence number reservation over an [`NvmStore`].
///
/// Invariants:
///
/// 1. **Write-ahead**: a record reserving `[end − K, end)` is persisted
///    *before* any number in that range is handed out.
/// 2. **Conservative recovery**: after a reboot the journal resumes at the
///    highest valid mark — every reserved number is presumed consumed —
///    plus one full block per torn record still in the ring, since a torn
///    record's own mark is unreadable.
/// 3. **Recovery checkpoint**: recovery immediately persists the resumed
///    position, so the valid high-water mark re-anchors above any stale
///    torn records and the skip does not compound across reboots.
///
/// Together these guarantee no sequence number is ever handed out twice
/// across any pattern of reboots, torn writes, and failed writes: a torn
/// record can only be the newest record (power loss *is* what tears it), so
/// everything ever reserved lies at or below `highest_valid_mark +
/// torn_records · K`, which is exactly where recovery resumes. The cost is
/// bounded waste — typically at most `2K` numbers retired per reboot, and
/// never more than `NvmStore::DEFAULT_SLOTS · K`, which must stay within
/// the receiver's far-future guard (`Receiver::MAX_SKIP`) for recovered
/// traffic to be accepted. The defaults give 128 ≪ 1024.
pub struct SequenceJournal {
    nvm: NvmStore,
    block: u64,
    /// Exclusive end of the persisted reservation. RAM may hand out numbers
    /// strictly below this.
    reserved_end: u64,
    /// Next number to hand out (RAM only — lost on reboot).
    next: u64,
    /// Highest key epoch committed to NVM (rebuilt from the store on
    /// reboot, so a torn rotation record rolls back to the prior epoch).
    epoch: u64,
    stats: JournalStats,
}

impl SequenceJournal {
    /// Default reservation block size `K`: one NVM write per 16 frames,
    /// and a typical post-reboot jump of at most 32 — far inside the
    /// receiver's 1024-frame far-future guard.
    pub const DEFAULT_BLOCK: u64 = 16;

    /// Write attempts per journal record before giving up.
    pub const WRITE_ATTEMPTS: u32 = 4;

    /// A journal over `nvm` reserving `block` numbers per record (`block`
    /// is clamped to at least 1). If the store already holds records — a
    /// sensor powering up mid-deployment — the journal resumes from them.
    pub fn new(nvm: NvmStore, block: u64) -> Self {
        let block = block.max(1);
        let recovered = nvm.recover();
        let next = Self::resume_point(&recovered, block);
        SequenceJournal {
            nvm,
            block,
            reserved_end: next,
            next,
            epoch: recovered.highest_valid_epoch.unwrap_or(0),
            stats: JournalStats::default(),
        }
    }

    /// A journal with the default block size over reliable NVM.
    pub fn reliable() -> Self {
        Self::new(NvmStore::reliable(), Self::DEFAULT_BLOCK)
    }

    /// The reservation block size `K`.
    pub fn block(&self) -> u64 {
        self.block
    }

    /// The sequence number the next [`reserve_next`](Self::reserve_next)
    /// will return (assuming its NVM write, if one is due, succeeds).
    pub fn next(&self) -> u64 {
        self.next
    }

    /// Exclusive end of the persisted reservation.
    pub fn reserved_end(&self) -> u64 {
        self.reserved_end
    }

    /// The highest key epoch committed to NVM.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Write-ahead commit of a key rotation: the epoch record is persisted
    /// *before* the caller advances its ratchet or seals anything under
    /// the new key, exactly like a sequence reservation. On failure the
    /// rotation simply has not happened — the caller stays on the old
    /// epoch, which is always safe because sequence numbers are global
    /// across epochs (no `(key, nonce)` pair ever repeats either way).
    ///
    /// A target at or below the committed epoch is a no-op; epochs only
    /// move forward.
    ///
    /// # Errors
    ///
    /// [`JournalError::NvmWriteFailed`] when every write attempt failed
    /// its verify; the committed epoch is unchanged.
    pub fn record_epoch(&mut self, epoch: u64) -> Result<(), JournalError> {
        if epoch <= self.epoch {
            return Ok(());
        }
        self.persist_mark(pack_epoch_record(epoch, self.reserved_end))?;
        self.stats.epoch_records += 1;
        self.epoch = epoch;
        Ok(())
    }

    /// Journal counters so far.
    pub fn stats(&self) -> &JournalStats {
        &self.stats
    }

    /// The underlying store's counters (write *attempts* are the
    /// energy-billable quantity).
    pub fn nvm_stats(&self) -> &NvmStats {
        self.nvm.stats()
    }

    /// Reserves and returns the next sequence number, persisting a new
    /// block record first whenever the RAM counter has exhausted the
    /// current reservation (invariant 1).
    ///
    /// # Errors
    ///
    /// [`JournalError::NvmWriteFailed`] when every write attempt failed its
    /// verify; no number is handed out.
    pub fn reserve_next(&mut self) -> Result<u64, JournalError> {
        if self.next == u64::MAX {
            return Err(JournalError::SequenceSpaceExhausted);
        }
        if self.next >= self.reserved_end {
            let new_end = self.reserved_end.saturating_add(self.block);
            self.persist_record(new_end)?;
            self.reserved_end = new_end;
        }
        let sequence = self.next;
        self.next += 1;
        Ok(sequence)
    }

    /// Simulates a power loss: RAM state is discarded and rebuilt from the
    /// store (invariant 2), then the resumed position is checkpointed
    /// (invariant 3). Returns how many sequence numbers the recovery
    /// retired unused.
    pub fn reboot(&mut self) -> u64 {
        self.nvm.power_loss();
        let recovered = self.nvm.recover();
        let resumed = Self::resume_point(&recovered, self.block);
        // Never resume below the RAM position: with write-ahead reservation
        // recovery always lands at or past it, but the defensive max keeps
        // "never reuse" independent of the store's behavior.
        let resumed = resumed.max(self.next);
        let skipped = resumed - self.next;
        self.next = resumed;
        self.reserved_end = resumed;
        // The epoch is *not* maxed against RAM: a torn rotation record
        // means the rotation never committed, and a real reboot would lose
        // the RAM view of it. Rolling back is safe — sequences are global,
        // so resealing under the previous epoch key cannot reuse a nonce —
        // and the caller re-derives its ratchet at the recovered epoch.
        self.epoch = recovered.highest_valid_epoch.unwrap_or(0);
        self.stats.reboots += 1;
        self.stats.sequences_skipped += skipped;
        // Checkpoint; a failure here is survivable (recovery stays sound,
        // the next reservation will retry the NVM anyway).
        let _ = self.persist_record(resumed);
        skipped
    }

    /// Writes one reservation record carrying `mark`. Once the journal has
    /// rotated past epoch 0, every reservation record is written in the
    /// packed epoch format: rotation records share the slot ring, so plain
    /// marks could otherwise evict the epoch from the ring entirely and a
    /// much later reboot would recover epoch 0.
    fn persist_record(&mut self, mark: u64) -> Result<(), JournalError> {
        if self.epoch > 0 {
            self.persist_mark(pack_epoch_record(self.epoch, mark))
        } else {
            self.persist_mark(mark)
        }
    }

    /// Writes one journal record, retrying failed attempts up to
    /// [`WRITE_ATTEMPTS`](Self::WRITE_ATTEMPTS).
    fn persist_mark(&mut self, mark: u64) -> Result<(), JournalError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            if self.nvm.write_mark(mark) {
                self.stats.flushes += 1;
                return Ok(());
            }
            if attempts >= Self::WRITE_ATTEMPTS {
                return Err(JournalError::NvmWriteFailed { attempts });
            }
        }
    }

    /// The safe resume point for a recovered state: the highest valid mark
    /// (all its numbers presumed consumed), plus a full block per torn
    /// record whose own mark is unreadable.
    fn resume_point(recovered: &RecoveredState, block: u64) -> u64 {
        recovered
            .highest_valid_mark
            .unwrap_or(0)
            .saturating_add(block.saturating_mul(recovered.torn_records as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserves_in_blocks_with_one_write_per_block() {
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 8);
        for i in 0..24u64 {
            assert_eq!(journal.reserve_next().unwrap(), i);
        }
        assert_eq!(journal.stats().flushes, 3, "24 frames / K=8 = 3 writes");
        assert_eq!(journal.nvm_stats().writes_attempted, 3);
        assert_eq!(journal.reserved_end(), 24);
    }

    #[test]
    fn reboot_resumes_at_the_reserved_high_water_mark() {
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 8);
        for _ in 0..11 {
            journal.reserve_next().unwrap();
        }
        // 11 used out of [0, 16) reserved: recovery retires the other 5.
        let skipped = journal.reboot();
        assert_eq!(skipped, 5);
        assert_eq!(journal.next(), 16);
        assert_eq!(journal.reserve_next().unwrap(), 16);
        assert_eq!(journal.stats().sequences_skipped, 5);
        assert_eq!(journal.stats().reboots, 1);
    }

    #[test]
    fn reboot_at_a_block_boundary_skips_nothing() {
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 4);
        for _ in 0..8 {
            journal.reserve_next().unwrap();
        }
        assert_eq!(journal.reboot(), 0, "reservation exactly consumed");
        assert_eq!(journal.next(), 8);
    }

    #[test]
    fn torn_record_counts_as_a_fully_consumed_block() {
        // Every write tears if power is lost before the next one.
        let plan = NvmFaultPlan {
            fail_rate: 0.0,
            torn_rate: 1.0,
            seed: 7,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 8);
        assert_eq!(journal.reserve_next().unwrap(), 0);
        // Recovery sees no valid mark, one torn record: resume at 0 + K.
        let skipped = journal.reboot();
        assert_eq!(skipped, 7, "1 used, block of 8 presumed consumed");
        assert_eq!(journal.next(), 8);
    }

    #[test]
    fn a_completed_write_is_proven_untorn_by_its_successor() {
        let plan = NvmFaultPlan {
            fail_rate: 0.0,
            torn_rate: 1.0,
            seed: 7,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 4);
        // Two reservation records: the first demonstrably completed
        // (the device lived to write the second), so only the second can
        // tear. Recovery resumes at 4 (valid) + 4 (one torn block) = 8.
        for i in 0..5u64 {
            assert_eq!(journal.reserve_next().unwrap(), i);
        }
        journal.reboot();
        assert_eq!(journal.next(), 8);
        assert_eq!(journal.nvm_stats().writes_torn, 1);
    }

    #[test]
    fn failed_writes_are_retried_and_billed() {
        // Fail roughly half the writes; retries must absorb them.
        let plan = NvmFaultPlan {
            fail_rate: 0.5,
            torn_rate: 0.0,
            seed: 3,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 4);
        let mut handed = 0u64;
        for _ in 0..64 {
            if let Ok(seq) = journal.reserve_next() {
                assert_eq!(seq, handed, "sequences stay gapless while alive");
                handed += 1;
            }
        }
        let stats = *journal.nvm_stats();
        assert!(
            stats.writes_failed > 0,
            "the plan must actually fail writes"
        );
        assert!(
            stats.writes_attempted > journal.stats().flushes,
            "every retry is a billable attempt"
        );
    }

    #[test]
    fn exhausted_write_attempts_refuse_to_hand_out_a_sequence() {
        let plan = NvmFaultPlan {
            fail_rate: 1.0,
            torn_rate: 0.0,
            seed: 1,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 4);
        let err = journal.reserve_next().unwrap_err();
        assert_eq!(
            err,
            JournalError::NvmWriteFailed {
                attempts: SequenceJournal::WRITE_ATTEMPTS
            }
        );
        assert!(err.to_string().contains("refusing to seal"));
        assert_eq!(journal.next(), 0, "nothing was handed out");
    }

    #[test]
    fn no_sequence_is_ever_reused_across_random_reboots() {
        // Property-style soak: random reboot points, torn and failed writes,
        // all deterministic. Every number handed out must be unique.
        let plan = NvmFaultPlan {
            fail_rate: 0.2,
            torn_rate: 0.3,
            seed: 42,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 8);
        let mut driver = DetRng::seed_from_u64(99);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..2000 {
            if driver.gen_bool(0.05) {
                journal.reboot();
            }
            if let Ok(seq) = journal.reserve_next() {
                assert!(seen.insert(seq), "sequence {seq} handed out twice");
            }
        }
        assert!(seen.len() > 1000, "the soak must make real progress");
    }

    #[test]
    fn journal_resumes_from_a_pre_used_store() {
        let mut store = NvmStore::reliable();
        assert!(store.write_mark(40));
        let journal = SequenceJournal::new(store, 8);
        assert_eq!(journal.next(), 40);
    }

    #[test]
    fn recovery_reads_the_highest_mark_across_the_ring() {
        let mut store = NvmStore::reliable();
        // More writes than slots: the ring wraps, marks stay monotone.
        for mark in (8..=96).step_by(8) {
            assert!(store.write_mark(mark));
        }
        let recovered = store.recover();
        assert_eq!(recovered.highest_valid_mark, Some(96));
        assert_eq!(recovered.torn_records, 0);
    }

    #[test]
    fn post_reboot_jump_stays_within_the_far_future_guard() {
        let plan = NvmFaultPlan {
            fail_rate: 0.1,
            torn_rate: 0.5,
            seed: 11,
        };
        let block = 8;
        let bound = block * (NvmStore::DEFAULT_SLOTS as u64 + 1);
        let mut journal = SequenceJournal::new(NvmStore::new(plan), block);
        let mut driver = DetRng::seed_from_u64(5);
        let mut last = None;
        for _ in 0..500 {
            if driver.gen_bool(0.1) {
                let skipped = journal.reboot();
                assert!(
                    skipped <= bound,
                    "recovery jump {skipped} exceeds the ring bound {bound}"
                );
            }
            if let Ok(seq) = journal.reserve_next() {
                if let Some(prev) = last {
                    assert!(seq > prev);
                }
                last = Some(seq);
            }
        }
    }

    #[test]
    fn epoch_record_commits_and_survives_reboot() {
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 8);
        for _ in 0..5 {
            journal.reserve_next().unwrap();
        }
        journal.record_epoch(1).unwrap();
        assert_eq!(journal.epoch(), 1);
        assert_eq!(journal.stats().epoch_records, 1);
        journal.reboot();
        assert_eq!(journal.epoch(), 1, "committed rotation survives power loss");
        assert_eq!(journal.next(), 8, "sequence recovery is unaffected");
    }

    #[test]
    fn stale_epoch_targets_are_no_ops() {
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 8);
        journal.record_epoch(3).unwrap();
        let flushes = journal.stats().flushes;
        journal.record_epoch(3).unwrap();
        journal.record_epoch(1).unwrap();
        assert_eq!(journal.epoch(), 3);
        assert_eq!(journal.stats().flushes, flushes, "no redundant NVM writes");
    }

    #[test]
    fn torn_rotation_record_rolls_back_to_the_previous_epoch() {
        // The acceptance scenario: power dies *inside* the rotation
        // journal write. The record tears, so recovery lands on the old
        // epoch — and the sequence skip guarantees nothing sealed after
        // recovery can collide with anything sealed before it.
        let plan = NvmFaultPlan {
            fail_rate: 0.0,
            torn_rate: 1.0,
            seed: 13,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 8);
        for _ in 0..3 {
            journal.reserve_next().unwrap();
        }
        journal.record_epoch(1).unwrap();
        assert_eq!(journal.epoch(), 1, "RAM sees the rotation pre-brownout");
        let before = journal.next();
        journal.reboot();
        assert_eq!(journal.epoch(), 0, "torn rotation never committed");
        assert!(
            journal.next() >= before,
            "recovery still resumes past every handed-out sequence"
        );
    }

    #[test]
    fn a_rotation_burst_cannot_evict_the_sequence_mark() {
        // More rotation records than ring slots between two reservations:
        // each rotation record re-anchors the reservation end, so recovery
        // must still resume past it instead of falling back to 0.
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 8);
        for _ in 0..9 {
            journal.reserve_next().unwrap();
        }
        let reserved = journal.reserved_end();
        for epoch in 1..=(NvmStore::DEFAULT_SLOTS as u64 + 2) {
            journal.record_epoch(epoch).unwrap();
        }
        journal.reboot();
        assert!(
            journal.next() >= reserved,
            "resumed at {} below the reservation end {reserved}",
            journal.next()
        );
        assert_eq!(journal.epoch(), NvmStore::DEFAULT_SLOTS as u64 + 2);
    }

    #[test]
    fn the_epoch_survives_ring_eviction_by_reservations() {
        // After a rotation, enough reservation traffic wraps the ring and
        // would evict a one-off epoch record; packed reservation records
        // keep the epoch readable indefinitely.
        let mut journal = SequenceJournal::new(NvmStore::reliable(), 4);
        journal.record_epoch(3).unwrap();
        for _ in 0..(4 * (NvmStore::DEFAULT_SLOTS as u64 + 4)) {
            journal.reserve_next().unwrap();
        }
        journal.reboot();
        assert_eq!(journal.epoch(), 3);
    }

    #[test]
    fn no_sequence_reuse_across_reboots_with_rotations_interleaved() {
        let plan = NvmFaultPlan {
            fail_rate: 0.2,
            torn_rate: 0.3,
            seed: 17,
        };
        let mut journal = SequenceJournal::new(NvmStore::new(plan), 8);
        let mut driver = DetRng::seed_from_u64(23);
        let mut seen = std::collections::BTreeSet::new();
        let mut epoch = 0u64;
        for _ in 0..2000 {
            if driver.gen_bool(0.05) {
                journal.reboot();
                epoch = journal.epoch();
            }
            if driver.gen_bool(0.03) {
                epoch += 1;
                let _ = journal.record_epoch(epoch);
                epoch = journal.epoch();
            }
            if let Ok(seq) = journal.reserve_next() {
                assert!(seen.insert(seq), "sequence {seq} handed out twice");
            }
        }
        assert!(seen.len() > 1000, "the soak must make real progress");
    }
}
