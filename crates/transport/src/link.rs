//! The framed sensor→server session: sealing, receive-side checks, and the
//! retry/backoff loop.

use age_crypto::{Cipher, EpochRatchet, OpenError};

use crate::fault::{ChannelStats, FaultChannel, FaultPlan};
use crate::persist::{JournalStats, SequenceJournal};
use crate::replay::{ReplayError, ReplayWindow};

/// Why the receiver rejected a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveError {
    /// Decryption/authentication failed (for AEAD ciphers this catches any
    /// bit flipped anywhere in the frame).
    Cipher(OpenError),
    /// The replay window rejected the frame's sequence number.
    Replay(ReplayError),
    /// The frame is too short to carry a sequence number.
    MissingSequence,
    /// The sequence number jumps implausibly far ahead — on unauthenticated
    /// ciphers a corrupted nonce decodes as a huge sequence, and accepting
    /// it would slide the replay window past all legitimate traffic.
    FarFuture {
        /// The claimed sequence number.
        sequence: u64,
        /// The highest sequence number the receiver would have accepted.
        limit: u64,
    },
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiveError::Cipher(e) => write!(f, "frame failed to open: {e}"),
            ReceiveError::Replay(e) => write!(f, "replay window rejected frame: {e}"),
            ReceiveError::MissingSequence => f.write_str("frame too short for a sequence number"),
            ReceiveError::FarFuture { sequence, limit } => {
                write!(f, "sequence {sequence} is beyond the accept limit {limit}")
            }
        }
    }
}

impl std::error::Error for ReceiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReceiveError::Cipher(e) => Some(e),
            ReceiveError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

/// How far ahead of the highest accepted sequence number a frame may claim
/// to be before the receiver rejects it as [`ReceiveError::FarFuture`].
///
/// This is the single shared definition: [`Receiver::MAX_SKIP`] re-exports
/// it and the gateway's session layer imports it, so the transport guard
/// and the fleet guard cannot drift apart.
pub const MAX_SKIP: u64 = 1024;

/// Builds a cipher from a 32-byte epoch key. Rekey-capable sensors and
/// receivers re-key by deriving the next epoch key from their
/// [`EpochRatchet`] and swapping in a fresh cipher from this factory. A
/// plain `fn` pointer keeps the parts `Send` and trivially copyable.
pub type CipherFactory = fn([u8; 32]) -> Box<dyn Cipher>;

/// The workspace's default epoch-cipher factory (ChaCha20-Poly1305, the
/// paper's AEAD).
pub fn chacha20poly1305_factory(key: [u8; 32]) -> Box<dyn Cipher> {
    Box::new(age_crypto::ChaCha20Poly1305::new(key))
}

/// The watermark rotation schedule: which key epoch covers `sequence`,
/// given a rotation `interval` and a per-sensor stagger `phase`
/// (`phase % interval`; epoch boundaries sit at `phase`,
/// `phase + interval`, `phase + 2·interval`, …).
///
/// Sequence numbers are **global across epochs** — they never reset at a
/// boundary — so this schedule is a pure function of the sequence number
/// alone. That is the load-bearing property of the whole design: the epoch
/// is derived state on both ends of the link, it never appears on the
/// wire, and after any brownout both sides recompute it consistently from
/// the recovered sequence position. An `interval` of 0 disables watermark
/// rotation (epoch 0 forever, or explicit [`Sensor::rotate`] commands
/// only).
pub fn epoch_of(sequence: u64, interval: u64, phase: u64) -> u64 {
    if interval == 0 {
        return 0;
    }
    let phase = phase % interval;
    if sequence < phase {
        0
    } else {
        (sequence - phase) / interval + u64::from(phase > 0)
    }
}

/// How many epochs ahead of its current one a receiver should be willing
/// to probe: a post-brownout sensor may legitimately skip up to `max_skip`
/// sequence numbers, which at watermark `interval` crosses up to
/// `max_skip / interval` epoch boundaries at once (plus slack for an
/// explicit rotation riding the same gap).
pub fn epoch_skip_budget(max_skip: u64, interval: u64) -> u64 {
    match max_skip.checked_div(interval) {
        None => Receiver::DEFAULT_EPOCH_SKIP,
        Some(crossings) => crossings.saturating_add(2),
    }
}

/// Rekey state for a [`Sensor`]: the forward-secure chain plus the
/// watermark schedule.
struct SensorRekey {
    /// The provisioning-time root, kept so a simulated reboot can rebuild
    /// the ratchet at the journal-recovered epoch (a real device re-derives
    /// from its provisioning secret the same way; a deployment wanting
    /// sensor-side forward secrecy across *reboots* would persist the chain
    /// value itself instead).
    root: [u8; 32],
    ratchet: EpochRatchet,
    interval: u64,
    phase: u64,
    factory: CipherFactory,
}

/// The sensor half: seals payloads into framed messages with a
/// monotonically increasing per-session sequence number. The nonce/IV is
/// derived deterministically from that number by the cipher, so a frame is
/// `message_len(payload)` bytes — a pure function of the payload length.
///
/// A rekey-capable sensor ([`Sensor::with_rekey`]) additionally carries a
/// key epoch: the sealing key is the ratchet's key for the current epoch,
/// and crossing a watermark boundary (or an explicit [`Sensor::rotate`])
/// advances the ratchet and swaps the cipher. Nothing about the frame
/// changes — same length, same layout — so rotation is invisible on the
/// wire.
pub struct Sensor {
    cipher: Box<dyn Cipher>,
    next_sequence: u64,
    /// Highest sequence number sealed so far this power cycle (RAM only —
    /// cleared by [`Sensor::reboot_at`], exactly like the counter it
    /// guards).
    highest_sealed: Option<u64>,
    /// Current key epoch (0 forever without rekey state).
    epoch: u64,
    rekey: Option<SensorRekey>,
}

impl Sensor {
    /// A sensor starting at sequence number 0.
    pub fn new(cipher: Box<dyn Cipher>) -> Self {
        Sensor {
            cipher,
            next_sequence: 0,
            highest_sealed: None,
            epoch: 0,
            rekey: None,
        }
    }

    /// A rekey-capable sensor: keys come from an [`EpochRatchet`] chained
    /// off `root`, rotated every `interval` sequence numbers at stagger
    /// `phase` (see [`epoch_of`]; `interval` 0 means explicit rotation
    /// only), sealing with ciphers built by `factory`.
    pub fn with_rekey(root: [u8; 32], interval: u64, phase: u64, factory: CipherFactory) -> Self {
        let ratchet = EpochRatchet::new(root);
        let mut sensor = Sensor::new(factory(ratchet.key()));
        sensor.rekey = Some(SensorRekey {
            root,
            ratchet,
            interval,
            phase: if interval == 0 { 0 } else { phase % interval },
            factory,
        });
        sensor
    }

    /// The sequence number the next [`Sensor::seal`] will use.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// The highest sequence number sealed this power cycle, if any.
    pub fn highest_sealed(&self) -> Option<u64> {
        self.highest_sealed
    }

    /// The key epoch the next seal will use (always 0 without rekey
    /// state).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch the watermark schedule demands for `sequence`, when it is
    /// ahead of the current one. `None` when no rotation is due (or the
    /// sensor has no rekey state). Callers that journal their rotations
    /// ([`Link`]) check this *before* sealing and write the epoch record
    /// ahead of [`Sensor::rotate_to`].
    pub fn rotation_due(&self, sequence: u64) -> Option<u64> {
        let rekey = self.rekey.as_ref()?;
        if rekey.interval == 0 {
            return None;
        }
        let target = epoch_of(sequence, rekey.interval, rekey.phase);
        (target > self.epoch).then_some(target)
    }

    /// Advances the ratchet to `epoch` and swaps in the new epoch key.
    /// Targets at or below the current epoch, or calls on a sensor without
    /// rekey state, are no-ops. Returns `true` if a rotation happened.
    pub fn rotate_to(&mut self, epoch: u64) -> bool {
        let Some(rekey) = self.rekey.as_mut() else {
            return false;
        };
        if epoch <= self.epoch {
            return false;
        }
        rekey.ratchet.seek(epoch);
        self.cipher = (rekey.factory)(rekey.ratchet.key());
        self.epoch = epoch;
        #[cfg(feature = "telemetry")]
        age_telemetry::metrics::global::KEY_ROTATIONS.add(1);
        true
    }

    /// Explicit rotation command: advance one epoch regardless of the
    /// watermark. Returns the epoch now in use (unchanged on a sensor
    /// without rekey state).
    pub fn rotate(&mut self) -> u64 {
        self.rotate_to(self.epoch + 1);
        self.epoch
    }

    /// Seals `payload` under the next sequence number.
    pub fn seal(&mut self, payload: &[u8]) -> (u64, Vec<u8>) {
        let mut frame = Vec::new();
        let sequence = self.seal_into(payload, &mut frame);
        (sequence, frame)
    }

    /// Seals `payload` under the next sequence number into `frame`,
    /// reusing its allocation (byte-identical to [`Sensor::seal`]). Returns
    /// the sequence number used. Once `frame` has grown to the session's
    /// fixed frame length, sealing never touches the heap.
    pub fn seal_into(&mut self, payload: &[u8], frame: &mut Vec<u8>) -> u64 {
        let sequence = self.next_sequence;
        // RAM-only watermark rotation: sensors that journal their sequence
        // numbers seal through `seal_as_into` instead, with the owning
        // [`Link`] committing the epoch record write-ahead.
        if let Some(target) = self.rotation_due(sequence) {
            self.rotate_to(target);
        }
        self.next_sequence += 1;
        self.note_sealed(sequence);
        self.cipher.seal_into(sequence, payload, frame);
        sequence
    }

    /// Seals `payload` under an explicit sequence number without touching
    /// the session counter.
    ///
    /// Explicit numbering is for callers that own sequencing themselves and
    /// keep it strictly increasing — the experiment runner numbers frames
    /// by test sequence index, and [`Link`] numbers them from the
    /// reservation journal; both satisfy that contract, which is why the
    /// guard below never fires for them. A sequence at or below the power
    /// cycle's high-water mark would reuse a (key, nonce) pair, so it
    /// trips a debug assertion and is counted by the `NONCE_REUSE_RISKED`
    /// metric (release builds still seal, preserving legacy behavior; the
    /// run-wide nonce auditor is the backstop that fails the run).
    pub fn seal_as(&mut self, sequence: u64, payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        self.seal_as_into(sequence, payload, &mut frame);
        frame
    }

    /// [`Sensor::seal_as`] into a caller-owned frame buffer, with the same
    /// high-water-mark guard and `NONCE_REUSE_RISKED` accounting.
    pub fn seal_as_into(&mut self, sequence: u64, payload: &[u8], frame: &mut Vec<u8>) {
        if let Some(high) = self.highest_sealed {
            if sequence <= high {
                #[cfg(feature = "telemetry")]
                age_telemetry::metrics::global::NONCE_REUSE_RISKED.add(1);
                debug_assert!(
                    sequence > high,
                    "seal_as({sequence}) at or below the session high-water mark {high} \
                     would reuse a (key, nonce) pair"
                );
            }
        }
        self.note_sealed(sequence);
        self.cipher.seal_into(sequence, payload, frame);
    }

    /// Models a power loss: the RAM high-water mark is gone, and the
    /// counter restarts wherever the caller's persistence (or lack of it)
    /// says — [`Link::reboot_sensor`] passes the journal's recovered
    /// position, or 0 when there is no journal.
    pub fn reboot_at(&mut self, next_sequence: u64) {
        self.resume(next_sequence, 0);
    }

    /// Power-loss recovery with an explicit journal-recovered epoch: RAM
    /// state is gone, the counter restarts at `next_sequence`, and the
    /// ratchet is rebuilt from the root at whichever is later of the
    /// journal's committed epoch and the watermark epoch of the resumed
    /// sequence position.
    ///
    /// The target can sit *below* the pre-brownout RAM epoch — a rotation
    /// whose journal record tore never committed, so a real reboot resumes
    /// on the previous key. That is safe precisely because sequence
    /// numbers are global: the resumed counter is past everything ever
    /// sealed, so re-keying "backwards" still never reuses a
    /// `(key, nonce)` pair (and the receiver's epoch skew tolerance
    /// absorbs the transient mismatch).
    pub fn resume(&mut self, next_sequence: u64, journal_epoch: u64) {
        self.next_sequence = next_sequence;
        self.highest_sealed = None;
        if let Some(rekey) = self.rekey.as_mut() {
            let watermark = epoch_of(next_sequence, rekey.interval, rekey.phase);
            let target = journal_epoch.max(watermark);
            rekey.ratchet = EpochRatchet::at_epoch(rekey.root, target);
            self.cipher = (rekey.factory)(rekey.ratchet.key());
            self.epoch = target;
        }
    }

    /// Exact on-air frame length for a payload of `payload_len` bytes.
    pub fn frame_len(&self, payload_len: usize) -> usize {
        self.cipher.message_len(payload_len)
    }

    fn note_sealed(&mut self, sequence: u64) {
        self.highest_sealed = Some(self.highest_sealed.map_or(sequence, |h| h.max(sequence)));
    }
}

/// Per-receiver frame counters.
///
/// The process-global metrics aggregate every receiver in the process; a
/// gateway serving many sensors needs the same accounting *per session* so
/// a fleet report can attribute rejections to the sensor (and shard) they
/// happened on. All fields are plain counts, so [`merge`](Self::merge) is
/// commutative and associative — per-shard rollups fold into identical
/// fleet totals at any shard count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Frames that authenticated and cleared the replay window.
    pub accepted: u64,
    /// Frames whose decryption/authentication failed.
    pub auth_failed: u64,
    /// Frames the replay window rejected (duplicate or stale).
    pub replay_rejected: u64,
    /// Frames rejected by the far-future guard.
    pub far_future: u64,
    /// Frames too short to carry a sequence number.
    pub missing_sequence: u64,
    /// Forward epoch steps taken after a frame opened under a later epoch
    /// key (each step may cross several epochs at once post-brownout).
    pub epoch_advances: u64,
    /// Frames accepted under the *previous* epoch key — stragglers sealed
    /// just before a rotation the receiver has already followed.
    pub epoch_behind: u64,
}

impl ReceiverStats {
    /// Total frames this receiver rejected, for any reason.
    pub fn rejected(&self) -> u64 {
        self.auth_failed + self.replay_rejected + self.far_future + self.missing_sequence
    }

    /// Folds another receiver's counters in (counts add, so merge order
    /// never matters).
    pub fn merge(&mut self, other: &ReceiverStats) {
        self.accepted += other.accepted;
        self.auth_failed += other.auth_failed;
        self.replay_rejected += other.replay_rejected;
        self.far_future += other.far_future;
        self.missing_sequence += other.missing_sequence;
        self.epoch_advances += other.epoch_advances;
        self.epoch_behind += other.epoch_behind;
    }
}

/// Rekey state for a [`Receiver`]: the ratchet at the current epoch plus
/// the skew-tolerance machinery.
struct ReceiverRekey {
    ratchet: EpochRatchet,
    /// Cipher for the previous epoch, kept so stragglers sealed just
    /// before a rotation still open (the deliberate skew-tolerance
    /// trade-off: one old epoch key stays in memory until the next
    /// rotation retires it).
    prev_cipher: Option<Box<dyn Cipher>>,
    /// How many epochs ahead the receiver probes before giving up (see
    /// [`epoch_skip_budget`]).
    skip: u64,
    factory: CipherFactory,
}

/// The server half: opens frames, enforces the replay window, and degrades
/// gracefully — every malformed, forged, replayed, or stale frame becomes a
/// [`ReceiveError`], never a panic.
pub struct Receiver {
    cipher: Box<dyn Cipher>,
    window: ReplayWindow,
    max_skip: u64,
    stats: ReceiverStats,
    /// Current key epoch (0 forever without rekey state).
    epoch: u64,
    /// Epoch the most recently accepted frame actually opened under —
    /// `epoch - 1` for a straggler accepted via the previous-epoch cipher.
    last_epoch: u64,
    rekey: Option<ReceiverRekey>,
}

impl Receiver {
    /// How far ahead of the highest accepted sequence number a frame may
    /// claim to be before it is rejected as [`ReceiveError::FarFuture`].
    /// Re-exports the crate-wide [`MAX_SKIP`](crate::link::MAX_SKIP) so
    /// existing call sites keep compiling.
    pub const MAX_SKIP: u64 = crate::link::MAX_SKIP;

    /// Default epoch probe budget when no watermark interval is known.
    pub const DEFAULT_EPOCH_SKIP: u64 = 4;

    /// A receiver with an empty replay window.
    pub fn new(cipher: Box<dyn Cipher>) -> Self {
        Receiver {
            cipher,
            window: ReplayWindow::new(),
            max_skip: Self::MAX_SKIP,
            stats: ReceiverStats::default(),
            epoch: 0,
            last_epoch: 0,
            rekey: None,
        }
    }

    /// A receiver with a custom far-future guard distance (sessions whose
    /// senders legitimately skip far ahead, or fuzz harnesses probing the
    /// guard, tighten or widen it here).
    pub fn with_max_skip(cipher: Box<dyn Cipher>, max_skip: u64) -> Self {
        let mut receiver = Receiver::new(cipher);
        receiver.max_skip = max_skip;
        receiver
    }

    /// A rekey-capable receiver: keys come from an [`EpochRatchet`]
    /// chained off `root`, and a frame that fails to open under the
    /// current epoch key is retried under the previous epoch's key and up
    /// to `epoch_skip` future epochs' keys (see [`epoch_skip_budget`]) —
    /// so lost rotation frames and post-brownout epoch jumps degrade into
    /// one extra trial decryption instead of a bricked session.
    pub fn with_ratchet(
        root: [u8; 32],
        max_skip: u64,
        epoch_skip: u64,
        factory: CipherFactory,
    ) -> Self {
        let ratchet = EpochRatchet::new(root);
        let mut receiver = Receiver::with_max_skip(factory(ratchet.key()), max_skip);
        receiver.rekey = Some(ReceiverRekey {
            ratchet,
            prev_cipher: None,
            skip: epoch_skip.max(1),
            factory,
        });
        receiver
    }

    /// The replay window's highest accepted sequence number, if any.
    pub fn highest_sequence(&self) -> Option<u64> {
        self.window.highest()
    }

    /// The receiver's current key epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch the most recently accepted frame opened under (equals
    /// [`epoch`](Self::epoch) except for stragglers from the previous
    /// epoch).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// This receiver's accept/reject counters.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Opens one frame: authenticates/decrypts, then runs the sequence
    /// number through the far-future guard and the replay window. Returns
    /// the frame's sequence number and payload.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] for any frame the server must not act on.
    pub fn receive(&mut self, frame: &[u8]) -> Result<(u64, Vec<u8>), ReceiveError> {
        let mut payload = Vec::new();
        let sequence = self.receive_into(frame, &mut payload)?;
        Ok((sequence, payload))
    }

    /// [`Receiver::receive`] into a caller-owned payload buffer, reusing its
    /// allocation; returns the accepted frame's sequence number. On error
    /// `payload`'s contents are unspecified. Once warm, receiving never
    /// touches the heap.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] for any frame the server must not act on.
    pub fn receive_into(
        &mut self,
        frame: &[u8],
        payload: &mut Vec<u8>,
    ) -> Result<u64, ReceiveError> {
        let sequence = match self.cipher.sequence_of(frame) {
            Some(sequence) => sequence,
            None => {
                self.stats.missing_sequence += 1;
                return Err(ReceiveError::MissingSequence);
            }
        };
        let opened_epoch = self.open_any(frame, payload).map_err(|e| {
            self.stats.auth_failed += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_AUTH_FAILED.add(1);
            ReceiveError::Cipher(e)
        })?;
        let limit = self
            .window
            .highest()
            .map_or(self.max_skip, |h| h.saturating_add(self.max_skip));
        if sequence > limit {
            self.stats.far_future += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_FAR_FUTURE.add(1);
            return Err(ReceiveError::FarFuture { sequence, limit });
        }
        self.window.observe(sequence).map_err(|e| {
            self.stats.replay_rejected += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_REPLAY_REJECTED.add(1);
            ReceiveError::Replay(e)
        })?;
        self.stats.accepted += 1;
        self.last_epoch = opened_epoch;
        Ok(sequence)
    }

    /// Opens `frame` under the current epoch key, then — on a
    /// rekey-capable receiver — retries under the previous epoch's key
    /// (straggler sealed just before a rotation) and finally probes up to
    /// `skip` future epochs (the sensor rotated, perhaps several times
    /// across a brownout; a successful forward open commits the receiver
    /// to the new epoch). Returns the epoch the frame opened under.
    ///
    /// The replay window is shared across epochs — sequence numbers are
    /// global — so skew handling needs no window surgery: whatever epoch a
    /// frame opens under, its sequence number still has to clear the same
    /// far-future guard and replay window as always.
    fn open_any(&mut self, frame: &[u8], payload: &mut Vec<u8>) -> Result<u64, OpenError> {
        let err = match self.cipher.open_into(frame, payload) {
            Ok(()) => return Ok(self.epoch),
            Err(err) => err,
        };
        let Some(rekey) = self.rekey.as_mut() else {
            return Err(err);
        };
        // The straggler path first: one cheap trial, no key derivation.
        if let Some(prev) = rekey.prev_cipher.as_ref() {
            if prev.open_into(frame, payload).is_ok() {
                self.stats.epoch_behind += 1;
                return Ok(self.epoch - 1);
            }
        }
        // Forward probes. Deriving a candidate key is a handful of
        // permutations, and this path only runs for frames the current
        // key already rejected — genuine rotations, not steady traffic.
        let mut probe = rekey.ratchet.clone();
        for _ in 0..rekey.skip {
            let key_below = probe.key();
            probe.advance();
            let candidate = (rekey.factory)(probe.key());
            if candidate.open_into(frame, payload).is_ok() {
                rekey.prev_cipher = Some((rekey.factory)(key_below));
                rekey.ratchet = probe;
                self.epoch = rekey.ratchet.epoch();
                self.cipher = candidate;
                self.stats.epoch_advances += 1;
                return Ok(self.epoch);
            }
        }
        Err(err)
    }
}

/// Retry/timeout policy for unacknowledged frames: exponential backoff with
/// a cap, in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total transmissions per message, the first included (≥ 1).
    pub max_attempts: u32,
    /// Wait before the first retransmission.
    pub base_timeout_ms: f64,
    /// Multiplier applied per further retransmission.
    pub backoff_factor: f64,
    /// Upper bound on any single wait.
    pub max_timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_timeout_ms: 50.0,
            backoff_factor: 2.0,
            max_timeout_ms: 800.0,
        }
    }
}

impl RetryPolicy {
    /// Fire-and-forget: a single transmission, no waiting.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_timeout_ms: 0.0,
            backoff_factor: 1.0,
            max_timeout_ms: 0.0,
        }
    }

    /// The wait before retry number `retry` (0-based), capped.
    pub fn timeout_ms(&self, retry: u32) -> f64 {
        (self.base_timeout_ms * self.backoff_factor.powi(retry as i32)).min(self.max_timeout_ms)
    }

    /// Total backoff waited across a delivery that used `attempts`
    /// transmissions: the sum of the capped waits preceding attempts
    /// `2..=attempts`. Reproduces [`Delivery::backoff_ms`] exactly (same
    /// additions in the same order), which lets a virtual clock replay a
    /// delivery's schedule from its attempt count alone.
    pub fn backoff_before_ms(&self, attempts: u32) -> f64 {
        let mut total = 0.0;
        for attempt in 1..attempts {
            total += self.timeout_ms(attempt - 1);
        }
        total
    }
}

/// What happened to one message sent through a [`Link`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The message's sequence number.
    pub sequence: u64,
    /// The sensor epoch the frame was sealed under (0 on a non-rekeying
    /// link).
    pub epoch: u64,
    /// The sealed frame's on-air length (every attempt radiates exactly
    /// this many bytes).
    pub frame_len: usize,
    /// Transmissions used (1 = no retries).
    pub attempts: u32,
    /// `true` if the receiver accepted this message's payload.
    pub delivered: bool,
    /// Every payload the receiver accepted during this send, in arrival
    /// order — usually just this message, but a reordered predecessor can
    /// surface here too.
    pub payloads: Vec<(u64, Vec<u8>)>,
    /// Simulated time spent waiting on retry timeouts.
    pub backoff_ms: f64,
}

/// Deterministic transport counters for one [`Link`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Frames put on the wire, retransmissions included.
    pub frames_sent: usize,
    /// Retransmission attempts.
    pub frames_retried: usize,
    /// Frames the receiver accepted.
    pub frames_delivered: usize,
    /// Frames rejected for failed authentication or malformed framing.
    pub auth_failed: usize,
    /// Frames rejected by the replay window (mostly duplicates of accepted
    /// frames — expected under retransmission).
    pub replay_rejected: usize,
    /// Frames rejected for other reasons (missing/far-future sequence).
    pub rejected_other: usize,
    /// Messages abandoned after exhausting every attempt.
    pub messages_lost: usize,
    /// Payloads that arrived only after their send deadline had passed
    /// (released by a reordering fault during a later send).
    pub late_deliveries: usize,
    /// Sensor power losses recovered from ([`Link::reboot_sensor`]).
    pub sensor_reboots: usize,
    /// Sequence-reservation journal records persisted to NVM (only with
    /// [`Link::with_journal`]).
    pub journal_flushes: usize,
    /// Sequence numbers retired unused by conservative reboot recovery.
    pub sequences_skipped: usize,
    /// Epoch rotations committed (journaled write-ahead when a journal is
    /// attached, RAM-only otherwise).
    pub rotations: usize,
    /// Rotations the NVM refused to journal — the sensor stayed on its old
    /// key rather than rotate without a recoverable record.
    pub rotations_deferred: usize,
}

/// A full sensor→channel→server session with retries.
///
/// `send` transmits a sealed frame, watches what the receiver accepts, and
/// retransmits with exponential backoff until the message is acknowledged
/// or attempts run out. Retransmissions reuse the same sequence number, so
/// the replay window absorbs the duplicates a lossy acknowledgement path
/// would create.
///
/// # Examples
///
/// ```
/// use age_crypto::ChaCha20Poly1305;
/// use age_transport::{FaultPlan, Link, RetryPolicy};
///
/// let mut link = Link::new(
///     Box::new(ChaCha20Poly1305::new([7; 32])),
///     Box::new(ChaCha20Poly1305::new([7; 32])),
///     FaultPlan::drops(0.5, 42),
///     RetryPolicy::default(),
/// );
/// let delivery = link.send(b"batch bytes");
/// assert!(delivery.delivered, "4 attempts beat a 50% drop rate");
/// assert_eq!(delivery.frame_len, 11 + 28); // payload + nonce + tag
/// ```
pub struct Link {
    sensor: Sensor,
    channel: FaultChannel,
    receiver: Receiver,
    retry: RetryPolicy,
    stats: LinkStats,
    journal: Option<SequenceJournal>,
    /// Session-owned frame buffer: every send seals into this scratch, so
    /// the sealing side of the link stops allocating once it has grown to
    /// the session's fixed frame length.
    frame_scratch: Vec<u8>,
}

impl Link {
    /// A session over `plan`, sealing with `sensor_cipher` and opening with
    /// `receiver_cipher` (build both from the same key).
    pub fn new(
        sensor_cipher: Box<dyn Cipher>,
        receiver_cipher: Box<dyn Cipher>,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_channel(
            sensor_cipher,
            receiver_cipher,
            FaultChannel::new(plan),
            retry,
        )
    }

    /// Like [`Link::new`] but over a pre-seeded [`FaultChannel`].
    pub fn with_channel(
        sensor_cipher: Box<dyn Cipher>,
        receiver_cipher: Box<dyn Cipher>,
        channel: FaultChannel,
        retry: RetryPolicy,
    ) -> Self {
        Link {
            sensor: Sensor::new(sensor_cipher),
            channel,
            receiver: Receiver::new(receiver_cipher),
            retry,
            stats: LinkStats::default(),
            journal: None,
            frame_scratch: Vec::new(),
        }
    }

    /// Assembles a session from pre-built endpoints — the constructor for
    /// rekey-capable links ([`Sensor::with_rekey`] on one side,
    /// [`Receiver::with_ratchet`] on the other) or any other custom
    /// endpoint configuration.
    pub fn with_parts(
        sensor: Sensor,
        receiver: Receiver,
        channel: FaultChannel,
        retry: RetryPolicy,
    ) -> Self {
        Link {
            sensor,
            channel,
            receiver,
            retry,
            stats: LinkStats::default(),
            journal: None,
            frame_scratch: Vec::new(),
        }
    }

    /// Numbers frames from a persisted sequence-reservation journal instead
    /// of the RAM counter, so [`Link::reboot_sensor`] recovers without
    /// nonce reuse. The sensor resumes at the journal's position (0 for a
    /// fresh store) and on the journal's recovered epoch.
    pub fn with_journal(mut self, journal: SequenceJournal) -> Self {
        self.sensor.resume(journal.next(), journal.epoch());
        self.journal = Some(journal);
        self
    }

    /// The sending endpoint (epoch and seal state inspection).
    pub fn sensor(&self) -> &Sensor {
        &self.sensor
    }

    /// The receiving endpoint (epoch and window state inspection).
    pub fn receiver(&self) -> &Receiver {
        &self.receiver
    }

    /// Whether frames are numbered from a persisted journal.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// The attached journal's counters, if any.
    pub fn journal_stats(&self) -> Option<&JournalStats> {
        self.journal.as_ref().map(SequenceJournal::stats)
    }

    /// Journal NVM write attempts so far — the energy-billable quantity
    /// (every attempt programs the flash, retries of failed writes
    /// included). 0 without a journal.
    pub fn journal_write_attempts(&self) -> usize {
        self.journal
            .as_ref()
            .map_or(0, |j| j.nvm_stats().writes_attempted)
    }

    /// Session counters so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Channel-side fault counters so far.
    pub fn channel_stats(&self) -> &ChannelStats {
        self.channel.stats()
    }

    /// Sends `payload` under the session's next sequence number — drawn
    /// from the journal when one is attached (persisting a reservation
    /// record once per block), from the RAM counter otherwise.
    ///
    /// If the NVM refuses every attempt to persist a due reservation
    /// record, nothing radiates: sealing under an unreserved number is the
    /// nonce-reuse hazard the journal prevents, so the message is counted
    /// lost instead (a zero-attempt, zero-length [`Delivery`]).
    pub fn send(&mut self, payload: &[u8]) -> Delivery {
        if self.journal.is_none() {
            let mut frame = std::mem::take(&mut self.frame_scratch);
            let epoch_before = self.sensor.epoch();
            let sequence = self.sensor.seal_into(payload, &mut frame);
            if self.sensor.epoch() != epoch_before {
                self.stats.rotations += 1;
            }
            let delivery = self.drive(sequence, &frame);
            self.frame_scratch = frame;
            return delivery;
        }
        match self.journal_reserve() {
            Ok(sequence) => {
                self.maybe_rotate(sequence);
                let mut frame = std::mem::take(&mut self.frame_scratch);
                self.sensor.seal_as_into(sequence, payload, &mut frame);
                let delivery = self.drive(sequence, &frame);
                self.frame_scratch = frame;
                delivery
            }
            Err(stuck_at) => {
                self.stats.messages_lost += 1;
                Delivery {
                    sequence: stuck_at,
                    epoch: self.sensor.epoch(),
                    frame_len: 0,
                    attempts: 0,
                    delivered: false,
                    payloads: Vec::new(),
                    backoff_ms: 0.0,
                }
            }
        }
    }

    /// Write-ahead rotation: when the watermark schedule says `sequence`
    /// belongs to a later epoch, journal the target epoch *before*
    /// switching keys. If the NVM refuses the record, the rotation is
    /// deferred and the sensor keeps sealing under its old key — a RAM-only
    /// rotation would be forgotten by the next brownout, and recovery must
    /// always land on a journaled epoch. Deferral is safe for nonce
    /// uniqueness because sequence numbers are global: staying on the old
    /// key only delays forward secrecy, it cannot reuse a (key, nonce)
    /// pair.
    fn maybe_rotate(&mut self, sequence: u64) {
        let Some(target) = self.sensor.rotation_due(sequence) else {
            return;
        };
        self.commit_rotation(target);
    }

    /// Rotates the sensor one epoch ahead by explicit command — the
    /// out-of-band trigger (operator or server policy), as opposed to the
    /// sequence-watermark schedule. The journaled write-ahead applies
    /// exactly as for scheduled rotations. Returns the sensor's epoch
    /// afterwards — unchanged when the NVM refused the journal record or
    /// the sensor has no rekey state.
    pub fn rotate_sensor(&mut self) -> u64 {
        self.commit_rotation(self.sensor.epoch() + 1);
        self.sensor.epoch()
    }

    fn commit_rotation(&mut self, target: u64) {
        if target <= self.sensor.epoch() {
            return;
        }
        if let Some(journal) = self.journal.as_mut() {
            let flushes_before = journal.stats().flushes;
            let committed = journal.record_epoch(target).is_ok();
            let flushed = journal.stats().flushes - flushes_before;
            self.stats.journal_flushes += flushed;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::JOURNAL_FLUSHES.add(flushed as u64);
            if !committed {
                self.stats.rotations_deferred += 1;
                return;
            }
        }
        if self.sensor.rotate_to(target) {
            self.stats.rotations += 1;
        }
    }

    /// A brownout between the journal write and the radio: the next
    /// sequence number is reserved and `payload` is sealed under it, but
    /// power dies before the frame radiates — the channel never sees it —
    /// and the sensor reboots. Recovery retires the sealed-but-unsent
    /// frame's sequence number, so its nonce is never reused. Without a
    /// journal the seal still burns a RAM sequence number, which the
    /// reboot then forgets.
    pub fn abort_send(&mut self, payload: &[u8]) {
        if self.journal.is_none() {
            let mut frame = std::mem::take(&mut self.frame_scratch);
            let _ = self.sensor.seal_into(payload, &mut frame);
            self.frame_scratch = frame;
        } else if let Ok(sequence) = self.journal_reserve() {
            // The rotation window is part of the brownout surface: power
            // can die right after the epoch record commits, before (or
            // after) the frame seals. Recovery must land on the journaled
            // epoch either way.
            self.maybe_rotate(sequence);
            let mut frame = std::mem::take(&mut self.frame_scratch);
            self.sensor.seal_as_into(sequence, payload, &mut frame);
            self.frame_scratch = frame;
        }
        self.reboot_sensor();
    }

    /// Simulates a sensor power loss mid-session: all sensor RAM state
    /// (the sequence counter and the seal high-water mark) is gone. With a
    /// journal attached the counter resumes at the recovered reservation
    /// high-water mark; without one it restarts at 0 — the catastrophic
    /// nonce-reuse case the journal exists to prevent (and the run-wide
    /// nonce auditor exists to catch).
    pub fn reboot_sensor(&mut self) {
        self.stats.sensor_reboots += 1;
        #[cfg(feature = "telemetry")]
        age_telemetry::metrics::global::SENSOR_REBOOTS.add(1);
        let next = match self.journal.as_mut() {
            Some(journal) => {
                let flushes_before = journal.stats().flushes;
                let skipped = journal.reboot();
                let flushed = journal.stats().flushes - flushes_before;
                self.stats.journal_flushes += flushed;
                self.stats.sequences_skipped += skipped as usize;
                #[cfg(feature = "telemetry")]
                {
                    age_telemetry::metrics::global::JOURNAL_FLUSHES.add(flushed as u64);
                    age_telemetry::metrics::global::SEQUENCES_SKIPPED.add(skipped);
                }
                journal.next()
            }
            None => 0,
        };
        let epoch = self.journal.as_ref().map_or(0, SequenceJournal::epoch);
        self.sensor.resume(next, epoch);
    }

    /// Draws the next number from the attached journal, folding any flush
    /// into the session stats. `Err` carries the position the journal is
    /// stuck at after the NVM refused every write attempt.
    fn journal_reserve(&mut self) -> Result<u64, u64> {
        let Some(journal) = self.journal.as_mut() else {
            return Err(0);
        };
        let flushes_before = journal.stats().flushes;
        let reserved = journal.reserve_next();
        let flushed = journal.stats().flushes - flushes_before;
        let stuck_at = journal.next();
        self.stats.journal_flushes += flushed;
        #[cfg(feature = "telemetry")]
        age_telemetry::metrics::global::JOURNAL_FLUSHES.add(flushed as u64);
        reserved.map_err(|_| stuck_at)
    }

    /// Sends `payload` under an explicit sequence number (does not advance
    /// the session counter).
    pub fn send_as(&mut self, sequence: u64, payload: &[u8]) -> Delivery {
        let mut frame = std::mem::take(&mut self.frame_scratch);
        self.sensor.seal_as_into(sequence, payload, &mut frame);
        let delivery = self.drive(sequence, &frame);
        self.frame_scratch = frame;
        delivery
    }

    /// Releases any frame still held by a reordering fault and returns the
    /// payloads the receiver accepts from it.
    pub fn flush(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut accepted = Vec::new();
        if let Some(frame) = self.channel.flush() {
            self.receive_frames(vec![frame], u64::MAX, &mut accepted);
            self.stats.late_deliveries += accepted.len();
        }
        accepted
    }

    fn drive(&mut self, sequence: u64, frame: &[u8]) -> Delivery {
        let mut delivery = Delivery {
            sequence,
            epoch: self.sensor.epoch(),
            frame_len: frame.len(),
            attempts: 0,
            delivered: false,
            payloads: Vec::new(),
            backoff_ms: 0.0,
        };
        for attempt in 0..self.retry.max_attempts.max(1) {
            delivery.attempts = attempt + 1;
            self.stats.frames_sent += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_SENT.add(1);
            // The on-air size distribution: what a passive eavesdropper
            // observes, one sample per transmission attempt.
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::WIRE_FRAME_BYTES.record(frame.len() as u64);
            if attempt > 0 {
                self.stats.frames_retried += 1;
                delivery.backoff_ms += self.retry.timeout_ms(attempt - 1);
                #[cfg(feature = "telemetry")]
                age_telemetry::metrics::global::FRAMES_RETRIED.add(1);
            }
            let arriving = self.channel.transmit(frame);
            let before = delivery.payloads.len();
            if self.receive_frames(arriving, sequence, &mut delivery.payloads) {
                delivery.delivered = true;
            }
            // Payloads surfacing now but carrying an older sequence number
            // missed their own send's deadline.
            self.stats.late_deliveries += delivery.payloads[before..]
                .iter()
                .filter(|&&(seq, _)| seq != sequence)
                .count();
            if delivery.delivered {
                break;
            }
        }
        if !delivery.delivered {
            self.stats.messages_lost += 1;
        }
        delivery
    }

    /// Feeds frames to the receiver; returns `true` if a frame carrying
    /// `want_sequence` was accepted.
    fn receive_frames(
        &mut self,
        frames: Vec<Vec<u8>>,
        want_sequence: u64,
        accepted: &mut Vec<(u64, Vec<u8>)>,
    ) -> bool {
        let mut got_wanted = false;
        for frame in frames {
            match self.receiver.receive(&frame) {
                Ok((sequence, payload)) => {
                    self.stats.frames_delivered += 1;
                    if sequence == want_sequence {
                        got_wanted = true;
                    }
                    accepted.push((sequence, payload));
                }
                Err(ReceiveError::Cipher(_)) => self.stats.auth_failed += 1,
                Err(ReceiveError::Replay(_)) => self.stats.replay_rejected += 1,
                Err(ReceiveError::MissingSequence | ReceiveError::FarFuture { .. }) => {
                    self.stats.rejected_other += 1;
                }
            }
        }
        got_wanted
    }
}

#[cfg(test)]
mod tests {
    use age_crypto::{AesCbc, ChaCha20, ChaCha20Poly1305};

    use super::*;

    fn aead_link(plan: FaultPlan, retry: RetryPolicy) -> Link {
        Link::new(
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            plan,
            retry,
        )
    }

    #[test]
    fn reliable_link_delivers_in_one_attempt() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::default());
        for i in 0..20u8 {
            let d = link.send(&[i; 30]);
            assert!(d.delivered);
            assert_eq!(d.attempts, 1);
            assert_eq!(d.payloads, vec![(u64::from(i), vec![i; 30])]);
        }
        assert_eq!(link.stats().frames_sent, 20);
        assert_eq!(link.stats().frames_retried, 0);
        assert_eq!(link.stats().messages_lost, 0);
    }

    #[test]
    fn retries_recover_dropped_frames() {
        let mut link = aead_link(FaultPlan::drops(0.4, 11), RetryPolicy::default());
        let mut retried = 0;
        let mut delivered = 0;
        for i in 0..100u8 {
            let d = link.send(&[i; 16]);
            delivered += usize::from(d.delivered);
            retried += (d.attempts - 1) as usize;
        }
        // Residual loss after 4 attempts at 40% drop is 0.4^4 ≈ 2.6%.
        assert!(delivered >= 90, "delivered only {delivered}/100");
        assert!(retried > 10, "a 40% drop rate must force retries");
        assert_eq!(link.stats().frames_retried, retried);
        assert_eq!(link.stats().messages_lost, 100 - delivered);
    }

    #[test]
    fn exhausted_retries_lose_the_message() {
        let mut link = aead_link(FaultPlan::drops(1.0, 1), RetryPolicy::default());
        let d = link.send(b"doomed");
        assert!(!d.delivered);
        assert_eq!(d.attempts, 4);
        assert_eq!(link.stats().messages_lost, 1);
    }

    #[test]
    fn corruption_is_rejected_and_repaired_by_retry() {
        let plan = FaultPlan {
            corrupt_rate: 0.5,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::default());
        let mut delivered = 0;
        for i in 0..50u8 {
            let d = link.send(&[i; 25]);
            if d.delivered {
                delivered += 1;
                // An accepted AEAD payload is authentic, never garbage.
                assert_eq!(d.payloads.last().unwrap().1, vec![i; 25]);
            }
        }
        // Residual loss after 4 attempts at 50% corruption is ~6%.
        assert!(delivered >= 40, "delivered only {delivered}/50");
        assert!(link.stats().auth_failed > 0, "corruption must be caught");
        assert_eq!(link.stats().messages_lost, 50 - delivered);
    }

    #[test]
    fn duplicates_are_absorbed_by_the_replay_window() {
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::none());
        for i in 0..10u8 {
            let d = link.send(&[i; 8]);
            assert!(d.delivered);
            assert_eq!(d.payloads.len(), 1, "second copy must be rejected");
        }
        assert_eq!(link.stats().replay_rejected, 10);
    }

    #[test]
    fn reordering_resolves_via_retransmission() {
        let plan = FaultPlan {
            reorder_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::default());
        let d = link.send(b"first");
        // Attempt 1 is held back; attempt 2 releases it (and is itself held).
        assert!(d.delivered);
        assert_eq!(d.attempts, 2);
        assert_eq!(link.flush(), Vec::new(), "held retransmit is a replay");
    }

    #[test]
    fn every_wire_frame_is_the_sealed_fixed_size() {
        let mut link = aead_link(FaultPlan::lossy(0.3, 5), RetryPolicy::default());
        for i in 0..100u8 {
            let d = link.send(&[i; 40]);
            assert_eq!(d.frame_len, 40 + 28);
        }
        let stats = *link.channel_stats();
        assert!(stats.corrupted > 0 && stats.dropped > 0);
        assert!(stats.wire_lengths_constant());
        assert_eq!(stats.wire_min_len, Some(68));
    }

    #[test]
    fn unauthenticated_stream_cipher_still_transports() {
        let plan = FaultPlan {
            corrupt_rate: 0.3,
            ..FaultPlan::NONE
        };
        let mut link = Link::new(
            Box::new(ChaCha20::new([9; 32])),
            Box::new(ChaCha20::new([9; 32])),
            plan,
            RetryPolicy::none(),
        );
        // Corruption is invisible to a raw stream cipher unless it hits the
        // nonce; frames "deliver" but payload bytes may be garbage. The
        // receiver must never panic either way.
        let mut delivered = 0;
        for i in 0..50u8 {
            delivered += usize::from(link.send(&[i; 12]).delivered);
        }
        assert!(delivered > 30);
    }

    #[test]
    fn block_cipher_sessions_roundtrip() {
        let mut link = Link::new(
            Box::new(AesCbc::new([3; 16])),
            Box::new(AesCbc::new([3; 16])),
            FaultPlan::NONE,
            RetryPolicy::none(),
        );
        let d = link.send(&[1, 2, 3, 4, 5]);
        assert!(d.delivered);
        assert_eq!(d.payloads[0].1, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wrong_key_frames_are_rejected_not_panicked() {
        let mut link = Link::new(
            Box::new(ChaCha20Poly1305::new([1; 32])),
            Box::new(ChaCha20Poly1305::new([2; 32])),
            FaultPlan::NONE,
            RetryPolicy::none(),
        );
        let d = link.send(b"forged");
        assert!(!d.delivered);
        assert_eq!(link.stats().auth_failed, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_ms(0), 50.0);
        assert_eq!(p.timeout_ms(1), 100.0);
        assert_eq!(p.timeout_ms(2), 200.0);
        assert_eq!(p.timeout_ms(10), 800.0, "capped at max_timeout_ms");
        let lost = {
            let mut link = aead_link(FaultPlan::drops(1.0, 2), p);
            link.send(b"x")
        };
        assert_eq!(lost.backoff_ms, 50.0 + 100.0 + 200.0);
    }

    #[test]
    fn backoff_before_ms_replays_a_delivery_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before_ms(0), 0.0);
        assert_eq!(p.backoff_before_ms(1), 0.0, "first attempt never waits");
        assert_eq!(p.backoff_before_ms(2), 50.0);
        assert_eq!(p.backoff_before_ms(4), 50.0 + 100.0 + 200.0);
        // The invariant the virtual clock relies on: the policy can
        // reconstruct a delivery's total wait from its attempt count.
        for (seed, rate) in [(1u64, 0.0), (2, 0.5), (3, 0.7), (4, 1.0)] {
            let mut link = aead_link(FaultPlan::drops(rate, seed), p);
            for _ in 0..8 {
                let d = link.send(b"x");
                assert_eq!(d.backoff_ms, p.backoff_before_ms(d.attempts));
            }
        }
    }

    #[test]
    fn receiver_flags_far_future_sequences() {
        let mut rx = Receiver::new(Box::new(ChaCha20::new([5; 32])));
        let tx = ChaCha20::new([5; 32]);
        rx.receive(&tx.seal(0, b"ok")).unwrap();
        let err = rx.receive(&tx.seal(1 << 40, b"way ahead")).unwrap_err();
        assert!(matches!(err, ReceiveError::FarFuture { .. }));
        // Legitimate traffic continues afterwards.
        assert!(rx.receive(&tx.seal(1, b"next")).is_ok());
    }

    #[test]
    fn journaled_link_survives_reboots_without_nonce_reuse() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none()).with_journal(
            SequenceJournal::new(crate::persist::NvmStore::reliable(), 8),
        );
        let mut sequences = Vec::new();
        for round in 0..5u8 {
            for i in 0..7u8 {
                let d = link.send(&[round * 10 + i; 24]);
                assert!(d.delivered, "post-reboot frames must keep delivering");
                sequences.push(d.sequence);
            }
            link.reboot_sensor();
        }
        let mut unique = sequences.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), sequences.len(), "a sequence was reused");
        assert!(
            sequences.windows(2).all(|w| w[0] < w[1]),
            "journal sequences must be strictly increasing"
        );
        let stats = *link.stats();
        assert_eq!(stats.sensor_reboots, 5);
        assert!(stats.journal_flushes > 0);
        assert!(stats.sequences_skipped > 0, "7 of each 8-block go unused");
        assert_eq!(stats.messages_lost, 0);
    }

    #[test]
    fn reboot_without_a_journal_restarts_at_zero_and_replays() {
        // The negative path the journal exists to prevent: the RAM counter
        // resets, the sensor reseals under already-used nonces, and the
        // receiver's replay window rejects the whole post-reboot stream.
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none());
        for i in 0..4u8 {
            assert!(link.send(&[i; 16]).delivered);
        }
        link.reboot_sensor();
        for i in 0..4u8 {
            let d = link.send(&[i; 16]);
            assert!(!d.delivered, "replayed nonce must be rejected");
        }
        assert_eq!(link.stats().replay_rejected, 4);
        assert_eq!(link.stats().sensor_reboots, 1);
    }

    #[test]
    fn abort_send_retires_the_sequence_without_radiating() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none())
            .with_journal(SequenceJournal::reliable());
        let first = link.send(b"before").sequence;
        let frames_on_wire = link.channel_stats().frames_in;
        link.abort_send(b"never radiates");
        assert_eq!(
            link.channel_stats().frames_in,
            frames_on_wire,
            "an aborted send must not reach the channel"
        );
        let resumed = link.send(b"after");
        assert!(resumed.delivered);
        assert!(
            resumed.sequence > first + 1,
            "the aborted frame's sequence number must be retired"
        );
    }

    #[test]
    fn journal_write_exhaustion_loses_the_message_without_sealing() {
        let plan = crate::persist::NvmFaultPlan {
            fail_rate: 1.0,
            torn_rate: 0.0,
            seed: 9,
        };
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::default())
            .with_journal(SequenceJournal::new(crate::persist::NvmStore::new(plan), 8));
        let d = link.send(b"unreservable");
        assert!(!d.delivered);
        assert_eq!(d.attempts, 0, "nothing may radiate without a reservation");
        assert_eq!(link.stats().messages_lost, 1);
        assert_eq!(link.channel_stats().frames_in, 0);
        assert!(
            link.journal_write_attempts() >= SequenceJournal::WRITE_ATTEMPTS as usize,
            "every failed NVM attempt is billable"
        );
    }

    #[test]
    fn seal_as_below_the_high_water_mark_is_counted_and_asserted() {
        let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new([0x42; 32])));
        for _ in 0..5 {
            let _ = sensor.seal(b"x");
        }
        assert_eq!(sensor.highest_sealed(), Some(4));
        #[cfg(feature = "telemetry")]
        let risked_before = age_telemetry::metrics::global::NONCE_REUSE_RISKED.get();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sensor.seal_as(2, b"reused nonce")
        }));
        // The metric increments before the debug assertion fires, so the
        // risk is visible even where the assertion is compiled out.
        #[cfg(feature = "telemetry")]
        assert!(age_telemetry::metrics::global::NONCE_REUSE_RISKED.get() > risked_before);
        if cfg!(debug_assertions) {
            assert!(attempt.is_err(), "debug builds must trip the guard");
        } else {
            assert!(attempt.is_ok(), "release builds preserve legacy sealing");
        }
    }

    #[test]
    fn error_displays_are_informative() {
        let e = ReceiveError::Cipher(OpenError::BadPadding);
        assert!(e.to_string().contains("failed to open"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ReceiveError::Replay(crate::replay::ReplayError::Replayed { sequence: 3 });
        assert!(e.to_string().contains("replay"));
        assert!(ReceiveError::MissingSequence.to_string().contains("short"));
        let e = ReceiveError::FarFuture {
            sequence: 9,
            limit: 5,
        };
        assert!(e.to_string().contains('9'));
    }

    // --- epoch rekeying ------------------------------------------------

    fn rekey_pair(interval: u64) -> (Sensor, Receiver) {
        let root = age_crypto::kdf::sensor_root(&age_crypto::kdf::fleet_secret(77), 3);
        (
            Sensor::with_rekey(root, interval, 0, chacha20poly1305_factory),
            Receiver::with_ratchet(
                root,
                MAX_SKIP,
                epoch_skip_budget(MAX_SKIP, interval),
                chacha20poly1305_factory,
            ),
        )
    }

    fn rekey_link(interval: u64, plan: FaultPlan, retry: RetryPolicy) -> Link {
        let (sensor, receiver) = rekey_pair(interval);
        Link::with_parts(sensor, receiver, FaultChannel::new(plan), retry)
    }

    #[test]
    fn rotations_follow_the_watermark_schedule() {
        let mut link = rekey_link(8, FaultPlan::NONE, RetryPolicy::none());
        let mut frame_lens = std::collections::BTreeSet::new();
        for i in 0..40u8 {
            let d = link.send(&[i; 32]);
            assert!(d.delivered);
            assert_eq!(d.epoch, epoch_of(d.sequence, 8, 0));
            frame_lens.insert(d.frame_len);
        }
        assert_eq!(link.sensor().epoch(), 4, "sequence 39 sits in epoch 4");
        assert_eq!(link.receiver().last_epoch(), 4);
        assert_eq!(link.stats().rotations, 4);
        assert_eq!(link.receiver().stats().epoch_advances, 4);
        assert_eq!(
            frame_lens.len(),
            1,
            "an epoch boundary must not change the frame size"
        );
    }

    #[test]
    fn receiver_tracks_epochs_across_a_lossy_channel() {
        let mut link = rekey_link(5, FaultPlan::drops(0.4, 21), RetryPolicy::default());
        let mut delivered = 0;
        for i in 0..60u8 {
            let d = link.send(&[i; 24]);
            if d.delivered {
                delivered += 1;
                assert_eq!(d.epoch, epoch_of(d.sequence, 5, 0));
            }
        }
        assert!(delivered >= 50, "delivered only {delivered}/60");
        assert_eq!(link.sensor().epoch(), 11);
        assert!(
            link.receiver().epoch() >= 10,
            "the receiver must follow rotations despite drops, reached {}",
            link.receiver().epoch()
        );
    }

    #[test]
    fn explicit_rotation_commands_rekey_without_a_schedule() {
        let mut link = rekey_link(0, FaultPlan::NONE, RetryPolicy::none());
        assert!(link.send(b"epoch zero").delivered);
        assert_eq!(link.rotate_sensor(), 1);
        let d = link.send(b"epoch one");
        assert!(d.delivered);
        assert_eq!(d.epoch, 1);
        assert_eq!(link.receiver().last_epoch(), 1);
        assert_eq!(link.stats().rotations, 1);
        assert_eq!(link.receiver().stats().epoch_advances, 1);
        // A rotation command on a rekey-less link is a visible no-op.
        let mut plain = aead_link(FaultPlan::NONE, RetryPolicy::none());
        assert_eq!(plain.rotate_sensor(), 0);
        assert_eq!(plain.stats().rotations, 0);
    }

    #[test]
    fn stragglers_from_the_previous_epoch_still_open() {
        // Hold a frame sealed in epoch 0 in the reordering channel, rotate,
        // deliver epoch-1 traffic, then release the straggler: it must open
        // under the retired key and be counted as epoch_behind.
        let plan = FaultPlan {
            reorder_rate: 1.0,
            ..FaultPlan::NONE
        };
        let (sensor, receiver) = rekey_pair(0);
        let mut link = Link::with_parts(
            sensor,
            receiver,
            FaultChannel::new(plan),
            RetryPolicy::none(),
        );
        let held = link.send(b"sealed in epoch zero");
        assert!(!held.delivered, "the reorder fault holds the frame");
        link.rotate_sensor();
        let late = link.flush();
        assert_eq!(late.len(), 1, "the straggler must still open");
        assert_eq!(late[0].1, b"sealed in epoch zero");
        assert_eq!(
            link.receiver().stats().epoch_behind,
            0,
            "receiver never advanced"
        );
    }

    #[test]
    fn brownout_across_an_epoch_boundary_recovers_without_reuse() {
        // Reservation block 8, rekey interval 4: conservative reboot
        // recovery skips the rest of the block, landing the resumed
        // sequence in a *later* epoch than the journal ever recorded. The
        // sensor must resume on the watermark epoch and the receiver must
        // follow the multi-epoch jump.
        let (sensor, receiver) = rekey_pair(4);
        let mut link = Link::with_parts(
            sensor,
            receiver,
            FaultChannel::new(FaultPlan::NONE),
            RetryPolicy::none(),
        )
        .with_journal(SequenceJournal::new(
            crate::persist::NvmStore::reliable(),
            8,
        ));
        for i in 0..6u8 {
            let d = link.send(&[i; 16]);
            assert!(d.delivered);
            assert_eq!(d.epoch, epoch_of(d.sequence, 4, 0));
        }
        assert_eq!(link.stats().rotations, 1, "sequence 4 crossed into epoch 1");
        // Power dies right after the reservation (and any due rotation's
        // journal write), before the frame radiates.
        link.abort_send(b"browned out");
        let d = link.send(b"after recovery");
        assert!(
            d.delivered,
            "the receiver must follow the post-brownout jump"
        );
        assert_eq!(d.epoch, epoch_of(d.sequence, 4, 0));
        assert!(d.epoch >= 2, "recovery skipped past an epoch boundary");
        assert_eq!(link.receiver().last_epoch(), d.epoch);
    }

    #[test]
    fn rekey_soak_with_faulty_nvm_and_channel_never_reuses_a_sequence() {
        // Brownouts (some inside the rotation window via abort_send), torn
        // and failing NVM writes, a lossy channel, and a rekey schedule all
        // at once: every frame that radiates must still carry a fresh
        // sequence number, and the link must keep making progress.
        let nvm = crate::persist::NvmFaultPlan {
            fail_rate: 0.1,
            torn_rate: 0.3,
            seed: 31,
        };
        let (sensor, receiver) = rekey_pair(6);
        let mut link = Link::with_parts(
            sensor,
            receiver,
            FaultChannel::new(FaultPlan::lossy(0.2, 8)),
            RetryPolicy::default(),
        )
        .with_journal(SequenceJournal::new(crate::persist::NvmStore::new(nvm), 4));
        let mut driver = age_telemetry::DetRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        let mut delivered = 0usize;
        for i in 0..400u32 {
            if driver.gen_bool(0.06) {
                if driver.gen_bool(0.5) {
                    link.abort_send(&[0xAB; 12]);
                } else {
                    link.reboot_sensor();
                }
            }
            let d = link.send(&[(i % 251) as u8; 12]);
            if d.attempts > 0 {
                assert!(
                    seen.insert(d.sequence),
                    "sequence {} radiated twice",
                    d.sequence
                );
            }
            delivered += usize::from(d.delivered);
        }
        let stats = *link.stats();
        assert!(
            stats.rotations > 10,
            "the schedule must fire across the soak"
        );
        assert!(stats.sensor_reboots > 5, "the soak must actually brown out");
        assert!(delivered >= 360, "delivered only {delivered}/400");
        assert!(
            link.receiver().stats().epoch_advances > 0,
            "the receiver must have followed rotations"
        );
    }
}
