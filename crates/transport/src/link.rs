//! The framed sensor→server session: sealing, receive-side checks, and the
//! retry/backoff loop.

use age_crypto::{Cipher, OpenError};

use crate::fault::{ChannelStats, FaultChannel, FaultPlan};
use crate::persist::{JournalStats, SequenceJournal};
use crate::replay::{ReplayError, ReplayWindow};

/// Why the receiver rejected a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveError {
    /// Decryption/authentication failed (for AEAD ciphers this catches any
    /// bit flipped anywhere in the frame).
    Cipher(OpenError),
    /// The replay window rejected the frame's sequence number.
    Replay(ReplayError),
    /// The frame is too short to carry a sequence number.
    MissingSequence,
    /// The sequence number jumps implausibly far ahead — on unauthenticated
    /// ciphers a corrupted nonce decodes as a huge sequence, and accepting
    /// it would slide the replay window past all legitimate traffic.
    FarFuture {
        /// The claimed sequence number.
        sequence: u64,
        /// The highest sequence number the receiver would have accepted.
        limit: u64,
    },
}

impl std::fmt::Display for ReceiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReceiveError::Cipher(e) => write!(f, "frame failed to open: {e}"),
            ReceiveError::Replay(e) => write!(f, "replay window rejected frame: {e}"),
            ReceiveError::MissingSequence => f.write_str("frame too short for a sequence number"),
            ReceiveError::FarFuture { sequence, limit } => {
                write!(f, "sequence {sequence} is beyond the accept limit {limit}")
            }
        }
    }
}

impl std::error::Error for ReceiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReceiveError::Cipher(e) => Some(e),
            ReceiveError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

/// The sensor half: seals payloads into framed messages with a
/// monotonically increasing per-session sequence number. The nonce/IV is
/// derived deterministically from that number by the cipher, so a frame is
/// `message_len(payload)` bytes — a pure function of the payload length.
pub struct Sensor {
    cipher: Box<dyn Cipher>,
    next_sequence: u64,
    /// Highest sequence number sealed so far this power cycle (RAM only —
    /// cleared by [`Sensor::reboot_at`], exactly like the counter it
    /// guards).
    highest_sealed: Option<u64>,
}

impl Sensor {
    /// A sensor starting at sequence number 0.
    pub fn new(cipher: Box<dyn Cipher>) -> Self {
        Sensor {
            cipher,
            next_sequence: 0,
            highest_sealed: None,
        }
    }

    /// The sequence number the next [`Sensor::seal`] will use.
    pub fn next_sequence(&self) -> u64 {
        self.next_sequence
    }

    /// The highest sequence number sealed this power cycle, if any.
    pub fn highest_sealed(&self) -> Option<u64> {
        self.highest_sealed
    }

    /// Seals `payload` under the next sequence number.
    pub fn seal(&mut self, payload: &[u8]) -> (u64, Vec<u8>) {
        let mut frame = Vec::new();
        let sequence = self.seal_into(payload, &mut frame);
        (sequence, frame)
    }

    /// Seals `payload` under the next sequence number into `frame`,
    /// reusing its allocation (byte-identical to [`Sensor::seal`]). Returns
    /// the sequence number used. Once `frame` has grown to the session's
    /// fixed frame length, sealing never touches the heap.
    pub fn seal_into(&mut self, payload: &[u8], frame: &mut Vec<u8>) -> u64 {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.note_sealed(sequence);
        self.cipher.seal_into(sequence, payload, frame);
        sequence
    }

    /// Seals `payload` under an explicit sequence number without touching
    /// the session counter.
    ///
    /// Explicit numbering is for callers that own sequencing themselves and
    /// keep it strictly increasing — the experiment runner numbers frames
    /// by test sequence index, and [`Link`] numbers them from the
    /// reservation journal; both satisfy that contract, which is why the
    /// guard below never fires for them. A sequence at or below the power
    /// cycle's high-water mark would reuse a (key, nonce) pair, so it
    /// trips a debug assertion and is counted by the `NONCE_REUSE_RISKED`
    /// metric (release builds still seal, preserving legacy behavior; the
    /// run-wide nonce auditor is the backstop that fails the run).
    pub fn seal_as(&mut self, sequence: u64, payload: &[u8]) -> Vec<u8> {
        let mut frame = Vec::new();
        self.seal_as_into(sequence, payload, &mut frame);
        frame
    }

    /// [`Sensor::seal_as`] into a caller-owned frame buffer, with the same
    /// high-water-mark guard and `NONCE_REUSE_RISKED` accounting.
    pub fn seal_as_into(&mut self, sequence: u64, payload: &[u8], frame: &mut Vec<u8>) {
        if let Some(high) = self.highest_sealed {
            if sequence <= high {
                #[cfg(feature = "telemetry")]
                age_telemetry::metrics::global::NONCE_REUSE_RISKED.add(1);
                debug_assert!(
                    sequence > high,
                    "seal_as({sequence}) at or below the session high-water mark {high} \
                     would reuse a (key, nonce) pair"
                );
            }
        }
        self.note_sealed(sequence);
        self.cipher.seal_into(sequence, payload, frame);
    }

    /// Models a power loss: the RAM high-water mark is gone, and the
    /// counter restarts wherever the caller's persistence (or lack of it)
    /// says — [`Link::reboot_sensor`] passes the journal's recovered
    /// position, or 0 when there is no journal.
    pub fn reboot_at(&mut self, next_sequence: u64) {
        self.next_sequence = next_sequence;
        self.highest_sealed = None;
    }

    /// Exact on-air frame length for a payload of `payload_len` bytes.
    pub fn frame_len(&self, payload_len: usize) -> usize {
        self.cipher.message_len(payload_len)
    }

    fn note_sealed(&mut self, sequence: u64) {
        self.highest_sealed = Some(self.highest_sealed.map_or(sequence, |h| h.max(sequence)));
    }
}

/// Per-receiver frame counters.
///
/// The process-global metrics aggregate every receiver in the process; a
/// gateway serving many sensors needs the same accounting *per session* so
/// a fleet report can attribute rejections to the sensor (and shard) they
/// happened on. All fields are plain counts, so [`merge`](Self::merge) is
/// commutative and associative — per-shard rollups fold into identical
/// fleet totals at any shard count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Frames that authenticated and cleared the replay window.
    pub accepted: u64,
    /// Frames whose decryption/authentication failed.
    pub auth_failed: u64,
    /// Frames the replay window rejected (duplicate or stale).
    pub replay_rejected: u64,
    /// Frames rejected by the far-future guard.
    pub far_future: u64,
    /// Frames too short to carry a sequence number.
    pub missing_sequence: u64,
}

impl ReceiverStats {
    /// Total frames this receiver rejected, for any reason.
    pub fn rejected(&self) -> u64 {
        self.auth_failed + self.replay_rejected + self.far_future + self.missing_sequence
    }

    /// Folds another receiver's counters in (counts add, so merge order
    /// never matters).
    pub fn merge(&mut self, other: &ReceiverStats) {
        self.accepted += other.accepted;
        self.auth_failed += other.auth_failed;
        self.replay_rejected += other.replay_rejected;
        self.far_future += other.far_future;
        self.missing_sequence += other.missing_sequence;
    }
}

/// The server half: opens frames, enforces the replay window, and degrades
/// gracefully — every malformed, forged, replayed, or stale frame becomes a
/// [`ReceiveError`], never a panic.
pub struct Receiver {
    cipher: Box<dyn Cipher>,
    window: ReplayWindow,
    max_skip: u64,
    stats: ReceiverStats,
}

impl Receiver {
    /// How far ahead of the highest accepted sequence number a frame may
    /// claim to be before it is rejected as [`ReceiveError::FarFuture`].
    pub const MAX_SKIP: u64 = 1024;

    /// A receiver with an empty replay window.
    pub fn new(cipher: Box<dyn Cipher>) -> Self {
        Receiver {
            cipher,
            window: ReplayWindow::new(),
            max_skip: Self::MAX_SKIP,
            stats: ReceiverStats::default(),
        }
    }

    /// A receiver with a custom far-future guard distance (sessions whose
    /// senders legitimately skip far ahead, or fuzz harnesses probing the
    /// guard, tighten or widen it here).
    pub fn with_max_skip(cipher: Box<dyn Cipher>, max_skip: u64) -> Self {
        let mut receiver = Receiver::new(cipher);
        receiver.max_skip = max_skip;
        receiver
    }

    /// The replay window's highest accepted sequence number, if any.
    pub fn highest_sequence(&self) -> Option<u64> {
        self.window.highest()
    }

    /// This receiver's accept/reject counters.
    pub fn stats(&self) -> &ReceiverStats {
        &self.stats
    }

    /// Opens one frame: authenticates/decrypts, then runs the sequence
    /// number through the far-future guard and the replay window. Returns
    /// the frame's sequence number and payload.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] for any frame the server must not act on.
    pub fn receive(&mut self, frame: &[u8]) -> Result<(u64, Vec<u8>), ReceiveError> {
        let mut payload = Vec::new();
        let sequence = self.receive_into(frame, &mut payload)?;
        Ok((sequence, payload))
    }

    /// [`Receiver::receive`] into a caller-owned payload buffer, reusing its
    /// allocation; returns the accepted frame's sequence number. On error
    /// `payload`'s contents are unspecified. Once warm, receiving never
    /// touches the heap.
    ///
    /// # Errors
    ///
    /// [`ReceiveError`] for any frame the server must not act on.
    pub fn receive_into(
        &mut self,
        frame: &[u8],
        payload: &mut Vec<u8>,
    ) -> Result<u64, ReceiveError> {
        let sequence = match self.cipher.sequence_of(frame) {
            Some(sequence) => sequence,
            None => {
                self.stats.missing_sequence += 1;
                return Err(ReceiveError::MissingSequence);
            }
        };
        self.cipher.open_into(frame, payload).map_err(|e| {
            self.stats.auth_failed += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_AUTH_FAILED.add(1);
            ReceiveError::Cipher(e)
        })?;
        let limit = self
            .window
            .highest()
            .map_or(self.max_skip, |h| h.saturating_add(self.max_skip));
        if sequence > limit {
            self.stats.far_future += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_FAR_FUTURE.add(1);
            return Err(ReceiveError::FarFuture { sequence, limit });
        }
        self.window.observe(sequence).map_err(|e| {
            self.stats.replay_rejected += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_REPLAY_REJECTED.add(1);
            ReceiveError::Replay(e)
        })?;
        self.stats.accepted += 1;
        Ok(sequence)
    }
}

/// Retry/timeout policy for unacknowledged frames: exponential backoff with
/// a cap, in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total transmissions per message, the first included (≥ 1).
    pub max_attempts: u32,
    /// Wait before the first retransmission.
    pub base_timeout_ms: f64,
    /// Multiplier applied per further retransmission.
    pub backoff_factor: f64,
    /// Upper bound on any single wait.
    pub max_timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_timeout_ms: 50.0,
            backoff_factor: 2.0,
            max_timeout_ms: 800.0,
        }
    }
}

impl RetryPolicy {
    /// Fire-and-forget: a single transmission, no waiting.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_timeout_ms: 0.0,
            backoff_factor: 1.0,
            max_timeout_ms: 0.0,
        }
    }

    /// The wait before retry number `retry` (0-based), capped.
    pub fn timeout_ms(&self, retry: u32) -> f64 {
        (self.base_timeout_ms * self.backoff_factor.powi(retry as i32)).min(self.max_timeout_ms)
    }

    /// Total backoff waited across a delivery that used `attempts`
    /// transmissions: the sum of the capped waits preceding attempts
    /// `2..=attempts`. Reproduces [`Delivery::backoff_ms`] exactly (same
    /// additions in the same order), which lets a virtual clock replay a
    /// delivery's schedule from its attempt count alone.
    pub fn backoff_before_ms(&self, attempts: u32) -> f64 {
        let mut total = 0.0;
        for attempt in 1..attempts {
            total += self.timeout_ms(attempt - 1);
        }
        total
    }
}

/// What happened to one message sent through a [`Link`].
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The message's sequence number.
    pub sequence: u64,
    /// The sealed frame's on-air length (every attempt radiates exactly
    /// this many bytes).
    pub frame_len: usize,
    /// Transmissions used (1 = no retries).
    pub attempts: u32,
    /// `true` if the receiver accepted this message's payload.
    pub delivered: bool,
    /// Every payload the receiver accepted during this send, in arrival
    /// order — usually just this message, but a reordered predecessor can
    /// surface here too.
    pub payloads: Vec<(u64, Vec<u8>)>,
    /// Simulated time spent waiting on retry timeouts.
    pub backoff_ms: f64,
}

/// Deterministic transport counters for one [`Link`] session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Frames put on the wire, retransmissions included.
    pub frames_sent: usize,
    /// Retransmission attempts.
    pub frames_retried: usize,
    /// Frames the receiver accepted.
    pub frames_delivered: usize,
    /// Frames rejected for failed authentication or malformed framing.
    pub auth_failed: usize,
    /// Frames rejected by the replay window (mostly duplicates of accepted
    /// frames — expected under retransmission).
    pub replay_rejected: usize,
    /// Frames rejected for other reasons (missing/far-future sequence).
    pub rejected_other: usize,
    /// Messages abandoned after exhausting every attempt.
    pub messages_lost: usize,
    /// Payloads that arrived only after their send deadline had passed
    /// (released by a reordering fault during a later send).
    pub late_deliveries: usize,
    /// Sensor power losses recovered from ([`Link::reboot_sensor`]).
    pub sensor_reboots: usize,
    /// Sequence-reservation journal records persisted to NVM (only with
    /// [`Link::with_journal`]).
    pub journal_flushes: usize,
    /// Sequence numbers retired unused by conservative reboot recovery.
    pub sequences_skipped: usize,
}

/// A full sensor→channel→server session with retries.
///
/// `send` transmits a sealed frame, watches what the receiver accepts, and
/// retransmits with exponential backoff until the message is acknowledged
/// or attempts run out. Retransmissions reuse the same sequence number, so
/// the replay window absorbs the duplicates a lossy acknowledgement path
/// would create.
///
/// # Examples
///
/// ```
/// use age_crypto::ChaCha20Poly1305;
/// use age_transport::{FaultPlan, Link, RetryPolicy};
///
/// let mut link = Link::new(
///     Box::new(ChaCha20Poly1305::new([7; 32])),
///     Box::new(ChaCha20Poly1305::new([7; 32])),
///     FaultPlan::drops(0.5, 42),
///     RetryPolicy::default(),
/// );
/// let delivery = link.send(b"batch bytes");
/// assert!(delivery.delivered, "4 attempts beat a 50% drop rate");
/// assert_eq!(delivery.frame_len, 11 + 28); // payload + nonce + tag
/// ```
pub struct Link {
    sensor: Sensor,
    channel: FaultChannel,
    receiver: Receiver,
    retry: RetryPolicy,
    stats: LinkStats,
    journal: Option<SequenceJournal>,
    /// Session-owned frame buffer: every send seals into this scratch, so
    /// the sealing side of the link stops allocating once it has grown to
    /// the session's fixed frame length.
    frame_scratch: Vec<u8>,
}

impl Link {
    /// A session over `plan`, sealing with `sensor_cipher` and opening with
    /// `receiver_cipher` (build both from the same key).
    pub fn new(
        sensor_cipher: Box<dyn Cipher>,
        receiver_cipher: Box<dyn Cipher>,
        plan: FaultPlan,
        retry: RetryPolicy,
    ) -> Self {
        Self::with_channel(
            sensor_cipher,
            receiver_cipher,
            FaultChannel::new(plan),
            retry,
        )
    }

    /// Like [`Link::new`] but over a pre-seeded [`FaultChannel`].
    pub fn with_channel(
        sensor_cipher: Box<dyn Cipher>,
        receiver_cipher: Box<dyn Cipher>,
        channel: FaultChannel,
        retry: RetryPolicy,
    ) -> Self {
        Link {
            sensor: Sensor::new(sensor_cipher),
            channel,
            receiver: Receiver::new(receiver_cipher),
            retry,
            stats: LinkStats::default(),
            journal: None,
            frame_scratch: Vec::new(),
        }
    }

    /// Numbers frames from a persisted sequence-reservation journal instead
    /// of the RAM counter, so [`Link::reboot_sensor`] recovers without
    /// nonce reuse. The sensor resumes at the journal's position (0 for a
    /// fresh store).
    pub fn with_journal(mut self, journal: SequenceJournal) -> Self {
        self.sensor.reboot_at(journal.next());
        self.journal = Some(journal);
        self
    }

    /// Whether frames are numbered from a persisted journal.
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// The attached journal's counters, if any.
    pub fn journal_stats(&self) -> Option<&JournalStats> {
        self.journal.as_ref().map(SequenceJournal::stats)
    }

    /// Journal NVM write attempts so far — the energy-billable quantity
    /// (every attempt programs the flash, retries of failed writes
    /// included). 0 without a journal.
    pub fn journal_write_attempts(&self) -> usize {
        self.journal
            .as_ref()
            .map_or(0, |j| j.nvm_stats().writes_attempted)
    }

    /// Session counters so far.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Channel-side fault counters so far.
    pub fn channel_stats(&self) -> &ChannelStats {
        self.channel.stats()
    }

    /// Sends `payload` under the session's next sequence number — drawn
    /// from the journal when one is attached (persisting a reservation
    /// record once per block), from the RAM counter otherwise.
    ///
    /// If the NVM refuses every attempt to persist a due reservation
    /// record, nothing radiates: sealing under an unreserved number is the
    /// nonce-reuse hazard the journal prevents, so the message is counted
    /// lost instead (a zero-attempt, zero-length [`Delivery`]).
    pub fn send(&mut self, payload: &[u8]) -> Delivery {
        if self.journal.is_none() {
            let mut frame = std::mem::take(&mut self.frame_scratch);
            let sequence = self.sensor.seal_into(payload, &mut frame);
            let delivery = self.drive(sequence, &frame);
            self.frame_scratch = frame;
            return delivery;
        }
        match self.journal_reserve() {
            Ok(sequence) => {
                let mut frame = std::mem::take(&mut self.frame_scratch);
                self.sensor.seal_as_into(sequence, payload, &mut frame);
                let delivery = self.drive(sequence, &frame);
                self.frame_scratch = frame;
                delivery
            }
            Err(stuck_at) => {
                self.stats.messages_lost += 1;
                Delivery {
                    sequence: stuck_at,
                    frame_len: 0,
                    attempts: 0,
                    delivered: false,
                    payloads: Vec::new(),
                    backoff_ms: 0.0,
                }
            }
        }
    }

    /// A brownout between the journal write and the radio: the next
    /// sequence number is reserved and `payload` is sealed under it, but
    /// power dies before the frame radiates — the channel never sees it —
    /// and the sensor reboots. Recovery retires the sealed-but-unsent
    /// frame's sequence number, so its nonce is never reused. Without a
    /// journal the seal still burns a RAM sequence number, which the
    /// reboot then forgets.
    pub fn abort_send(&mut self, payload: &[u8]) {
        let mut frame = std::mem::take(&mut self.frame_scratch);
        if self.journal.is_none() {
            let _ = self.sensor.seal_into(payload, &mut frame);
        } else if let Ok(sequence) = self.journal_reserve() {
            self.sensor.seal_as_into(sequence, payload, &mut frame);
        }
        self.frame_scratch = frame;
        self.reboot_sensor();
    }

    /// Simulates a sensor power loss mid-session: all sensor RAM state
    /// (the sequence counter and the seal high-water mark) is gone. With a
    /// journal attached the counter resumes at the recovered reservation
    /// high-water mark; without one it restarts at 0 — the catastrophic
    /// nonce-reuse case the journal exists to prevent (and the run-wide
    /// nonce auditor exists to catch).
    pub fn reboot_sensor(&mut self) {
        self.stats.sensor_reboots += 1;
        #[cfg(feature = "telemetry")]
        age_telemetry::metrics::global::SENSOR_REBOOTS.add(1);
        let next = match self.journal.as_mut() {
            Some(journal) => {
                let flushes_before = journal.stats().flushes;
                let skipped = journal.reboot();
                let flushed = journal.stats().flushes - flushes_before;
                self.stats.journal_flushes += flushed;
                self.stats.sequences_skipped += skipped as usize;
                #[cfg(feature = "telemetry")]
                {
                    age_telemetry::metrics::global::JOURNAL_FLUSHES.add(flushed as u64);
                    age_telemetry::metrics::global::SEQUENCES_SKIPPED.add(skipped);
                }
                journal.next()
            }
            None => 0,
        };
        self.sensor.reboot_at(next);
    }

    /// Draws the next number from the attached journal, folding any flush
    /// into the session stats. `Err` carries the position the journal is
    /// stuck at after the NVM refused every write attempt.
    fn journal_reserve(&mut self) -> Result<u64, u64> {
        let Some(journal) = self.journal.as_mut() else {
            return Err(0);
        };
        let flushes_before = journal.stats().flushes;
        let reserved = journal.reserve_next();
        let flushed = journal.stats().flushes - flushes_before;
        let stuck_at = journal.next();
        self.stats.journal_flushes += flushed;
        #[cfg(feature = "telemetry")]
        age_telemetry::metrics::global::JOURNAL_FLUSHES.add(flushed as u64);
        reserved.map_err(|_| stuck_at)
    }

    /// Sends `payload` under an explicit sequence number (does not advance
    /// the session counter).
    pub fn send_as(&mut self, sequence: u64, payload: &[u8]) -> Delivery {
        let mut frame = std::mem::take(&mut self.frame_scratch);
        self.sensor.seal_as_into(sequence, payload, &mut frame);
        let delivery = self.drive(sequence, &frame);
        self.frame_scratch = frame;
        delivery
    }

    /// Releases any frame still held by a reordering fault and returns the
    /// payloads the receiver accepts from it.
    pub fn flush(&mut self) -> Vec<(u64, Vec<u8>)> {
        let mut accepted = Vec::new();
        if let Some(frame) = self.channel.flush() {
            self.receive_frames(vec![frame], u64::MAX, &mut accepted);
            self.stats.late_deliveries += accepted.len();
        }
        accepted
    }

    fn drive(&mut self, sequence: u64, frame: &[u8]) -> Delivery {
        let mut delivery = Delivery {
            sequence,
            frame_len: frame.len(),
            attempts: 0,
            delivered: false,
            payloads: Vec::new(),
            backoff_ms: 0.0,
        };
        for attempt in 0..self.retry.max_attempts.max(1) {
            delivery.attempts = attempt + 1;
            self.stats.frames_sent += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_SENT.add(1);
            // The on-air size distribution: what a passive eavesdropper
            // observes, one sample per transmission attempt.
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::WIRE_FRAME_BYTES.record(frame.len() as u64);
            if attempt > 0 {
                self.stats.frames_retried += 1;
                delivery.backoff_ms += self.retry.timeout_ms(attempt - 1);
                #[cfg(feature = "telemetry")]
                age_telemetry::metrics::global::FRAMES_RETRIED.add(1);
            }
            let arriving = self.channel.transmit(frame);
            let before = delivery.payloads.len();
            if self.receive_frames(arriving, sequence, &mut delivery.payloads) {
                delivery.delivered = true;
            }
            // Payloads surfacing now but carrying an older sequence number
            // missed their own send's deadline.
            self.stats.late_deliveries += delivery.payloads[before..]
                .iter()
                .filter(|&&(seq, _)| seq != sequence)
                .count();
            if delivery.delivered {
                break;
            }
        }
        if !delivery.delivered {
            self.stats.messages_lost += 1;
        }
        delivery
    }

    /// Feeds frames to the receiver; returns `true` if a frame carrying
    /// `want_sequence` was accepted.
    fn receive_frames(
        &mut self,
        frames: Vec<Vec<u8>>,
        want_sequence: u64,
        accepted: &mut Vec<(u64, Vec<u8>)>,
    ) -> bool {
        let mut got_wanted = false;
        for frame in frames {
            match self.receiver.receive(&frame) {
                Ok((sequence, payload)) => {
                    self.stats.frames_delivered += 1;
                    if sequence == want_sequence {
                        got_wanted = true;
                    }
                    accepted.push((sequence, payload));
                }
                Err(ReceiveError::Cipher(_)) => self.stats.auth_failed += 1,
                Err(ReceiveError::Replay(_)) => self.stats.replay_rejected += 1,
                Err(ReceiveError::MissingSequence | ReceiveError::FarFuture { .. }) => {
                    self.stats.rejected_other += 1;
                }
            }
        }
        got_wanted
    }
}

#[cfg(test)]
mod tests {
    use age_crypto::{AesCbc, ChaCha20, ChaCha20Poly1305};

    use super::*;

    fn aead_link(plan: FaultPlan, retry: RetryPolicy) -> Link {
        Link::new(
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            plan,
            retry,
        )
    }

    #[test]
    fn reliable_link_delivers_in_one_attempt() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::default());
        for i in 0..20u8 {
            let d = link.send(&[i; 30]);
            assert!(d.delivered);
            assert_eq!(d.attempts, 1);
            assert_eq!(d.payloads, vec![(u64::from(i), vec![i; 30])]);
        }
        assert_eq!(link.stats().frames_sent, 20);
        assert_eq!(link.stats().frames_retried, 0);
        assert_eq!(link.stats().messages_lost, 0);
    }

    #[test]
    fn retries_recover_dropped_frames() {
        let mut link = aead_link(FaultPlan::drops(0.4, 11), RetryPolicy::default());
        let mut retried = 0;
        let mut delivered = 0;
        for i in 0..100u8 {
            let d = link.send(&[i; 16]);
            delivered += usize::from(d.delivered);
            retried += (d.attempts - 1) as usize;
        }
        // Residual loss after 4 attempts at 40% drop is 0.4^4 ≈ 2.6%.
        assert!(delivered >= 90, "delivered only {delivered}/100");
        assert!(retried > 10, "a 40% drop rate must force retries");
        assert_eq!(link.stats().frames_retried, retried);
        assert_eq!(link.stats().messages_lost, 100 - delivered);
    }

    #[test]
    fn exhausted_retries_lose_the_message() {
        let mut link = aead_link(FaultPlan::drops(1.0, 1), RetryPolicy::default());
        let d = link.send(b"doomed");
        assert!(!d.delivered);
        assert_eq!(d.attempts, 4);
        assert_eq!(link.stats().messages_lost, 1);
    }

    #[test]
    fn corruption_is_rejected_and_repaired_by_retry() {
        let plan = FaultPlan {
            corrupt_rate: 0.5,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::default());
        let mut delivered = 0;
        for i in 0..50u8 {
            let d = link.send(&[i; 25]);
            if d.delivered {
                delivered += 1;
                // An accepted AEAD payload is authentic, never garbage.
                assert_eq!(d.payloads.last().unwrap().1, vec![i; 25]);
            }
        }
        // Residual loss after 4 attempts at 50% corruption is ~6%.
        assert!(delivered >= 40, "delivered only {delivered}/50");
        assert!(link.stats().auth_failed > 0, "corruption must be caught");
        assert_eq!(link.stats().messages_lost, 50 - delivered);
    }

    #[test]
    fn duplicates_are_absorbed_by_the_replay_window() {
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::none());
        for i in 0..10u8 {
            let d = link.send(&[i; 8]);
            assert!(d.delivered);
            assert_eq!(d.payloads.len(), 1, "second copy must be rejected");
        }
        assert_eq!(link.stats().replay_rejected, 10);
    }

    #[test]
    fn reordering_resolves_via_retransmission() {
        let plan = FaultPlan {
            reorder_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut link = aead_link(plan, RetryPolicy::default());
        let d = link.send(b"first");
        // Attempt 1 is held back; attempt 2 releases it (and is itself held).
        assert!(d.delivered);
        assert_eq!(d.attempts, 2);
        assert_eq!(link.flush(), Vec::new(), "held retransmit is a replay");
    }

    #[test]
    fn every_wire_frame_is_the_sealed_fixed_size() {
        let mut link = aead_link(FaultPlan::lossy(0.3, 5), RetryPolicy::default());
        for i in 0..100u8 {
            let d = link.send(&[i; 40]);
            assert_eq!(d.frame_len, 40 + 28);
        }
        let stats = *link.channel_stats();
        assert!(stats.corrupted > 0 && stats.dropped > 0);
        assert!(stats.wire_lengths_constant());
        assert_eq!(stats.wire_min_len, Some(68));
    }

    #[test]
    fn unauthenticated_stream_cipher_still_transports() {
        let plan = FaultPlan {
            corrupt_rate: 0.3,
            ..FaultPlan::NONE
        };
        let mut link = Link::new(
            Box::new(ChaCha20::new([9; 32])),
            Box::new(ChaCha20::new([9; 32])),
            plan,
            RetryPolicy::none(),
        );
        // Corruption is invisible to a raw stream cipher unless it hits the
        // nonce; frames "deliver" but payload bytes may be garbage. The
        // receiver must never panic either way.
        let mut delivered = 0;
        for i in 0..50u8 {
            delivered += usize::from(link.send(&[i; 12]).delivered);
        }
        assert!(delivered > 30);
    }

    #[test]
    fn block_cipher_sessions_roundtrip() {
        let mut link = Link::new(
            Box::new(AesCbc::new([3; 16])),
            Box::new(AesCbc::new([3; 16])),
            FaultPlan::NONE,
            RetryPolicy::none(),
        );
        let d = link.send(&[1, 2, 3, 4, 5]);
        assert!(d.delivered);
        assert_eq!(d.payloads[0].1, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn wrong_key_frames_are_rejected_not_panicked() {
        let mut link = Link::new(
            Box::new(ChaCha20Poly1305::new([1; 32])),
            Box::new(ChaCha20Poly1305::new([2; 32])),
            FaultPlan::NONE,
            RetryPolicy::none(),
        );
        let d = link.send(b"forged");
        assert!(!d.delivered);
        assert_eq!(link.stats().auth_failed, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.timeout_ms(0), 50.0);
        assert_eq!(p.timeout_ms(1), 100.0);
        assert_eq!(p.timeout_ms(2), 200.0);
        assert_eq!(p.timeout_ms(10), 800.0, "capped at max_timeout_ms");
        let lost = {
            let mut link = aead_link(FaultPlan::drops(1.0, 2), p);
            link.send(b"x")
        };
        assert_eq!(lost.backoff_ms, 50.0 + 100.0 + 200.0);
    }

    #[test]
    fn backoff_before_ms_replays_a_delivery_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_before_ms(0), 0.0);
        assert_eq!(p.backoff_before_ms(1), 0.0, "first attempt never waits");
        assert_eq!(p.backoff_before_ms(2), 50.0);
        assert_eq!(p.backoff_before_ms(4), 50.0 + 100.0 + 200.0);
        // The invariant the virtual clock relies on: the policy can
        // reconstruct a delivery's total wait from its attempt count.
        for (seed, rate) in [(1u64, 0.0), (2, 0.5), (3, 0.7), (4, 1.0)] {
            let mut link = aead_link(FaultPlan::drops(rate, seed), p);
            for _ in 0..8 {
                let d = link.send(b"x");
                assert_eq!(d.backoff_ms, p.backoff_before_ms(d.attempts));
            }
        }
    }

    #[test]
    fn receiver_flags_far_future_sequences() {
        let mut rx = Receiver::new(Box::new(ChaCha20::new([5; 32])));
        let tx = ChaCha20::new([5; 32]);
        rx.receive(&tx.seal(0, b"ok")).unwrap();
        let err = rx.receive(&tx.seal(1 << 40, b"way ahead")).unwrap_err();
        assert!(matches!(err, ReceiveError::FarFuture { .. }));
        // Legitimate traffic continues afterwards.
        assert!(rx.receive(&tx.seal(1, b"next")).is_ok());
    }

    #[test]
    fn journaled_link_survives_reboots_without_nonce_reuse() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none()).with_journal(
            SequenceJournal::new(crate::persist::NvmStore::reliable(), 8),
        );
        let mut sequences = Vec::new();
        for round in 0..5u8 {
            for i in 0..7u8 {
                let d = link.send(&[round * 10 + i; 24]);
                assert!(d.delivered, "post-reboot frames must keep delivering");
                sequences.push(d.sequence);
            }
            link.reboot_sensor();
        }
        let mut unique = sequences.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), sequences.len(), "a sequence was reused");
        assert!(
            sequences.windows(2).all(|w| w[0] < w[1]),
            "journal sequences must be strictly increasing"
        );
        let stats = *link.stats();
        assert_eq!(stats.sensor_reboots, 5);
        assert!(stats.journal_flushes > 0);
        assert!(stats.sequences_skipped > 0, "7 of each 8-block go unused");
        assert_eq!(stats.messages_lost, 0);
    }

    #[test]
    fn reboot_without_a_journal_restarts_at_zero_and_replays() {
        // The negative path the journal exists to prevent: the RAM counter
        // resets, the sensor reseals under already-used nonces, and the
        // receiver's replay window rejects the whole post-reboot stream.
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none());
        for i in 0..4u8 {
            assert!(link.send(&[i; 16]).delivered);
        }
        link.reboot_sensor();
        for i in 0..4u8 {
            let d = link.send(&[i; 16]);
            assert!(!d.delivered, "replayed nonce must be rejected");
        }
        assert_eq!(link.stats().replay_rejected, 4);
        assert_eq!(link.stats().sensor_reboots, 1);
    }

    #[test]
    fn abort_send_retires_the_sequence_without_radiating() {
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::none())
            .with_journal(SequenceJournal::reliable());
        let first = link.send(b"before").sequence;
        let frames_on_wire = link.channel_stats().frames_in;
        link.abort_send(b"never radiates");
        assert_eq!(
            link.channel_stats().frames_in,
            frames_on_wire,
            "an aborted send must not reach the channel"
        );
        let resumed = link.send(b"after");
        assert!(resumed.delivered);
        assert!(
            resumed.sequence > first + 1,
            "the aborted frame's sequence number must be retired"
        );
    }

    #[test]
    fn journal_write_exhaustion_loses_the_message_without_sealing() {
        let plan = crate::persist::NvmFaultPlan {
            fail_rate: 1.0,
            torn_rate: 0.0,
            seed: 9,
        };
        let mut link = aead_link(FaultPlan::NONE, RetryPolicy::default())
            .with_journal(SequenceJournal::new(crate::persist::NvmStore::new(plan), 8));
        let d = link.send(b"unreservable");
        assert!(!d.delivered);
        assert_eq!(d.attempts, 0, "nothing may radiate without a reservation");
        assert_eq!(link.stats().messages_lost, 1);
        assert_eq!(link.channel_stats().frames_in, 0);
        assert!(
            link.journal_write_attempts() >= SequenceJournal::WRITE_ATTEMPTS as usize,
            "every failed NVM attempt is billable"
        );
    }

    #[test]
    fn seal_as_below_the_high_water_mark_is_counted_and_asserted() {
        let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new([0x42; 32])));
        for _ in 0..5 {
            let _ = sensor.seal(b"x");
        }
        assert_eq!(sensor.highest_sealed(), Some(4));
        #[cfg(feature = "telemetry")]
        let risked_before = age_telemetry::metrics::global::NONCE_REUSE_RISKED.get();
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sensor.seal_as(2, b"reused nonce")
        }));
        // The metric increments before the debug assertion fires, so the
        // risk is visible even where the assertion is compiled out.
        #[cfg(feature = "telemetry")]
        assert!(age_telemetry::metrics::global::NONCE_REUSE_RISKED.get() > risked_before);
        if cfg!(debug_assertions) {
            assert!(attempt.is_err(), "debug builds must trip the guard");
        } else {
            assert!(attempt.is_ok(), "release builds preserve legacy sealing");
        }
    }

    #[test]
    fn error_displays_are_informative() {
        let e = ReceiveError::Cipher(OpenError::BadPadding);
        assert!(e.to_string().contains("failed to open"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ReceiveError::Replay(crate::replay::ReplayError::Replayed { sequence: 3 });
        assert!(e.to_string().contains("replay"));
        assert!(ReceiveError::MissingSequence.to_string().contains("short"));
        let e = ReceiveError::FarFuture {
            sequence: 9,
            limit: 5,
        };
        assert!(e.to_string().contains('9'));
    }
}
