//! Deterministic fault injection between sensor and server.
//!
//! The paper's security argument assumes faults strike independently of the
//! sensed events (§4.5); to test that assumption the channel must be able to
//! misbehave *reproducibly*. [`FaultChannel`] applies drop, bit-corruption,
//! duplication, and reordering faults drawn from a [`DetRng`] seeded by the
//! [`FaultPlan`], so a run is a pure function of its seed — byte-identical
//! at any thread count, matching the sweep's determinism contract.
//!
//! Faults never change a frame's length: corruption flips bits in place and
//! duplication re-sends the same sealed frame, so the attacker-visible wire
//! size stays exactly the sealed fixed size.

use age_telemetry::DetRng;

/// Fault rates for a simulated link, all probabilities per sent frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a frame vanishes in flight.
    pub drop_rate: f64,
    /// Probability 1–3 random bits of a frame flip in flight.
    pub corrupt_rate: f64,
    /// Probability the receiver sees a frame twice.
    pub duplicate_rate: f64,
    /// Probability a frame is held back and delivered after its successor.
    pub reorder_rate: f64,
    /// Seed of the fault stream; same plan + same seed ⇒ same faults.
    pub seed: u64,
}

impl FaultPlan {
    /// A perfectly reliable channel.
    pub const NONE: FaultPlan = FaultPlan {
        drop_rate: 0.0,
        corrupt_rate: 0.0,
        duplicate_rate: 0.0,
        reorder_rate: 0.0,
        seed: 0,
    };

    /// A channel that only drops frames, at `drop_rate`.
    pub fn drops(drop_rate: f64, seed: u64) -> Self {
        FaultPlan {
            drop_rate,
            seed,
            ..FaultPlan::NONE
        }
    }

    /// A generally unreliable channel: drops and corrupts at `rate`, with
    /// half-`rate` duplication and reordering.
    pub fn lossy(rate: f64, seed: u64) -> Self {
        FaultPlan {
            drop_rate: rate,
            corrupt_rate: rate,
            duplicate_rate: rate / 2.0,
            reorder_rate: rate / 2.0,
            seed,
        }
    }

    /// `true` if every fault rate is zero.
    pub fn is_noop(&self) -> bool {
        self.drop_rate <= 0.0
            && self.corrupt_rate <= 0.0
            && self.duplicate_rate <= 0.0
            && self.reorder_rate <= 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// What the channel did to the traffic so far. Deterministic per seed, so
/// it is safe to include in byte-compared reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelStats {
    /// Frames the sensor handed to the channel.
    pub frames_in: usize,
    /// Frames that reached the receiver (including duplicates).
    pub frames_out: usize,
    /// Frames dropped in flight.
    pub dropped: usize,
    /// Frames with flipped bits.
    pub corrupted: usize,
    /// Extra copies delivered.
    pub duplicated: usize,
    /// Frames held back behind their successor.
    pub reordered: usize,
    /// Shortest frame radiated on the wire, if any.
    pub wire_min_len: Option<usize>,
    /// Longest frame radiated on the wire, if any.
    pub wire_max_len: Option<usize>,
}

impl ChannelStats {
    fn record_wire(&mut self, len: usize) {
        self.wire_min_len = Some(self.wire_min_len.map_or(len, |m| m.min(len)));
        self.wire_max_len = Some(self.wire_max_len.map_or(len, |m| m.max(len)));
    }

    /// `true` if every frame observed on the wire had the same length.
    pub fn wire_lengths_constant(&self) -> bool {
        self.wire_min_len == self.wire_max_len
    }
}

/// A lossy link applying [`FaultPlan`] faults from a deterministic stream.
///
/// Fault decisions are drawn in a fixed order per frame (drop, corrupt,
/// duplicate, reorder), so the stream — and therefore the entire run — is a
/// pure function of the plan and seed.
///
/// # Examples
///
/// ```
/// use age_transport::{FaultChannel, FaultPlan};
///
/// let mut channel = FaultChannel::new(FaultPlan::drops(1.0, 7));
/// assert!(channel.transmit(b"frame").is_empty()); // always dropped
/// assert_eq!(channel.stats().dropped, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultChannel {
    plan: FaultPlan,
    rng: DetRng,
    held: Option<Vec<u8>>,
    stats: ChannelStats,
}

impl FaultChannel {
    /// A channel seeded from `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_seed(plan, plan.seed)
    }

    /// A channel whose fault stream is seeded from `seed` instead of
    /// `plan.seed` — sweep cells mix their cell identity in so every cell
    /// sees an independent (but reproducible) fault pattern.
    pub fn with_seed(plan: FaultPlan, seed: u64) -> Self {
        FaultChannel {
            plan,
            rng: DetRng::seed_from_u64(seed),
            held: None,
            stats: ChannelStats::default(),
        }
    }

    /// The faults applied so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Sends one frame through the channel and returns the frames arriving
    /// at the receiver *now* — possibly empty (dropped or held back),
    /// possibly more than one (a duplicate, or a previously held frame
    /// released by this transmission).
    pub fn transmit(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        self.stats.frames_in += 1;
        self.stats.record_wire(frame.len());

        let mut arriving = Vec::new();
        // A frame held back by an earlier reorder was already in flight; it
        // lands ahead of (i.e. swapped with) the current transmission.
        if let Some(held) = self.held.take() {
            arriving.push(held);
        }

        if self.rng.gen_bool(self.plan.drop_rate) {
            self.stats.dropped += 1;
            #[cfg(feature = "telemetry")]
            age_telemetry::metrics::global::FRAMES_DROPPED.add(1);
        } else {
            let mut copy = frame.to_vec();
            if self.rng.gen_bool(self.plan.corrupt_rate) {
                self.corrupt(&mut copy);
                self.stats.corrupted += 1;
            }
            if self.rng.gen_bool(self.plan.duplicate_rate) {
                // The duplicate radiates as its own wire frame, same bytes.
                self.stats.record_wire(copy.len());
                self.stats.duplicated += 1;
                arriving.push(copy.clone());
            }
            if self.held.is_none() && self.rng.gen_bool(self.plan.reorder_rate) {
                self.stats.reordered += 1;
                self.held = Some(copy);
            } else {
                arriving.push(copy);
            }
        }

        self.stats.frames_out += arriving.len();
        arriving
    }

    /// Releases a held frame at the end of a session, if one is in flight.
    pub fn flush(&mut self) -> Option<Vec<u8>> {
        let held = self.held.take();
        if held.is_some() {
            self.stats.frames_out += 1;
        }
        held
    }

    /// Flips 1–3 bits at deterministic positions; the length never changes.
    fn corrupt(&mut self, frame: &mut [u8]) {
        if frame.is_empty() {
            return;
        }
        let flips = self.rng.gen_range(1usize..=3);
        for _ in 0..flips {
            let bit = self.rng.gen_range(0..frame.len() * 8);
            frame[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_channel_passes_everything_through() {
        let mut ch = FaultChannel::new(FaultPlan::NONE);
        for i in 0..50u8 {
            let out = ch.transmit(&[i; 10]);
            assert_eq!(out, vec![vec![i; 10]]);
        }
        assert_eq!(ch.stats().frames_in, 50);
        assert_eq!(ch.stats().frames_out, 50);
        assert_eq!(ch.stats().dropped + ch.stats().corrupted, 0);
        assert!(ch.stats().wire_lengths_constant());
    }

    #[test]
    fn same_seed_same_faults() {
        let plan = FaultPlan::lossy(0.3, 99);
        let run = |_: ()| {
            let mut ch = FaultChannel::new(plan);
            let mut out = Vec::new();
            for i in 0..200u8 {
                out.push(ch.transmit(&[i; 8]));
            }
            out.push(ch.flush().into_iter().collect());
            (out, *ch.stats())
        };
        assert_eq!(run(()), run(()));
    }

    #[test]
    fn corruption_preserves_length_and_flips_bits() {
        let plan = FaultPlan {
            corrupt_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut ch = FaultChannel::with_seed(plan, 3);
        let frame = [0u8; 32];
        let mut changed = 0;
        for _ in 0..20 {
            let out = ch.transmit(&frame);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].len(), frame.len());
            if out[0] != frame {
                changed += 1;
            }
        }
        assert_eq!(changed, 20, "every frame must actually be corrupted");
        assert_eq!(ch.stats().corrupted, 20);
    }

    #[test]
    fn duplicates_arrive_twice() {
        let plan = FaultPlan {
            duplicate_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut ch = FaultChannel::with_seed(plan, 4);
        let out = ch.transmit(&[7; 4]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(ch.stats().duplicated, 1);
    }

    #[test]
    fn reordering_swaps_adjacent_frames() {
        let plan = FaultPlan {
            reorder_rate: 1.0,
            ..FaultPlan::NONE
        };
        let mut ch = FaultChannel::with_seed(plan, 5);
        assert!(ch.transmit(&[1]).is_empty(), "first frame is held");
        let out = ch.transmit(&[2]);
        // The held frame lands first; the second is now held in its place.
        assert_eq!(out, vec![vec![1]]);
        assert_eq!(ch.flush(), Some(vec![2]));
        assert_eq!(ch.stats().reordered, 2);
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let mut ch = FaultChannel::new(FaultPlan::drops(1.0, 6));
        for _ in 0..10 {
            assert!(ch.transmit(&[0; 16]).is_empty());
        }
        assert_eq!(ch.stats().dropped, 10);
        assert_eq!(ch.stats().frames_out, 0);
        // Dropped frames were still radiated by the sensor.
        assert_eq!(ch.stats().wire_min_len, Some(16));
    }

    #[test]
    fn plan_helpers_cover_the_rates() {
        assert!(FaultPlan::NONE.is_noop());
        assert!(FaultPlan::default().is_noop());
        let lossy = FaultPlan::lossy(0.2, 1);
        assert!(!lossy.is_noop());
        assert_eq!(lossy.duplicate_rate, 0.1);
        assert!(!FaultPlan::drops(0.5, 1).is_noop());
    }
}
