//! The receiver's anti-replay sliding window.
//!
//! Retransmissions and duplicated frames mean the server legitimately sees
//! the same sequence number more than once; an attacker replaying captured
//! frames looks exactly the same on the wire. RFC 4303-style windowing
//! resolves both: a bitmap over the last [`ReplayWindow::SIZE`] sequence
//! numbers accepts each number exactly once and rejects anything older than
//! the window.

/// Why the replay window rejected a sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The sequence number was already accepted once.
    Replayed {
        /// The repeated sequence number.
        sequence: u64,
    },
    /// The sequence number is older than the window tracks.
    TooOld {
        /// The stale sequence number.
        sequence: u64,
        /// The oldest sequence number still accepted.
        horizon: u64,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ReplayError::Replayed { sequence } => {
                write!(f, "sequence {sequence} was already accepted")
            }
            ReplayError::TooOld { sequence, horizon } => {
                write!(
                    f,
                    "sequence {sequence} is older than the replay horizon {horizon}"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// A sliding bitmap over the most recent sequence numbers.
///
/// Bit `i` of the mask marks `highest - i` as seen; numbers more than
/// [`ReplayWindow::SIZE`] behind the highest accepted number are rejected
/// unconditionally.
///
/// # Examples
///
/// ```
/// use age_transport::{ReplayError, ReplayWindow};
///
/// let mut window = ReplayWindow::new();
/// assert!(window.observe(5).is_ok());
/// assert!(window.observe(4).is_ok()); // out of order, inside the window
/// assert_eq!(
///     window.observe(5),
///     Err(ReplayError::Replayed { sequence: 5 })
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayWindow {
    highest: u64,
    mask: u64,
    primed: bool,
}

impl ReplayWindow {
    /// Sequence numbers the window distinguishes (one bitmap word).
    pub const SIZE: u64 = 64;

    /// An empty window that accepts any first sequence number.
    pub fn new() -> Self {
        ReplayWindow::default()
    }

    /// The highest sequence number accepted so far, if any.
    pub fn highest(&self) -> Option<u64> {
        self.primed.then_some(self.highest)
    }

    /// Accepts `sequence` if it has not been seen and is not older than the
    /// window, advancing the window when the number is new territory.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Replayed`] for repeats, [`ReplayError::TooOld`] for
    /// numbers behind the horizon.
    pub fn observe(&mut self, sequence: u64) -> Result<(), ReplayError> {
        if !self.primed {
            self.primed = true;
            self.highest = sequence;
            self.mask = 1;
            return Ok(());
        }
        if sequence > self.highest {
            let shift = sequence - self.highest;
            self.mask = if shift >= Self::SIZE {
                0
            } else {
                self.mask << shift
            };
            self.mask |= 1;
            self.highest = sequence;
            return Ok(());
        }
        let behind = self.highest - sequence;
        if behind >= Self::SIZE {
            return Err(ReplayError::TooOld {
                sequence,
                horizon: self.highest - (Self::SIZE - 1),
            });
        }
        let bit = 1u64 << behind;
        if self.mask & bit != 0 {
            return Err(ReplayError::Replayed { sequence });
        }
        self.mask |= bit;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_monotone_sequences() {
        let mut w = ReplayWindow::new();
        for seq in 0..200 {
            assert!(w.observe(seq).is_ok(), "seq {seq}");
        }
        assert_eq!(w.highest(), Some(199));
    }

    #[test]
    fn rejects_every_duplicate() {
        let mut w = ReplayWindow::new();
        for seq in 0..10 {
            w.observe(seq).unwrap();
        }
        for seq in 0..10 {
            assert_eq!(w.observe(seq), Err(ReplayError::Replayed { sequence: seq }));
        }
    }

    #[test]
    fn accepts_out_of_order_within_window() {
        let mut w = ReplayWindow::new();
        w.observe(10).unwrap();
        w.observe(7).unwrap();
        w.observe(9).unwrap();
        assert_eq!(w.observe(7), Err(ReplayError::Replayed { sequence: 7 }));
    }

    #[test]
    fn rejects_sequences_behind_the_horizon() {
        let mut w = ReplayWindow::new();
        w.observe(100).unwrap();
        assert_eq!(
            w.observe(100 - ReplayWindow::SIZE),
            Err(ReplayError::TooOld {
                sequence: 100 - ReplayWindow::SIZE,
                horizon: 100 - (ReplayWindow::SIZE - 1),
            })
        );
        // The edge of the window is still fine.
        assert!(w.observe(100 - (ReplayWindow::SIZE - 1)).is_ok());
    }

    #[test]
    fn large_jumps_clear_the_bitmap() {
        let mut w = ReplayWindow::new();
        w.observe(1).unwrap();
        w.observe(1000).unwrap();
        // 1 is now far behind the horizon.
        assert!(matches!(w.observe(1), Err(ReplayError::TooOld { .. })));
        // Unseen numbers near the new highest are accepted once.
        assert!(w.observe(999).is_ok());
        assert!(w.observe(999).is_err());
    }

    #[test]
    fn first_observation_primes_at_any_number() {
        let mut w = ReplayWindow::new();
        assert_eq!(w.highest(), None);
        w.observe(41).unwrap();
        assert_eq!(w.highest(), Some(41));
    }

    #[test]
    fn acceptance_flips_exactly_at_the_64_entry_boundary() {
        // With highest = SIZE - 1, sequence 0 is the last number inside the
        // window; one more step of the highest pushes it behind the horizon.
        let mut w = ReplayWindow::new();
        w.observe(0).unwrap();
        w.observe(ReplayWindow::SIZE - 1).unwrap();
        assert_eq!(
            w.observe(0),
            Err(ReplayError::Replayed { sequence: 0 }),
            "at distance SIZE - 1 the number is still tracked"
        );
        assert!(w.observe(1).is_ok(), "unseen, exactly on the window edge");
        w.observe(ReplayWindow::SIZE).unwrap();
        assert_eq!(
            w.observe(0),
            Err(ReplayError::TooOld {
                sequence: 0,
                horizon: 1,
            }),
            "one past the boundary the bitmap no longer distinguishes it"
        );
        assert_eq!(
            w.observe(1),
            Err(ReplayError::Replayed { sequence: 1 }),
            "the new horizon entry is still tracked"
        );
    }

    #[test]
    fn saturates_cleanly_near_u64_max() {
        let mut w = ReplayWindow::new();
        w.observe(u64::MAX - 1).unwrap();
        w.observe(u64::MAX).unwrap();
        assert_eq!(w.highest(), Some(u64::MAX));
        assert_eq!(
            w.observe(u64::MAX),
            Err(ReplayError::Replayed { sequence: u64::MAX })
        );
        // The whole top of the sequence space is still one-shot acceptable.
        for behind in 2..ReplayWindow::SIZE {
            assert!(w.observe(u64::MAX - behind).is_ok(), "behind {behind}");
        }
        let too_old = u64::MAX - ReplayWindow::SIZE;
        assert_eq!(
            w.observe(too_old),
            Err(ReplayError::TooOld {
                sequence: too_old,
                horizon: u64::MAX - (ReplayWindow::SIZE - 1),
            })
        );
        // Priming directly at the maximum works too.
        let mut fresh = ReplayWindow::new();
        fresh.observe(u64::MAX).unwrap();
        assert_eq!(fresh.highest(), Some(u64::MAX));
        assert!(fresh.observe(u64::MAX - 1).is_ok());
    }

    #[test]
    fn highest_is_unchanged_by_out_of_order_acceptance() {
        let mut w = ReplayWindow::new();
        w.observe(50).unwrap();
        for seq in (45..50).rev() {
            w.observe(seq).unwrap();
            assert_eq!(
                w.highest(),
                Some(50),
                "filling in old numbers must not move the window"
            );
        }
        w.observe(51).unwrap();
        assert_eq!(w.highest(), Some(51));
    }
}
