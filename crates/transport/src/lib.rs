//! Fault-tolerant framed transport between an AGE sensor and its server.
//!
//! AGE closes the message-*size* side channel by making every batch leave
//! the sensor as a fixed-length encrypted message (§4.5 of the paper). This
//! crate supplies the link those messages actually cross:
//!
//! - [`Sensor`] seals each payload with a [`Cipher`](age_crypto::Cipher)
//!   (normally ChaCha20Poly1305) whose nonce derives deterministically from
//!   a per-session sequence number, so a frame is
//!   `payload + overhead` bytes — constant when the payload is.
//! - [`FaultChannel`] injects drop / bit-corruption / duplication /
//!   reordering faults from a [`DetRng`](age_telemetry::DetRng) stream, so
//!   every run is byte-reproducible per seed at any thread count. Faults
//!   never change a frame's length.
//! - [`Receiver`] authenticates, enforces an RFC 4303-style
//!   [`ReplayWindow`], guards against far-future sequence numbers, and
//!   turns every malformed frame into a [`ReceiveError`] instead of a
//!   panic.
//! - [`Link`] drives the retry/timeout/exponential-backoff loop
//!   ([`RetryPolicy`]); retransmissions reuse the sequence number (the
//!   replay window absorbs the duplicates) and their radio energy is
//!   charged by the simulator against the same budget as the first send.
//!
//! Retransmissions and drops are themselves a discrete-time channel that
//! can leak, so the per-session [`LinkStats`] / [`ChannelStats`] make retry
//! behavior measurable; `age-sim` re-measures NMI leakage under faults on
//! top of this crate. See `docs/robustness.md` for the frame format and
//! fault model.
//!
//! Low-power sensors also brown out: a [`SequenceJournal`] over a simulated
//! [`NvmStore`] persists sequence reservations in blocks (one flash write
//! per `K` frames), so [`Link::reboot_sensor`] recovers past the reserved
//! high-water mark and no nonce is ever reused across power cycles — the
//! "Surviving resets" section of `docs/robustness.md` records the journal
//! format and recovery invariants.
//!
//! # Examples
//!
//! ```
//! use age_crypto::ChaCha20Poly1305;
//! use age_transport::{FaultPlan, Link, RetryPolicy};
//!
//! let key = [0x42; 32];
//! let mut link = Link::new(
//!     Box::new(ChaCha20Poly1305::new(key)),
//!     Box::new(ChaCha20Poly1305::new(key)),
//!     FaultPlan::lossy(0.2, 7),
//!     RetryPolicy::default(),
//! );
//! for batch in 0..10u8 {
//!     let delivery = link.send(&[batch; 220]); // fixed-size AGE payload
//!     assert_eq!(delivery.frame_len, 220 + 28, "nonce + tag overhead");
//! }
//! // Every frame on the wire had the sealed fixed size, faults included.
//! assert!(link.channel_stats().wire_lengths_constant());
//! ```

mod fault;
mod link;
mod persist;
mod replay;

pub use fault::{ChannelStats, FaultChannel, FaultPlan};
pub use link::{
    chacha20poly1305_factory, epoch_of, epoch_skip_budget, CipherFactory, Delivery, Link,
    LinkStats, ReceiveError, Receiver, ReceiverStats, RetryPolicy, Sensor, MAX_SKIP,
};
pub use persist::{
    JournalError, JournalStats, NvmFaultPlan, NvmStats, NvmStore, RecoveredState, SequenceJournal,
};
pub use replay::{ReplayError, ReplayWindow};

#[cfg(test)]
mod tests {
    use age_crypto::ChaCha20Poly1305;

    use super::*;

    fn run_session(seed: u64, messages: usize) -> (Vec<Delivery>, LinkStats, ChannelStats) {
        let mut link = Link::new(
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            Box::new(ChaCha20Poly1305::new([0x42; 32])),
            FaultPlan::lossy(0.25, seed),
            RetryPolicy::default(),
        );
        let deliveries: Vec<Delivery> = (0..messages)
            .map(|i| link.send(&[(i % 251) as u8; 64]))
            .collect();
        (deliveries, *link.stats(), *link.channel_stats())
    }

    #[test]
    fn sessions_are_byte_reproducible_per_seed() {
        assert_eq!(run_session(123, 150), run_session(123, 150));
        let (_, a, _) = run_session(123, 150);
        let (_, b, _) = run_session(124, 150);
        assert_ne!(a, b, "different seeds must produce different faults");
    }

    #[test]
    fn stats_account_for_every_frame() {
        let (deliveries, stats, channel) = run_session(9, 200);
        let attempts: usize = deliveries.iter().map(|d| d.attempts as usize).sum();
        assert_eq!(stats.frames_sent, attempts);
        assert_eq!(stats.frames_sent, channel.frames_in);
        assert_eq!(
            stats.frames_delivered
                + stats.auth_failed
                + stats.replay_rejected
                + stats.rejected_other,
            // Frames still held in the channel at session end never reached
            // the receiver.
            channel.frames_out
        );
        assert!(stats.frames_retried > 0, "a 25% loss rate forces retries");
    }
}
