//! Fuzzes `Receiver::receive` across a reboot boundary: frames sealed
//! before and after a journal-backed recovery are interleaved with
//! corrupted mutants (truncations, extensions, bit flips) in a shuffled
//! order, and the receiver must never panic, must accept every genuine
//! frame exactly once, and must hand back byte-exact payloads.

use std::collections::BTreeSet;

use age_crypto::kdf::{fleet_secret, sensor_root};
use age_crypto::{AesCbc, ChaCha20Poly1305};
use age_telemetry::{DetRng, SliceShuffle};
use age_transport::{
    chacha20poly1305_factory, epoch_skip_budget, NvmFaultPlan, NvmStore, ReceiveError, Receiver,
    Sensor, SequenceJournal, MAX_SKIP,
};

const KEY: [u8; 32] = [0xC3; 32];

/// One frame of the fuzz corpus: the genuine bytes or a mutant.
struct Case {
    frame: Vec<u8>,
    genuine: bool,
    payload: Vec<u8>,
}

/// Seals `count` frames through `journal`, reserving each sequence before
/// the seal exactly as the link does.
fn seal_window(
    sensor: &mut Sensor,
    journal: &mut SequenceJournal,
    count: usize,
    rng: &mut DetRng,
    cases: &mut Vec<Case>,
) {
    for _ in 0..count {
        let Ok(sequence) = journal.reserve_next() else {
            // NVM write exhaustion loses the message without radiating;
            // nothing for the receiver to see.
            continue;
        };
        let len = rng.gen_range(8..=64);
        let payload: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = sensor.seal_as(sequence, &payload);
        cases.push(Case {
            frame,
            genuine: true,
            payload,
        });
    }
}

/// Derives corrupted mutants from a genuine frame: truncation, extension,
/// and single-bit flips at seeded positions.
fn mutants(frame: &[u8], rng: &mut DetRng, cases: &mut Vec<Case>) {
    let mut truncated = frame.to_vec();
    truncated.truncate(rng.gen_range(0..=frame.len().saturating_sub(1)));
    cases.push(Case {
        frame: truncated,
        genuine: false,
        payload: Vec::new(),
    });
    let mut extended = frame.to_vec();
    extended.extend_from_slice(&[0xEE; 7]);
    cases.push(Case {
        frame: extended,
        genuine: false,
        payload: Vec::new(),
    });
    let mut flipped = frame.to_vec();
    let at = rng.gen_range(0..flipped.len());
    flipped[at] ^= 1u8 << rng.gen_range(0..8u32);
    cases.push(Case {
        frame: flipped,
        genuine: false,
        payload: Vec::new(),
    });
}

/// Runs one fuzz round: seal frames, reboot mid-window, seal more, mutate,
/// shuffle, and feed everything to a fresh receiver.
fn fuzz_round(seed: u64) {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new(KEY)));
    let mut journal = SequenceJournal::new(
        NvmStore::with_seed(
            NvmFaultPlan {
                fail_rate: 0.1,
                torn_rate: 0.25,
                seed: 0,
            },
            seed,
        ),
        8,
    );
    sensor.reboot_at(journal.next());

    let mut cases = Vec::new();
    seal_window(&mut sensor, &mut journal, 20, &mut rng, &mut cases);
    // The reboot boundary: power is lost (possibly tearing the last NVM
    // record) and the sensor resumes from the journal's high-water mark.
    sensor.reboot_at(journal.reboot());
    seal_window(&mut sensor, &mut journal, 20, &mut rng, &mut cases);

    // Derive mutants from a third of the genuine frames, then shuffle the
    // whole corpus so corrupted and out-of-order frames interleave.
    let genuine_frames: Vec<Vec<u8>> = cases.iter().map(|c| c.frame.clone()).collect();
    for frame in genuine_frames.iter().step_by(3) {
        mutants(frame, &mut rng, &mut cases);
    }
    cases.shuffle(&mut rng);

    let mut receiver = Receiver::new(Box::new(ChaCha20Poly1305::new(KEY)));
    let mut accepted = BTreeSet::new();
    let mut delivered = 0usize;
    for case in &cases {
        // The contract under fuzz: receive returns an error, never panics.
        match receiver.receive(&case.frame) {
            Ok((sequence, payload)) => {
                assert!(
                    accepted.insert(sequence),
                    "sequence {sequence} accepted twice (seed {seed})"
                );
                if case.genuine {
                    assert_eq!(payload, case.payload, "payload mangled (seed {seed})");
                    delivered += 1;
                } else {
                    panic!("a corrupted frame authenticated (seed {seed})");
                }
            }
            Err(
                ReceiveError::Cipher(_)
                | ReceiveError::MissingSequence
                | ReceiveError::Replay(_)
                | ReceiveError::FarFuture { .. },
            ) => {}
        }
    }
    // Shuffling can push a genuine frame behind the replay horizon or past
    // the far-future guard, but most of the window must get through.
    assert!(
        delivered * 2 >= cases.iter().filter(|c| c.genuine).count(),
        "too few genuine frames survived the shuffle (seed {seed})"
    );
}

#[test]
fn receiver_survives_shuffled_corrupt_frames_across_a_reboot() {
    for seed in 0..50 {
        fuzz_round(seed);
    }
}

/// Seals a window through the journal with the link's write-ahead rotation
/// protocol: any due epoch record is journaled *before* the key swap, and a
/// refused record defers the rotation (the frame seals under the old key).
fn seal_rotating_window(
    sensor: &mut Sensor,
    journal: &mut SequenceJournal,
    count: usize,
    rng: &mut DetRng,
    cases: &mut Vec<Case>,
) {
    for _ in 0..count {
        let Ok(sequence) = journal.reserve_next() else {
            continue;
        };
        if let Some(target) = sensor.rotation_due(sequence) {
            if journal.record_epoch(target).is_ok() {
                sensor.rotate_to(target);
            }
        }
        let len = rng.gen_range(8..=64);
        let payload: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = sensor.seal_as(sequence, &payload);
        cases.push(Case {
            frame,
            genuine: true,
            payload,
        });
    }
}

/// Fuzzes the rotation window itself: repeated brownouts land between the
/// epoch journal write and the first seal under the new key (and everywhere
/// else), on NVM that tears or refuses records. Frames arrive in order with
/// corrupted mutants interleaved; the rekeying receiver must follow every
/// epoch jump, accept every genuine frame exactly once with byte-exact
/// payloads, and never authenticate a mutant.
fn rotation_fuzz_round(seed: u64) {
    let mut rng = DetRng::seed_from_u64(seed);
    let root = sensor_root(&fleet_secret(seed), 1);
    let interval = rng.gen_range(3..=9);
    let mut sensor = Sensor::with_rekey(root, interval, 0, chacha20poly1305_factory);
    let mut journal = SequenceJournal::new(
        NvmStore::with_seed(
            NvmFaultPlan {
                fail_rate: 0.1,
                torn_rate: 0.25,
                seed: 0,
            },
            seed ^ 0x5A,
        ),
        4,
    );
    sensor.resume(journal.next(), journal.epoch());

    let mut cases = Vec::new();
    for _ in 0..12 {
        let burst = rng.gen_range(2..=6);
        seal_rotating_window(&mut sensor, &mut journal, burst, &mut rng, &mut cases);
        // Half the brownouts strike *inside* the rotation window: the epoch
        // record has just been journaled (perhaps torn on the way down) but
        // no frame was ever sealed under the new key.
        if rng.gen_bool(0.5) {
            if let Some(target) = sensor.rotation_due(journal.next()) {
                let _ = journal.record_epoch(target);
            }
        }
        journal.reboot();
        sensor.resume(journal.next(), journal.epoch());
    }

    // Interleave mutants in place (no shuffle: epoch tracking is forward-
    // only, so this corpus models an ordered link with corruption).
    let mut corpus: Vec<Case> = Vec::new();
    for case in cases {
        let mutate = case.genuine && rng.gen_bool(0.33);
        let frame = case.frame.clone();
        corpus.push(case);
        if mutate {
            mutants(&frame, &mut rng, &mut corpus);
        }
    }

    // The journal's block size (4) bounds how far a brownout can jump the
    // sequence counter, so the epoch skip budget is sized to that bound
    // rather than the far-future horizon — it also keeps the per-mutant
    // probe cost (each failed open walks the whole budget) proportionate.
    let mut receiver = Receiver::with_ratchet(
        root,
        MAX_SKIP,
        epoch_skip_budget(16, interval),
        chacha20poly1305_factory,
    );
    let mut accepted = BTreeSet::new();
    let genuine = corpus.iter().filter(|c| c.genuine).count();
    for case in &corpus {
        match receiver.receive(&case.frame) {
            Ok((sequence, payload)) => {
                assert!(
                    accepted.insert(sequence),
                    "sequence {sequence} accepted twice (seed {seed})"
                );
                assert!(
                    case.genuine,
                    "a corrupted frame authenticated (seed {seed})"
                );
                assert_eq!(payload, case.payload, "payload mangled (seed {seed})");
            }
            Err(
                ReceiveError::Cipher(_)
                | ReceiveError::MissingSequence
                | ReceiveError::Replay(_)
                | ReceiveError::FarFuture { .. },
            ) => {
                assert!(
                    !case.genuine,
                    "in-order genuine frame rejected across a rotation (seed {seed})"
                );
            }
        }
    }
    assert_eq!(
        accepted.len(),
        genuine,
        "a genuine frame went missing (seed {seed})"
    );
    assert!(
        receiver.stats().epoch_advances > 0,
        "the corpus must actually cross epoch boundaries (seed {seed})"
    );
}

#[test]
fn rekeying_receiver_survives_brownouts_inside_the_rotation_window() {
    for seed in 0..50 {
        rotation_fuzz_round(seed);
    }
}

/// The same boundary under an unauthenticated cipher: corrupted frames may
/// decrypt to garbage (that is the documented trade-off), but the receiver
/// still must not panic and must never accept one sequence twice.
#[test]
fn unauthenticated_ciphers_never_panic_across_a_reboot() {
    for seed in 100..120 {
        let mut rng = DetRng::seed_from_u64(seed);
        let key16 = [0xC3; 16];
        let mut sensor = Sensor::new(Box::new(AesCbc::new(key16)));
        let mut journal = SequenceJournal::reliable();
        sensor.reboot_at(journal.next());
        let mut cases = Vec::new();
        seal_window(&mut sensor, &mut journal, 12, &mut rng, &mut cases);
        sensor.reboot_at(journal.reboot());
        seal_window(&mut sensor, &mut journal, 12, &mut rng, &mut cases);
        let genuine_frames: Vec<Vec<u8>> = cases.iter().map(|c| c.frame.clone()).collect();
        for frame in &genuine_frames {
            mutants(frame, &mut rng, &mut cases);
        }
        cases.shuffle(&mut rng);

        let mut receiver = Receiver::new(Box::new(AesCbc::new(key16)));
        let mut accepted = BTreeSet::new();
        for case in &cases {
            if let Ok((sequence, _)) = receiver.receive(&case.frame) {
                assert!(accepted.insert(sequence), "sequence accepted twice");
            }
        }
    }
}
