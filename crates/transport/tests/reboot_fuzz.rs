//! Fuzzes `Receiver::receive` across a reboot boundary: frames sealed
//! before and after a journal-backed recovery are interleaved with
//! corrupted mutants (truncations, extensions, bit flips) in a shuffled
//! order, and the receiver must never panic, must accept every genuine
//! frame exactly once, and must hand back byte-exact payloads.

use std::collections::BTreeSet;

use age_crypto::{AesCbc, ChaCha20Poly1305};
use age_telemetry::{DetRng, SliceShuffle};
use age_transport::{NvmFaultPlan, NvmStore, ReceiveError, Receiver, Sensor, SequenceJournal};

const KEY: [u8; 32] = [0xC3; 32];

/// One frame of the fuzz corpus: the genuine bytes or a mutant.
struct Case {
    frame: Vec<u8>,
    genuine: bool,
    payload: Vec<u8>,
}

/// Seals `count` frames through `journal`, reserving each sequence before
/// the seal exactly as the link does.
fn seal_window(
    sensor: &mut Sensor,
    journal: &mut SequenceJournal,
    count: usize,
    rng: &mut DetRng,
    cases: &mut Vec<Case>,
) {
    for _ in 0..count {
        let Ok(sequence) = journal.reserve_next() else {
            // NVM write exhaustion loses the message without radiating;
            // nothing for the receiver to see.
            continue;
        };
        let len = rng.gen_range(8..=64);
        let payload: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let frame = sensor.seal_as(sequence, &payload);
        cases.push(Case {
            frame,
            genuine: true,
            payload,
        });
    }
}

/// Derives corrupted mutants from a genuine frame: truncation, extension,
/// and single-bit flips at seeded positions.
fn mutants(frame: &[u8], rng: &mut DetRng, cases: &mut Vec<Case>) {
    let mut truncated = frame.to_vec();
    truncated.truncate(rng.gen_range(0..=frame.len().saturating_sub(1)));
    cases.push(Case {
        frame: truncated,
        genuine: false,
        payload: Vec::new(),
    });
    let mut extended = frame.to_vec();
    extended.extend_from_slice(&[0xEE; 7]);
    cases.push(Case {
        frame: extended,
        genuine: false,
        payload: Vec::new(),
    });
    let mut flipped = frame.to_vec();
    let at = rng.gen_range(0..flipped.len());
    flipped[at] ^= 1u8 << rng.gen_range(0..8u32);
    cases.push(Case {
        frame: flipped,
        genuine: false,
        payload: Vec::new(),
    });
}

/// Runs one fuzz round: seal frames, reboot mid-window, seal more, mutate,
/// shuffle, and feed everything to a fresh receiver.
fn fuzz_round(seed: u64) {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut sensor = Sensor::new(Box::new(ChaCha20Poly1305::new(KEY)));
    let mut journal = SequenceJournal::new(
        NvmStore::with_seed(
            NvmFaultPlan {
                fail_rate: 0.1,
                torn_rate: 0.25,
                seed: 0,
            },
            seed,
        ),
        8,
    );
    sensor.reboot_at(journal.next());

    let mut cases = Vec::new();
    seal_window(&mut sensor, &mut journal, 20, &mut rng, &mut cases);
    // The reboot boundary: power is lost (possibly tearing the last NVM
    // record) and the sensor resumes from the journal's high-water mark.
    sensor.reboot_at(journal.reboot());
    seal_window(&mut sensor, &mut journal, 20, &mut rng, &mut cases);

    // Derive mutants from a third of the genuine frames, then shuffle the
    // whole corpus so corrupted and out-of-order frames interleave.
    let genuine_frames: Vec<Vec<u8>> = cases.iter().map(|c| c.frame.clone()).collect();
    for frame in genuine_frames.iter().step_by(3) {
        mutants(frame, &mut rng, &mut cases);
    }
    cases.shuffle(&mut rng);

    let mut receiver = Receiver::new(Box::new(ChaCha20Poly1305::new(KEY)));
    let mut accepted = BTreeSet::new();
    let mut delivered = 0usize;
    for case in &cases {
        // The contract under fuzz: receive returns an error, never panics.
        match receiver.receive(&case.frame) {
            Ok((sequence, payload)) => {
                assert!(
                    accepted.insert(sequence),
                    "sequence {sequence} accepted twice (seed {seed})"
                );
                if case.genuine {
                    assert_eq!(payload, case.payload, "payload mangled (seed {seed})");
                    delivered += 1;
                } else {
                    panic!("a corrupted frame authenticated (seed {seed})");
                }
            }
            Err(
                ReceiveError::Cipher(_)
                | ReceiveError::MissingSequence
                | ReceiveError::Replay(_)
                | ReceiveError::FarFuture { .. },
            ) => {}
        }
    }
    // Shuffling can push a genuine frame behind the replay horizon or past
    // the far-future guard, but most of the window must get through.
    assert!(
        delivered * 2 >= cases.iter().filter(|c| c.genuine).count(),
        "too few genuine frames survived the shuffle (seed {seed})"
    );
}

#[test]
fn receiver_survives_shuffled_corrupt_frames_across_a_reboot() {
    for seed in 0..50 {
        fuzz_round(seed);
    }
}

/// The same boundary under an unauthenticated cipher: corrupted frames may
/// decrypt to garbage (that is the documented trade-off), but the receiver
/// still must not panic and must never accept one sequence twice.
#[test]
fn unauthenticated_ciphers_never_panic_across_a_reboot() {
    for seed in 100..120 {
        let mut rng = DetRng::seed_from_u64(seed);
        let key16 = [0xC3; 16];
        let mut sensor = Sensor::new(Box::new(AesCbc::new(key16)));
        let mut journal = SequenceJournal::reliable();
        sensor.reboot_at(journal.next());
        let mut cases = Vec::new();
        seal_window(&mut sensor, &mut journal, 12, &mut rng, &mut cases);
        sensor.reboot_at(journal.reboot());
        seal_window(&mut sensor, &mut journal, 12, &mut rng, &mut cases);
        let genuine_frames: Vec<Vec<u8>> = cases.iter().map(|c| c.frame.clone()).collect();
        for frame in &genuine_frames {
            mutants(frame, &mut rng, &mut cases);
        }
        cases.shuffle(&mut rng);

        let mut receiver = Receiver::new(Box::new(AesCbc::new(key16)));
        let mut accepted = BTreeSet::new();
        for case in &cases {
            if let Ok((sequence, _)) = receiver.receive(&case.frame) {
                assert!(accepted.insert(sequence), "sequence accepted twice");
            }
        }
    }
}
