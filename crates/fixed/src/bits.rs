//! MSB-first bit packing into byte buffers.
//!
//! AGE assembles messages at bit granularity (per-group widths are not byte
//! multiples), then pads to a byte-exact target length. The writer and reader
//! here use MSB-first order within each byte, matching how a microcontroller
//! would shift bits onto a radio buffer.
//!
//! Both sides operate on a `u64` word accumulator: the writer shifts fields
//! into the low end of a word and spills eight big-endian bytes per 64-bit
//! flush; the reader refills a word from the byte slice and peels fields off
//! its high end. The wire format is identical to a bit-at-a-time
//! implementation (a property test in `tests/properties.rs` pins this against
//! a reference oracle) — only the number of memory operations changes.

use std::fmt;

/// Accumulates bit fields into a byte vector, MSB first.
///
/// Internally the writer keeps a `u64` accumulator holding the trailing
/// `acc_bits` bits of the stream in its low positions; `bytes` always holds a
/// whole number of fully flushed bytes. Writing is a shift/OR per field with
/// one eight-byte spill per 64 bits written.
///
/// # Examples
///
/// ```
/// use age_fixed::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b0001, 4);
/// assert_eq!(w.bit_len(), 7);
/// let bytes = w.into_bytes(); // padded with zero bits to a byte boundary
/// assert_eq!(bytes, vec![0b1010_0010]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    /// Fully flushed bytes. Never holds a partial byte; trailing bits live in
    /// `acc` until a flush or [`BitWriter::into_bytes`].
    bytes: Vec<u8>,
    /// Pending bits, right-aligned: the low `acc_bits` bits are valid and the
    /// oldest pending bit is the most significant of them.
    acc: u64,
    /// Number of valid bits in `acc` (always `< 64`; a full word is spilled
    /// to `bytes` eagerly).
    acc_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Creates an empty writer with capacity for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Creates an empty writer backed by `bytes`, reusing its allocation.
    ///
    /// The vector's contents are cleared but its capacity is kept, so a
    /// buffer recovered from [`BitWriter::into_bytes`] can be cycled through
    /// repeated encodes without reallocating.
    pub fn from_vec(mut bytes: Vec<u8>) -> Self {
        bytes.clear();
        BitWriter {
            bytes,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + usize::from(self.acc_bits)
    }

    /// Number of bytes the current content occupies (rounding up).
    pub fn byte_len(&self) -> usize {
        self.bytes.len() + usize::from(self.acc_bits).div_ceil(8)
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        let value = value & mask_low(count);
        let free = 64 - u32::from(self.acc_bits);
        if u32::from(count) < free {
            self.acc = (self.acc << count) | value;
            self.acc_bits += count;
        } else {
            // Fill the accumulator to exactly 64 bits, spill it, and keep the
            // remaining low bits of `value` as the new pending tail.
            let rest = u32::from(count) - free;
            let word = if free == 64 {
                value
            } else {
                (self.acc << free) | (value >> rest)
            };
            self.bytes.extend_from_slice(&word.to_be_bytes());
            self.acc = value & mask_low(rest as u8);
            self.acc_bits = rest as u8;
        }
    }

    /// Appends `repeats` copies of the same `count`-bit field.
    ///
    /// Copies are packed into whole words first, so long runs (e.g. the zero
    /// gaps of a collection bitmask) cost one memory write per 64 bits rather
    /// than one per field. Output is identical to calling
    /// [`BitWriter::write_bits`] `repeats` times.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_run(&mut self, value: u64, count: u8, repeats: usize) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count == 0 || repeats == 0 {
            return;
        }
        let per_word = usize::from(64 / count);
        if per_word <= 1 || repeats == 1 {
            for _ in 0..repeats {
                self.write_bits(value, count);
            }
            return;
        }
        let value = value & mask_low(count);
        let mut packed = value;
        for _ in 1..per_word {
            packed = (packed << count) | value;
        }
        let packed_bits = (per_word as u8) * count;
        let mut left = repeats;
        while left >= per_word {
            self.write_bits(packed, packed_bits);
            left -= per_word;
        }
        if left > 0 {
            self.write_bits(packed, (left as u8) * count);
        }
    }

    /// Appends every element of `values` as a `count`-bit field, most
    /// significant bits first (a group-level batch write).
    ///
    /// Equivalent to calling [`BitWriter::write_bits`] per element; keeping
    /// the accumulator in locals lets the compiler hold it in registers
    /// across the whole lane.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_fields(&mut self, values: &[u64], count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count == 0 {
            return;
        }
        let mask = mask_low(count);
        let mut acc = self.acc;
        let mut acc_bits = u32::from(self.acc_bits);
        for &raw in values {
            let value = raw & mask;
            let free = 64 - acc_bits;
            if u32::from(count) < free {
                acc = (acc << count) | value;
                acc_bits += u32::from(count);
            } else {
                let rest = u32::from(count) - free;
                let word = if free == 64 {
                    value
                } else {
                    (acc << free) | (value >> rest)
                };
                self.bytes.extend_from_slice(&word.to_be_bytes());
                acc = value & mask_low(rest as u8);
                acc_bits = rest;
            }
        }
        self.acc = acc;
        self.acc_bits = acc_bits as u8;
    }

    /// Appends a full byte (convenience for headers).
    pub fn write_u8(&mut self, value: u8) {
        self.write_bits(u64::from(value), 8);
    }

    /// Appends a big-endian `u16`.
    pub fn write_u16(&mut self, value: u16) {
        self.write_bits(u64::from(value), 16);
    }

    /// Appends zero bits until the total length reaches `target_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the content already exceeds `target_bytes`.
    pub fn pad_to_bytes(&mut self, target_bytes: usize) {
        let current = self.bit_len();
        let target = target_bytes * 8;
        assert!(
            current <= target,
            "content of {current} bits exceeds pad target of {target} bits"
        );
        // Close the partial byte, then extend with zero bytes directly.
        self.flush_partial();
        self.bytes.resize(target_bytes, 0);
    }

    /// Spills the pending accumulator bits to `bytes`, zero-padding the
    /// final partial byte.
    fn flush_partial(&mut self) {
        if self.acc_bits > 0 {
            let whole = usize::from(self.acc_bits).div_ceil(8);
            // Left-align the pending bits in the word; acc_bits < 64 so the
            // shift is in 1..=63.
            let word = self.acc << (64 - u32::from(self.acc_bits));
            self.bytes.extend_from_slice(&word.to_be_bytes()[..whole]);
            self.acc = 0;
            self.acc_bits = 0;
        }
    }

    /// Finishes the stream, zero-padding the final partial byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.flush_partial();
        self.bytes
    }
}

/// Mask selecting the low `count` bits (`count <= 64`).
#[inline]
fn mask_low(count: u8) -> u64 {
    if count >= 64 {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Error returned by [`BitReader`] when the stream is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitReaderError {
    /// Bits requested by the failed read.
    pub requested: u8,
    /// Bits that remained in the stream.
    pub remaining: usize,
}

impl fmt::Display for BitReaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted: requested {} bits with {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BitReaderError {}

/// Reads bit fields from a byte slice, MSB first.
///
/// The mirror of [`BitWriter`]: a `u64` accumulator is refilled eight bytes
/// at a time (big-endian) and fields are peeled off its high end, so a read
/// touches memory once per 64 bits instead of once per bit.
///
/// # Examples
///
/// ```
/// use age_fixed::BitReader;
///
/// let mut r = BitReader::new(&[0b1010_0010]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(4)?, 0b0001);
/// # Ok::<(), age_fixed::BitReaderError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Index of the next byte not yet pulled into the accumulator.
    byte_pos: usize,
    /// Prefetched bits, left-aligned: the high `acc_bits` bits are valid and
    /// the next bit of the stream is the most significant.
    acc: u64,
    /// Number of valid bits in `acc`.
    acc_bits: u8,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            byte_pos: 0,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Bits not yet consumed.
    pub fn remaining_bits(&self) -> usize {
        usize::from(self.acc_bits) + (self.bytes.len() - self.byte_pos) * 8
    }

    /// Reads `count` bits as the low bits of a `u64`, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than `count` bits remain. A failed
    /// read consumes nothing.
    pub fn read_bits(&mut self, count: u8) -> Result<u64, BitReaderError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if usize::from(count) > self.remaining_bits() {
            return Err(BitReaderError {
                requested: count,
                remaining: self.remaining_bits(),
            });
        }
        if count == 0 {
            return Ok(0);
        }
        if self.acc_bits == 0 {
            self.refill();
        }
        if count <= self.acc_bits {
            return Ok(self.take(count));
        }
        // Straddles the refill boundary: take what the accumulator has, then
        // the rest from a fresh word. `first >= 1` here, so `rest <= 63`.
        let first = self.acc_bits;
        let rest = count - first;
        let high = self.take(first);
        self.refill();
        let low = self.take(rest);
        Ok((high << rest) | low)
    }

    /// Peels the high `count` bits off the accumulator.
    /// Caller must ensure `1 <= count <= self.acc_bits`.
    #[inline]
    fn take(&mut self, count: u8) -> u64 {
        debug_assert!(count >= 1 && count <= self.acc_bits);
        let out = self.acc >> (64 - u32::from(count));
        self.acc = if count == 64 { 0 } else { self.acc << count };
        self.acc_bits -= count;
        out
    }

    /// Refills the empty accumulator from the byte slice: a whole word when
    /// eight bytes remain, otherwise whatever tail is left, left-aligned.
    fn refill(&mut self) {
        debug_assert_eq!(self.acc_bits, 0);
        let tail = &self.bytes[self.byte_pos..];
        if let Some(chunk) = tail.first_chunk::<8>() {
            self.acc = u64::from_be_bytes(*chunk);
            self.acc_bits = 64;
            self.byte_pos += 8;
        } else {
            let mut acc = 0u64;
            for &b in tail {
                acc = (acc << 8) | u64::from(b);
            }
            self.acc = acc << (8 * (8 - tail.len()));
            self.acc_bits = (8 * tail.len()) as u8;
            self.byte_pos = self.bytes.len();
        }
    }

    /// Reads a full byte.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than 8 bits remain.
    pub fn read_u8(&mut self) -> Result<u8, BitReaderError> {
        Ok(self.read_bits(8)? as u8)
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than 16 bits remain.
    pub fn read_u16(&mut self) -> Result<u16, BitReaderError> {
        Ok(self.read_bits(16)? as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_yields_no_bytes() {
        assert!(BitWriter::new().into_bytes().is_empty());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [1u64, 0, 1, 1] {
            w.write_bits(bit, 1);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0000]);
    }

    #[test]
    fn cross_byte_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0x3FF, 10); // ten ones
        w.write_bits(0, 3);
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xFF, 0b1100_0110]);
    }

    #[test]
    fn write_then_read_various_widths() {
        let fields: Vec<(u64, u8)> = vec![
            (0b1, 1),
            (0xABCD, 16),
            (0x1F, 5),
            (0, 7),
            (0xFFFF_FFFF_FFFF_FFFF, 64),
            (42, 13),
        ];
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 64 { u64::MAX } else { (1 << c) - 1 };
            assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }

    #[test]
    fn from_vec_reuses_capacity_and_clears_content() {
        let mut w = BitWriter::new();
        w.write_u16(0xBEEF);
        w.pad_to_bytes(64);
        let recovered = w.into_bytes();
        let cap = recovered.capacity();
        let ptr = recovered.as_ptr();
        let mut w = BitWriter::from_vec(recovered);
        assert_eq!(w.bit_len(), 0);
        w.write_u8(0x7E);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x7E]);
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(bytes.as_ptr(), ptr);
    }

    #[test]
    fn pad_to_bytes_reaches_exact_length() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.pad_to_bytes(5);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5);
        assert_eq!(bytes[0], 0b1010_0000);
        assert!(bytes[1..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds pad target")]
    fn pad_to_bytes_panics_when_too_small() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 16);
        w.pad_to_bytes(1);
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(6).unwrap(), 0b101010);
        let err = r.read_bits(3).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.remaining, 2);
        // Error is not destructive beyond position: the 2 bits remain.
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn u8_u16_helpers() {
        let mut w = BitWriter::new();
        w.write_u8(0x12);
        w.write_u16(0x3456);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x12, 0x34, 0x56]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0x12);
        assert_eq!(r.read_u16().unwrap(), 0x3456);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 1);
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.byte_len(), 2);
    }

    #[test]
    fn write_run_matches_repeated_writes() {
        for &(value, count, repeats) in &[
            (0u64, 1u8, 0usize),
            (1, 1, 1),
            (1, 1, 63),
            (0, 1, 200),
            (0b101, 3, 41),
            (0xABC, 12, 17),
            (0x12345, 20, 5),
            (u64::MAX, 64, 3),
            (0x7F, 7, 64),
        ] {
            let mut batched = BitWriter::new();
            batched.write_bits(0b11, 2); // start unaligned
            batched.write_run(value, count, repeats);
            let mut looped = BitWriter::new();
            looped.write_bits(0b11, 2);
            for _ in 0..repeats {
                looped.write_bits(value, count);
            }
            assert_eq!(batched.bit_len(), looped.bit_len());
            assert_eq!(
                batched.into_bytes(),
                looped.into_bytes(),
                "value={value:#x} count={count} repeats={repeats}"
            );
        }
    }

    #[test]
    fn write_fields_matches_write_bits_loop() {
        let values: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for count in 1..=64u8 {
            for lead in [0u8, 3, 7, 13] {
                let mut batched = BitWriter::new();
                batched.write_bits(0, lead);
                batched.write_fields(&values, count);
                let mut looped = BitWriter::new();
                looped.write_bits(0, lead);
                for &v in &values {
                    looped.write_bits(v, count);
                }
                assert_eq!(batched.bit_len(), looped.bit_len());
                assert_eq!(
                    batched.into_bytes(),
                    looped.into_bytes(),
                    "count={count} lead={lead}"
                );
            }
        }
    }

    #[test]
    fn reads_straddle_refill_boundaries() {
        // 24 bytes so several word refills happen; read widths that never
        // divide 64 evenly to force boundary-straddling reads.
        let bytes: Vec<u8> = (0..24).map(|i| (i as u8).wrapping_mul(37) ^ 0x5A).collect();
        let mut word = BitReader::new(&bytes);
        let mut slow_pos = 0usize;
        for &count in [13u8, 7, 64, 1, 3, 33, 17, 30, 24].iter() {
            let got = word.read_bits(count).unwrap();
            // Reference: extract the same bit range by address arithmetic.
            let mut expect = 0u64;
            for i in 0..count {
                let pos = slow_pos + usize::from(i);
                let bit = (bytes[pos / 8] >> (7 - pos % 8)) & 1;
                expect = (expect << 1) | u64::from(bit);
            }
            slow_pos += usize::from(count);
            assert_eq!(got, expect, "count={count} at bit {slow_pos}");
        }
        assert_eq!(word.remaining_bits(), 24 * 8 - slow_pos);
    }
}
