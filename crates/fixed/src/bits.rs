//! MSB-first bit packing into byte buffers.
//!
//! AGE assembles messages at bit granularity (per-group widths are not byte
//! multiples), then pads to a byte-exact target length. The writer and reader
//! here use MSB-first order within each byte, matching how a microcontroller
//! would shift bits onto a radio buffer.

use std::fmt;

/// Accumulates bit fields into a byte vector, MSB first.
///
/// # Examples
///
/// ```
/// use age_fixed::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0b0001, 4);
/// assert_eq!(w.bit_len(), 7);
/// let bytes = w.into_bytes(); // padded with zero bits to a byte boundary
/// assert_eq!(bytes, vec![0b1010_0010]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the final partial byte (0 = none pending).
    pending_bits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Creates an empty writer with capacity for `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bytes),
            pending_bits: 0,
        }
    }

    /// Creates an empty writer backed by `bytes`, reusing its allocation.
    ///
    /// The vector's contents are cleared but its capacity is kept, so a
    /// buffer recovered from [`BitWriter::into_bytes`] can be cycled through
    /// repeated encodes without reallocating.
    pub fn from_vec(mut bytes: Vec<u8>) -> Self {
        bytes.clear();
        BitWriter {
            bytes,
            pending_bits: 0,
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.pending_bits == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(8 - self.pending_bits)
        }
    }

    /// Number of bytes the current content occupies (rounding up).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Appends the low `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        for i in (0..count).rev() {
            let bit = ((value >> i) & 1) as u8;
            if self.pending_bits == 0 {
                self.bytes.push(0);
                self.pending_bits = 8;
            }
            let byte = self.bytes.last_mut().expect("pushed above");
            *byte |= bit << (self.pending_bits - 1);
            self.pending_bits -= 1;
        }
    }

    /// Appends a full byte (convenience for headers).
    pub fn write_u8(&mut self, value: u8) {
        self.write_bits(u64::from(value), 8);
    }

    /// Appends a big-endian `u16`.
    pub fn write_u16(&mut self, value: u16) {
        self.write_bits(u64::from(value), 16);
    }

    /// Appends zero bits until the total length reaches `target_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the content already exceeds `target_bytes`.
    pub fn pad_to_bytes(&mut self, target_bytes: usize) {
        let current = self.bit_len();
        let target = target_bytes * 8;
        assert!(
            current <= target,
            "content of {current} bits exceeds pad target of {target} bits"
        );
        // Close the partial byte, then extend with zero bytes directly.
        while !self.bit_len().is_multiple_of(8) {
            self.write_bits(0, 1);
        }
        self.bytes.resize(target_bytes, 0);
        self.pending_bits = 0;
    }

    /// Finishes the stream, zero-padding the final partial byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Error returned by [`BitReader`] when the stream is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitReaderError {
    /// Bits requested by the failed read.
    pub requested: u8,
    /// Bits that remained in the stream.
    pub remaining: usize,
}

impl fmt::Display for BitReaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit stream exhausted: requested {} bits with {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for BitReaderError {}

/// Reads bit fields from a byte slice, MSB first.
///
/// # Examples
///
/// ```
/// use age_fixed::BitReader;
///
/// let mut r = BitReader::new(&[0b1010_0010]);
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert_eq!(r.read_bits(4)?, 0b0001);
/// # Ok::<(), age_fixed::BitReaderError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, bit_pos: 0 }
    }

    /// Bits not yet consumed.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.bit_pos
    }

    /// Reads `count` bits as the low bits of a `u64`, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than `count` bits remain.
    pub fn read_bits(&mut self, count: u8) -> Result<u64, BitReaderError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if usize::from(count) > self.remaining_bits() {
            return Err(BitReaderError {
                requested: count,
                remaining: self.remaining_bits(),
            });
        }
        let mut out = 0u64;
        for _ in 0..count {
            let byte = self.bytes[self.bit_pos / 8];
            let bit = (byte >> (7 - (self.bit_pos % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.bit_pos += 1;
        }
        Ok(out)
    }

    /// Reads a full byte.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than 8 bits remain.
    pub fn read_u8(&mut self) -> Result<u8, BitReaderError> {
        Ok(self.read_bits(8)? as u8)
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`BitReaderError`] if fewer than 16 bits remain.
    pub fn read_u16(&mut self) -> Result<u16, BitReaderError> {
        Ok(self.read_bits(16)? as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_writer_yields_no_bytes() {
        assert!(BitWriter::new().into_bytes().is_empty());
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut w = BitWriter::new();
        for bit in [1u64, 0, 1, 1] {
            w.write_bits(bit, 1);
        }
        assert_eq!(w.into_bytes(), vec![0b1011_0000]);
    }

    #[test]
    fn cross_byte_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0x3FF, 10); // ten ones
        w.write_bits(0, 3);
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xFF, 0b1100_0110]);
    }

    #[test]
    fn write_then_read_various_widths() {
        let fields: Vec<(u64, u8)> = vec![
            (0b1, 1),
            (0xABCD, 16),
            (0x1F, 5),
            (0, 7),
            (0xFFFF_FFFF_FFFF_FFFF, 64),
            (42, 13),
        ];
        let mut w = BitWriter::new();
        for &(v, c) in &fields {
            w.write_bits(v, c);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &fields {
            let mask = if c == 64 { u64::MAX } else { (1 << c) - 1 };
            assert_eq!(r.read_bits(c).unwrap(), v & mask);
        }
    }

    #[test]
    fn from_vec_reuses_capacity_and_clears_content() {
        let mut w = BitWriter::new();
        w.write_u16(0xBEEF);
        w.pad_to_bytes(64);
        let recovered = w.into_bytes();
        let cap = recovered.capacity();
        let ptr = recovered.as_ptr();
        let mut w = BitWriter::from_vec(recovered);
        assert_eq!(w.bit_len(), 0);
        w.write_u8(0x7E);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x7E]);
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(bytes.as_ptr(), ptr);
    }

    #[test]
    fn pad_to_bytes_reaches_exact_length() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.pad_to_bytes(5);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5);
        assert_eq!(bytes[0], 0b1010_0000);
        assert!(bytes[1..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "exceeds pad target")]
    fn pad_to_bytes_panics_when_too_small() {
        let mut w = BitWriter::new();
        w.write_bits(0xFFFF, 16);
        w.pad_to_bytes(1);
    }

    #[test]
    fn reader_reports_exhaustion() {
        let mut r = BitReader::new(&[0xAA]);
        assert_eq!(r.read_bits(6).unwrap(), 0b101010);
        let err = r.read_bits(3).unwrap_err();
        assert_eq!(err.requested, 3);
        assert_eq!(err.remaining, 2);
        // Error is not destructive beyond position: the 2 bits remain.
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn u8_u16_helpers() {
        let mut w = BitWriter::new();
        w.write_u8(0x12);
        w.write_u16(0x3456);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x12, 0x34, 0x56]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_u8().unwrap(), 0x12);
        assert_eq!(r.read_u16().unwrap(), 0x3456);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 5);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0, 1);
        assert_eq!(w.bit_len(), 9);
        assert_eq!(w.byte_len(), 2);
    }
}
